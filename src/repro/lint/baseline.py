"""Committed-baseline support: reviewed legacy findings don't fail CI.

The baseline file is JSON with one entry per accepted finding, keyed by
the location-independent fingerprint (:mod:`repro.lint.findings`), so
entries survive line drift.  Each entry carries the human-readable
fields and an optional ``reason`` recorded at review time — the file is
meant to be read in code review, not just diffed.

A finding whose fingerprint appears in the baseline is reported in the
``baselined`` bucket and does not affect the exit code.  Entries that no
longer match anything are *stale*; the reporter lists them so baselines
shrink over time instead of accreting.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict[str, dict]:
    """fingerprint -> entry dict.  Missing file = empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a reprolint baseline file")
    out: dict[str, dict] = {}
    for entry in data["entries"]:
        out[entry["fingerprint"]] = entry
    return out


def save_baseline(path: Path, findings: list[Finding], reasons: dict[str, str] | None = None) -> None:
    """Write ``findings`` as the new baseline (sorted, stable diffs).

    ``reasons`` maps fingerprints to review notes; entries without one
    get an empty reason to fill in by hand.
    """
    reasons = reasons or {}
    entries = []
    for finding in sorted(set(findings)):
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "reason": reasons.get(finding.fingerprint, ""),
            }
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def stale_entries(baseline: dict[str, dict], matched: set[str]) -> list[dict]:
    """Baseline entries whose fingerprint matched no current finding."""
    return [entry for fp, entry in sorted(baseline.items()) if fp not in matched]
