"""Finding record + stable fingerprints.

A finding's *fingerprint* deliberately excludes the line/column: it is
``sha1(rule | path | symbol | message)`` so a committed baseline keeps
matching while unrelated edits shift code up and down the file.  The
``symbol`` (``Class.method.attr`` for RL001, the op name for RL004, …)
is what keeps two distinct findings with the same message apart.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-root-relative, POSIX separators
    line: int
    col: int
    rule: str  # "RL001"
    message: str
    symbol: str = ""  # location-independent anchor for the fingerprint

    @property
    def fingerprint(self) -> str:
        text = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintResult:
    """Everything one engine run produced, pre-partitioned."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0
