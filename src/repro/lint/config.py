"""Engine + per-rule configuration.

Defaults are tuned for this repository (lint ``src/repro``, baseline at
``tools/reprolint-baseline.json``); the self-tests point the same engine
at fixture trees by constructing a :class:`LintConfig` directly.  Rule
options live in ``rule_options[rule_id]`` — each rule documents its own
keys and reads them through :meth:`LintConfig.rule_option`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

DEFAULT_BASELINE = "tools/reprolint-baseline.json"


@dataclass
class LintConfig:
    """One lint run's configuration."""

    root: Path  # repo root; finding paths are relative to it
    paths: list[Path] = field(default_factory=list)  # files/dirs to lint
    select: set[str] | None = None  # rule ids to run (None = all)
    baseline_path: Path | None = None  # None = no baseline
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.root = Path(self.root).resolve()
        if not self.paths:
            default = self.root / "src" / "repro"
            self.paths = [default if default.is_dir() else self.root]
        self.paths = [Path(p) if Path(p).is_absolute() else self.root / p for p in self.paths]

    @classmethod
    def for_repo(cls, root: Path, **kwargs: Any) -> "LintConfig":
        """The repository defaults: lint ``src/repro`` against the
        committed baseline (when present)."""
        config = cls(root=root, **kwargs)
        if config.baseline_path is None:
            candidate = config.root / DEFAULT_BASELINE
            if candidate.exists():
                config.baseline_path = candidate
        return config

    def rule_option(self, rule_id: str, key: str, default: Any = None) -> Any:
        return self.rule_options.get(rule_id, {}).get(key, default)

    def wants(self, rule_id: str) -> bool:
        return self.select is None or rule_id in self.select
