"""Built-in reprolint rules (importing this package registers them)."""

from repro.lint.rules import (  # noqa: F401
    rl001_lock_discipline,
    rl002_frozen_mutation,
    rl003_async_blocking,
    rl004_protocol_drift,
    rl005_no_print,
    rl006_env_knobs,
)
