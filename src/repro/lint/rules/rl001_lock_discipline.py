"""RL001: attributes written under the class lock stay under it.

A lightweight race detector: within one class, any ``self.X`` that is
ever *assigned* inside a ``with self._lock:`` (or ``async with``) block
is declared lock-guarded, and every other read or write of ``self.X``
in that class must also sit inside such a block.  This is exactly the
torn-counter-read bug class PR 4/8 fixed by hand in the metrics layer.

The check is a deliberate **under-approximation** (docs/DESIGN.md §14):

* lock scope is lexical — helpers called while the lock is held are
  not credited.  The escape hatch is the ``*_locked`` naming
  convention: a method whose name ends in ``_locked`` asserts "caller
  holds the lock" and is exempt;
* ``__init__``/``__new__`` are exempt — no other thread can hold a
  reference during construction;
* code inside a nested ``def``/``lambda`` is treated as running
  *outside* the lock even when defined inside the ``with`` block — the
  closure may be called after release.

Any ``self`` attribute whose name ends in ``lock`` counts as a lock
(``_lock``, ``_append_lock``, …; option ``lock_pattern``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, NamedTuple

from repro.lint.config import LintConfig
from repro.lint.engine import Module
from repro.lint.findings import Finding
from repro.lint.registry import register

_DEFAULT_LOCK_PATTERN = r"_?[A-Za-z0-9_]*lock"
_DEFAULT_EXEMPT_METHODS = frozenset({"__init__", "__new__"})
_LOCKED_SUFFIX = "_locked"


class _AttrEvent(NamedTuple):
    node: ast.Attribute
    attr: str
    is_store: bool
    locked: bool  # lexically inside a with-self-lock block
    in_closure: bool


def _self_lock_name(expr: ast.expr, lock_re: re.Pattern) -> str | None:
    """``_lock`` for ``self._lock`` (lock-named self attribute), else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and lock_re.fullmatch(expr.attr)
    ):
        return expr.attr
    return None


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _attr_events(
    method: ast.FunctionDef | ast.AsyncFunctionDef, lock_re: re.Pattern
) -> list[_AttrEvent]:
    """Every ``self.X`` touch in ``method`` with its lock context."""
    events: list[_AttrEvent] = []

    def walk(node: ast.AST, locked: bool, closure: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a nested callable may run after the lock is released
            for child in ast.iter_child_nodes(node):
                walk(child, False, True)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            grabs_lock = any(
                _self_lock_name(item.context_expr, lock_re) for item in node.items
            )
            for item in node.items:
                walk(item.context_expr, locked, closure)
                if item.optional_vars is not None:
                    walk(item.optional_vars, locked, closure)
            for child in node.body:
                walk(child, locked or grabs_lock, closure)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            events.append(
                _AttrEvent(
                    node,
                    node.attr,
                    isinstance(node.ctx, (ast.Store, ast.Del)),
                    locked,
                    closure,
                )
            )
        for child in ast.iter_child_nodes(node):
            walk(child, locked, closure)

    for stmt in method.body:
        walk(stmt, False, False)
    return events


@register
class LockDisciplineRule:
    """Lock-guarded attributes accessed outside the lock."""

    rule_id = "RL001"
    name = "lock-discipline"
    scope = "module"

    def check_module(self, module: Module, config: LintConfig) -> list[Finding]:
        lock_re = re.compile(
            config.rule_option(self.rule_id, "lock_pattern", _DEFAULT_LOCK_PATTERN)
        )
        exempt = frozenset(
            config.rule_option(self.rule_id, "exempt_methods", _DEFAULT_EXEMPT_METHODS)
        )
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(
                    self._check_class(node, module, lock_re, exempt)
                )
        return findings

    def _check_class(
        self,
        cls: ast.ClassDef,
        module: Module,
        lock_re: re.Pattern,
        exempt: frozenset[str],
    ) -> list[Finding]:
        events_by_method = {
            method: _attr_events(method, lock_re) for method in _methods(cls)
        }

        # Pass 1 — the guarded set: attrs ever *stored* while holding a
        # lock (``*_locked`` methods count their stores as guarded too:
        # the convention asserts the caller holds the lock).
        guarded: set[str] = set()
        for method, events in events_by_method.items():
            caller_holds = method.name.endswith(_LOCKED_SUFFIX)
            for ev in events:
                if ev.is_store and not ev.in_closure and (ev.locked or caller_holds):
                    if not lock_re.fullmatch(ev.attr):
                        guarded.add(ev.attr)

        if not guarded:
            return []

        # Pass 2 — flag unlocked touches of guarded attrs.
        findings: list[Finding] = []
        for method, events in events_by_method.items():
            if method.name in exempt or method.name.endswith(_LOCKED_SUFFIX):
                continue
            flagged: set[str] = set()
            for ev in events:
                if ev.attr not in guarded or ev.attr in flagged:
                    continue
                if ev.locked and not ev.in_closure:
                    continue
                flagged.add(ev.attr)
                how = "closure may outlive the lock" if ev.in_closure else (
                    "written under the class lock elsewhere"
                )
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=ev.node.lineno,
                        col=ev.node.col_offset + 1,
                        rule=self.rule_id,
                        message=f"`self.{ev.attr}` accessed outside the lock in "
                        f"`{cls.name}.{method.name}` ({how}; hold the lock or "
                        f"use a `*{_LOCKED_SUFFIX}` helper)",
                        symbol=f"{cls.name}.{method.name}.{ev.attr}",
                    )
                )
        return findings
