"""RL006: every ``REPRO_*`` environment read must go through the knob
registry.

:mod:`repro.knobs` is the single source of truth for tuning knobs —
name, default, parser, doc — so a knob can never silently fork its
spelling or default between modules.  Two violations:

* an env read (``knobs.get``/``knobs.raw`` or any ``os.environ``
  access) naming a ``REPRO_*`` variable the registry does not declare;
* a *direct* ``os.environ`` / ``os.getenv`` read of a ``REPRO_*``
  variable outside the registry module itself — even a declared knob
  must be read through :func:`repro.knobs.get`, or its parsing forks.

The declared set is extracted from the linted tree's ``knobs.py``
(every ``Knob("NAME", ...)`` construction), so fixture trees carry
their own registries.  A tree with no ``knobs.py`` treats every
``REPRO_*`` read as undeclared.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.engine import Module, Project
from repro.lint.findings import Finding
from repro.lint.registry import register

_PREFIX = "REPRO_"
_REGISTRY_BASENAME = "knobs.py"


def declared_knobs(project: Project, registry_basename: str = _REGISTRY_BASENAME) -> set[str]:
    """Knob names constructed as ``Knob("NAME", ...)`` in the registry."""
    names: set[str] = set()
    for module in project.find(registry_basename):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Knob"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                names.add(node.args[0].value)
    return names


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` or a bare ``environ`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _env_reads(tree: ast.Module):
    """Yield ``(node, var_name, direct)`` for every env-knob read site.

    ``direct`` is True for ``os.environ``/``os.getenv`` accesses, False
    for ``knobs.get``/``knobs.raw``/``get``/``raw`` calls.
    """
    for node in ast.walk(tree):
        # os.environ["X"] / os.environ.get("X", ...) / os.getenv("X")
        if isinstance(node, ast.Subscript) and _is_environ(node.value):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield node, key.value, True
        elif isinstance(node, ast.Call):
            func = node.func
            first = node.args[0] if node.args else None
            literal = (
                first.value
                if isinstance(first, ast.Constant) and isinstance(first.value, str)
                else None
            )
            if literal is None:
                continue
            if isinstance(func, ast.Attribute) and func.attr == "get" and _is_environ(
                func.value
            ):
                yield node, literal, True
            elif isinstance(func, ast.Attribute) and func.attr == "getenv" and isinstance(
                func.value, ast.Name
            ) and func.value.id == "os":
                yield node, literal, True
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("get", "raw")
                and isinstance(func.value, ast.Name)
                and func.value.id == "knobs"
            ):
                yield node, literal, False


@register
class EnvKnobRegistryRule:
    """``REPRO_*`` env reads must be declared in the knob registry."""

    rule_id = "RL006"
    name = "env-knobs"
    scope = "project"

    def check_project(self, project: Project, config: LintConfig) -> list[Finding]:
        registry_basename = config.rule_option(
            self.rule_id, "registry_basename", _REGISTRY_BASENAME
        )
        prefix = config.rule_option(self.rule_id, "prefix", _PREFIX)
        declared = declared_knobs(project, registry_basename)
        findings: list[Finding] = []
        for module in project.modules:
            in_registry = module.path.name == registry_basename
            for node, var, direct in _env_reads(module.tree):
                if not var.startswith(prefix):
                    continue
                if var not in declared:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            rule=self.rule_id,
                            message=f"env var {var} is not declared in the "
                            f"knob registry ({registry_basename})",
                            symbol=f"undeclared:{var}",
                        )
                    )
                elif direct and not in_registry:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            rule=self.rule_id,
                            message=f"read {var} through repro.knobs.get, "
                            "not os.environ (parsing forks otherwise)",
                            symbol=f"direct:{var}",
                        )
                    )
        return findings
