"""RL003: no blocking calls inside ``async def`` in serving/ and cluster/.

The serving server and cluster router are single-event-loop processes:
one ``time.sleep`` or synchronous ``open``/``socket``/``subprocess``
call inside a coroutine stalls *every* in-flight request for its
duration — invisible at the median, a cliff at p99.  ``Future.result()``
inside a coroutine is the classic deadlock-or-stall (await it instead).

Flagged inside ``async def`` bodies (nested *sync* ``def``/``lambda``
bodies are excluded — they may legitimately run in an executor):

* ``time.sleep(...)`` (also a bare ``sleep`` imported from ``time``)
* builtin ``open(...)``
* blocking ``socket.*`` constructors/lookups
* ``subprocess`` run/Popen family
* any ``*.result()`` call

Scope: modules under the ``dirs`` option (default ``serving``,
``cluster``); pass ``dirs=None`` to lint every module.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.engine import Module
from repro.lint.findings import Finding
from repro.lint.registry import register

_DEFAULT_DIRS = ("serving", "cluster")
_SOCKET_CALLS = frozenset(
    {"socket", "create_connection", "getaddrinfo", "gethostbyname", "socketpair"}
)
_SUBPROCESS_CALLS = frozenset(
    {"run", "Popen", "call", "check_call", "check_output", "getoutput"}
)


def _time_sleep_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to ``time.sleep`` via ``from time import sleep``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _blocking_reason(call: ast.Call, sleep_aliases: set[str]) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "builtin open() blocks the event loop"
        if func.id in sleep_aliases:
            return "time.sleep() blocks the event loop (use asyncio.sleep)"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name):
        base = func.value.id
        if base == "time" and func.attr == "sleep":
            return "time.sleep() blocks the event loop (use asyncio.sleep)"
        if base == "socket" and func.attr in _SOCKET_CALLS:
            return f"socket.{func.attr}() blocks the event loop (use asyncio streams)"
        if base == "subprocess" and func.attr in _SUBPROCESS_CALLS:
            return (
                f"subprocess.{func.attr}() blocks the event loop "
                "(use asyncio.create_subprocess_exec)"
            )
    if func.attr == "result" and len(call.args) + len(call.keywords) <= 1:
        return ".result() stalls the coroutine (await the future instead)"
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: Module, rule_id: str, sleep_aliases: set[str]):
        self.module = module
        self.rule_id = rule_id
        self.sleep_aliases = sleep_aliases
        self.findings: list[Finding] = []
        self._async_depth = 0
        self._names: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        prev, self._async_depth = self._async_depth, 0
        self._names.append(node.name)
        self.generic_visit(node)
        self._names.pop()
        self._async_depth = prev

    def visit_Lambda(self, node: ast.Lambda) -> None:
        prev, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = prev

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self._names.append(node.name)
        self.generic_visit(node)
        self._names.pop()
        self._async_depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._names.append(node.name)
        self.generic_visit(node)
        self._names.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth:
            reason = _blocking_reason(node, self.sleep_aliases)
            if reason is not None:
                where = ".".join(self._names) or "<module>"
                self.findings.append(
                    Finding(
                        path=self.module.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.rule_id,
                        message=f"blocking call in async function `{where}`: {reason}",
                        symbol=f"{where}:{ast.unparse(node.func)}",
                    )
                )
        self.generic_visit(node)


@register
class AsyncBlockingRule:
    """Blocking calls inside ``async def`` (event-loop stalls)."""

    rule_id = "RL003"
    name = "async-blocking"
    scope = "module"

    def check_module(self, module: Module, config: LintConfig) -> list[Finding]:
        dirs = config.rule_option(self.rule_id, "dirs", _DEFAULT_DIRS)
        if dirs is not None:
            parts = set(module.relpath.split("/")[:-1])
            if not parts & set(dirs):
                return []
        visitor = _Visitor(module, self.rule_id, _time_sleep_aliases(module.tree))
        visitor.visit(module.tree)
        return visitor.findings
