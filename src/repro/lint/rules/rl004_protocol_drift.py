"""RL004: NDJSON protocol ops stay in sync across server, router,
replica, and client.

The wire protocol is a set of string op names re-declared in four
places: the server's dispatch chain, the router's op table, the
replica's gating logic, and :class:`ServingClient`'s request builders.
Nothing but convention keeps them aligned — an op added to the server
without a client method (or vice versa) ships silently and fails at
runtime.  This cross-module rule extracts each side's op set from the
AST and reports every asymmetry:

* every op handled by ``server.py``/``router.py``/``replica.py``
  (minus ``internal_ops`` — replica-internal ``apply``/``checkpoint``)
  must have a ``ServingClient`` method building ``{"op": <name>}``;
* every client op must be handled somewhere;
* every router *passthrough* op (op-table entries bound to the
  passthrough handler, default ``_op_read``) must be gated/handled by
  the replica.

Extraction is deliberately narrow — op-table dict literals assigned to
``*ops*`` attributes, and ``op == "..."`` / ``op in (...)``
comparisons on a bare ``op`` variable — so request-*building* dicts on
the caller side never count as handlers.  To guard against the checker
silently matching nothing, a protocol file that yields **zero** ops is
itself a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.config import LintConfig
from repro.lint.engine import Module, Project
from repro.lint.findings import Finding
from repro.lint.registry import register

_DEFAULT_INTERNAL_OPS = frozenset({"apply", "checkpoint"})
_DEFAULT_PASSTHROUGH_HANDLER = "_op_read"
_DEFAULT_CLIENT_CLASS = "ServingClient"
_SERVER_FILES = ("server.py", "router.py", "replica.py")
_CLIENT_FILE = "client.py"


@dataclass
class _OpSite:
    op: str
    module: Module
    line: int
    detail: str = ""  # handler / method name when known


@dataclass
class _Extraction:
    handled: dict[str, list[_OpSite]] = field(default_factory=dict)
    passthrough: dict[str, _OpSite] = field(default_factory=dict)
    client: dict[str, _OpSite] = field(default_factory=dict)

    def add_handled(self, site: _OpSite) -> None:
        self.handled.setdefault(site.op, []).append(site)


def _attr_chain_contains_ops(expr: ast.expr) -> bool:
    """True for targets/receivers like ``self._ops`` / ``self._async_ops``."""
    return isinstance(expr, ast.Attribute) and "ops" in expr.attr


def _dict_op_keys(node: ast.Dict):
    """(op, handler-name) for each string key bound to a handler ref."""
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if isinstance(value, ast.Attribute):
            yield key.value, value.attr, key.lineno
        elif isinstance(value, ast.Name):
            yield key.value, value.id, key.lineno


def _extract_handled(module: Module, op_var: str, extraction: _Extraction) -> None:
    for node in ast.walk(module.tree):
        # self._ops = {...} / self._async_ops = {...}
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            if any(_attr_chain_contains_ops(t) for t in node.targets):
                for op, handler, line in _dict_op_keys(node.value):
                    extraction.add_handled(_OpSite(op, module, line, handler))
        # self._async_ops.update({...})
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and _attr_chain_contains_ops(node.func.value)
            and node.args
            and isinstance(node.args[0], ast.Dict)
        ):
            for op, handler, line in _dict_op_keys(node.args[0]):
                extraction.add_handled(_OpSite(op, module, line, handler))
        # op == "query" / op in ("query", "query_many", ...)
        elif (
            isinstance(node, ast.Compare)
            and isinstance(node.left, ast.Name)
            and node.left.id == op_var
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Eq, ast.In, ast.NotIn))
        ):
            comparator = node.comparators[0]
            literals: list[ast.expr]
            if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                literals = list(comparator.elts)
            else:
                literals = [comparator]
            for lit in literals:
                if isinstance(lit, ast.Constant) and isinstance(lit.value, str):
                    extraction.add_handled(_OpSite(lit.value, module, node.lineno))


def _extract_passthrough(
    module: Module, handler_name: str, extraction: _Extraction
) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            if any(_attr_chain_contains_ops(t) for t in node.targets):
                for op, handler, line in _dict_op_keys(node.value):
                    if handler == handler_name:
                        extraction.passthrough[op] = _OpSite(op, module, line, handler)


def _extract_client(module: Module, class_name: str, extraction: _Extraction) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(method):
                    if not isinstance(sub, ast.Dict):
                        continue
                    for key, value in zip(sub.keys, sub.values):
                        if (
                            isinstance(key, ast.Constant)
                            and key.value == "op"
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            extraction.client.setdefault(
                                value.value,
                                _OpSite(value.value, module, method.lineno, method.name),
                            )


@register
class ProtocolDriftRule:
    """NDJSON op drift across server / router / replica / client."""

    rule_id = "RL004"
    name = "protocol-drift"
    scope = "project"

    def check_project(self, project: Project, config: LintConfig) -> list[Finding]:
        internal = frozenset(
            config.rule_option(self.rule_id, "internal_ops", _DEFAULT_INTERNAL_OPS)
        )
        passthrough_handler = config.rule_option(
            self.rule_id, "passthrough_handler", _DEFAULT_PASSTHROUGH_HANDLER
        )
        client_class = config.rule_option(
            self.rule_id, "client_class", _DEFAULT_CLIENT_CLASS
        )
        op_var = config.rule_option(self.rule_id, "op_var", "op")

        server_modules = {
            name: project.find(name) for name in _SERVER_FILES
        }
        client_modules = project.find(_CLIENT_FILE)
        if not any(server_modules.values()) and not client_modules:
            return []  # tree has no protocol surface; nothing to check

        extraction = _Extraction()
        replica_ops: set[str] = set()
        per_file_counts: list[tuple[Module, int]] = []

        for name, modules in server_modules.items():
            for module in modules:
                before = sum(len(s) for s in extraction.handled.values())
                _extract_handled(module, op_var, extraction)
                if name == "router.py":
                    _extract_passthrough(module, passthrough_handler, extraction)
                after = sum(len(s) for s in extraction.handled.values())
                per_file_counts.append((module, after - before))
                if name == "replica.py":
                    replica_ops |= {
                        op
                        for op, sites in extraction.handled.items()
                        if any(s.module is module for s in sites)
                    }
        for module in client_modules:
            before = len(extraction.client)
            _extract_client(module, client_class, extraction)
            per_file_counts.append((module, len(extraction.client) - before))

        findings: list[Finding] = []

        for module, count in per_file_counts:
            if count == 0:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=1,
                        col=1,
                        rule=self.rule_id,
                        message=f"protocol file {module.path.name} yielded no ops — "
                        "the extractor no longer matches the dispatch style",
                        symbol=f"empty-extraction:{module.path.name}",
                    )
                )

        served = set(extraction.handled) - internal
        client_ops = set(extraction.client)
        report_module = client_modules[0] if client_modules else next(
            m for mods in server_modules.values() for m in mods
        )

        for op in sorted(served - client_ops):
            site = extraction.handled[op][0]
            findings.append(
                Finding(
                    path=report_module.relpath,
                    line=1,
                    col=1,
                    rule=self.rule_id,
                    message=f"op `{op}` is handled ({site.module.path.name}:"
                    f"{site.line}) but {client_class} has no method sending it",
                    symbol=f"missing-client:{op}",
                )
            )
        for op in sorted(client_ops - served):
            site = extraction.client[op]
            findings.append(
                Finding(
                    path=site.module.relpath,
                    line=site.line,
                    col=1,
                    rule=self.rule_id,
                    message=f"{client_class}.{site.detail} sends op `{op}` "
                    "that no server/router/replica handles",
                    symbol=f"unhandled:{op}",
                )
            )

        if server_modules["replica.py"]:
            for op in sorted(set(extraction.passthrough) - replica_ops):
                site = extraction.passthrough[op]
                findings.append(
                    Finding(
                        path=site.module.relpath,
                        line=site.line,
                        col=1,
                        rule=self.rule_id,
                        message=f"router passthrough op `{op}` is not gated/"
                        "handled by the replica",
                        symbol=f"passthrough:{op}",
                    )
                )
        return findings
