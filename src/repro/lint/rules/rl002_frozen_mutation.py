"""RL002: copy-on-write ``Frozen*`` snapshot instances are never mutated.

The serving tier's correctness rests on one contract: once an
``OracleSnapshot`` (and the ``Frozen*`` views inside it) is published,
every reader thread may traverse it without a lock *because nothing
ever writes to it again*.  A single post-publish mutation reintroduces
exactly the torn-read races the CoW design exists to remove — and no
test can reliably catch it.

Flagged, via function-local dataflow (a name assigned from a
``Frozen*``/registered constructor call, or a parameter/variable
annotated with such a type):

* attribute assignment ``snap.attr = ...`` / ``del snap.attr``
* item assignment ``snap[k] = ...``
* augmented assignment ``snap.attr += ...``
* mutating method calls (``append``/``update``/``pop``/…)

Inside a ``Frozen*`` class itself, ``self.attr = ...`` is legal only in
construction methods (``__init__``/``__new__``/``_freeze``).

Options: ``prefix`` (default ``"Frozen"``), ``extra_names`` (class
names treated as frozen without the prefix; default
``{"OracleSnapshot"}``), ``init_methods``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.engine import Module
from repro.lint.findings import Finding
from repro.lint.registry import register

_DEFAULT_PREFIX = "Frozen"
_DEFAULT_EXTRA = frozenset({"OracleSnapshot"})
_DEFAULT_INIT_METHODS = frozenset({"__init__", "__new__", "_freeze"})
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    }
)


def _type_name(annotation: ast.expr | None) -> str | None:
    """The head class name of an annotation (`FrozenGraph`,
    `"FrozenGraph"`, `Optional[FrozenGraph]`, `repro.x.FrozenGraph`)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[")[0].strip()
        return head.split(".")[-1] or None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        inner = annotation.slice
        for candidate in (inner, annotation.value):
            name = _type_name(candidate)
            if name is not None:
                return name
    return None


class _FrozenNames:
    """Which local names are frozen instances, per function scope."""

    def __init__(self, frozen_classes):
        self._is_frozen_class = frozen_classes
        self.names: set[str] = set()

    def constructor_name(self, call: ast.expr) -> bool:
        if not isinstance(call, ast.Call):
            return False
        func = call.func
        if isinstance(func, ast.Name):
            return self._is_frozen_class(func.id)
        if isinstance(func, ast.Attribute):
            # FrozenX.from_parts(...) / snapshot.OracleSnapshot.capture(...)
            if self._is_frozen_class(func.attr):
                return True
            if isinstance(func.value, ast.Name) and self._is_frozen_class(func.value.id):
                return True
            if isinstance(func.value, ast.Attribute) and self._is_frozen_class(
                func.value.attr
            ):
                return True
        return False

    def learn_assign(self, node: ast.Assign) -> None:
        if self.constructor_name(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)

    def learn_annotation(self, name: str, annotation: ast.expr | None) -> None:
        head = _type_name(annotation)
        if head is not None and self._is_frozen_class(head):
            self.names.add(name)


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: Module, rule_id: str, is_frozen_class, init_methods):
        self.module = module
        self.rule_id = rule_id
        self.is_frozen_class = is_frozen_class
        self.init_methods = init_methods
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        self._scopes: list[_FrozenNames] = []

    # -- scope management -------------------------------------------------
    def _enter_function(self, node) -> None:
        scope = _FrozenNames(self.is_frozen_class)
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            scope.learn_annotation(arg.arg, arg.annotation)
        if args.vararg is not None:
            scope.learn_annotation(args.vararg.arg, args.vararg.annotation)
        if args.kwarg is not None:
            scope.learn_annotation(args.kwarg.arg, args.kwarg.annotation)
        self._scopes.append(scope)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self._enter_function(node)
        self.generic_visit(node)
        self._scopes.pop()
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- inference --------------------------------------------------------
    def _frozen_name(self, expr: ast.expr) -> str | None:
        """`snap` if ``expr`` is a name known (or self inside Frozen)."""
        if isinstance(expr, ast.Name):
            for scope in reversed(self._scopes):
                if expr.id in scope.names:
                    return expr.id
        return None

    def _in_frozen_construction(self) -> bool:
        return (
            bool(self._class_stack)
            and self.is_frozen_class(self._class_stack[-1])
            and bool(self._func_stack)
            and self._func_stack[-1] in self.init_methods
        )

    def _flag(self, node: ast.AST, target: str, what: str) -> None:
        where = ".".join(self._class_stack + self._func_stack[-1:]) or "<module>"
        self.findings.append(
            Finding(
                path=self.module.relpath,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=self.rule_id,
                message=f"mutation of frozen snapshot `{target}` ({what}) — "
                "published CoW snapshots are immutable",
                symbol=f"{where}:{target}:{what}",
            )
        )

    # -- checks -----------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scopes:
            self._scopes[-1].learn_assign(node)
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._scopes and isinstance(node.target, ast.Name):
            self._scopes[-1].learn_annotation(node.target.id, node.annotation)
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            name = self._frozen_name(target.value)
            if name is not None:
                self._flag(target, name, f"attribute store .{target.attr}")
            elif (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._class_stack
                and self.is_frozen_class(self._class_stack[-1])
                and not self._in_frozen_construction()
            ):
                self._flag(
                    target,
                    f"self ({self._class_stack[-1]})",
                    f"attribute store .{target.attr} outside construction",
                )
        elif isinstance(target, ast.Subscript):
            name = self._frozen_name(target.value)
            if name is not None:
                self._flag(target, name, "item store")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            name = self._frozen_name(func.value)
            if name is not None:
                self._flag(node, name, f"mutating call .{func.attr}()")
        self.generic_visit(node)


@register
class FrozenMutationRule:
    """Mutation of ``Frozen*`` CoW snapshot instances."""

    rule_id = "RL002"
    name = "frozen-mutation"
    scope = "module"

    def check_module(self, module: Module, config: LintConfig) -> list[Finding]:
        prefix = config.rule_option(self.rule_id, "prefix", _DEFAULT_PREFIX)
        extra = frozenset(config.rule_option(self.rule_id, "extra_names", _DEFAULT_EXTRA))
        init_methods = frozenset(
            config.rule_option(self.rule_id, "init_methods", _DEFAULT_INIT_METHODS)
        )

        def is_frozen_class(name: str) -> bool:
            return name.startswith(prefix) or name in extra

        visitor = _Visitor(module, self.rule_id, is_frozen_class, init_methods)
        visitor.visit(module.tree)
        return visitor.findings
