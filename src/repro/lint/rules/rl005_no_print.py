"""RL005: library code must log through StructuredLogger, never ``print``.

A bare ``print(...)`` in a library module writes prose to stdout that a
supervisor running a dozen replica processes cannot merge or filter;
:class:`repro.obs.log.StructuredLogger` emits one JSON object per line
instead.  Command-line entry points are the exception — their job *is*
to print — so modules named ``cli.py`` or ``__main__.py`` are exempt
(option ``exempt_basenames``).
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.engine import Module
from repro.lint.findings import Finding
from repro.lint.registry import register

_DEFAULT_EXEMPT = frozenset({"cli.py", "__main__.py"})


@register
class NoPrintRule:
    """Bare ``print`` in library code (use StructuredLogger)."""

    rule_id = "RL005"
    name = "no-print"
    scope = "module"

    def check_module(self, module: Module, config: LintConfig) -> list[Finding]:
        exempt = frozenset(
            config.rule_option(self.rule_id, "exempt_basenames", _DEFAULT_EXEMPT)
        )
        if module.path.name in exempt:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.rule_id,
                        message="bare print() in library code; use "
                        "repro.obs.log.StructuredLogger",
                        symbol=f"print@{_enclosing(module.tree, node)}",
                    )
                )
        return findings


def _enclosing(tree: ast.Module, target: ast.AST) -> str:
    """Dotted name of the function/class lexically containing ``target``
    (location-independent fingerprint anchor)."""
    path: list[str] = []

    def visit(node: ast.AST, names: list[str]) -> bool:
        if node is target:
            path.extend(names)
            return True
        for child in ast.iter_child_nodes(node):
            label = names
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                label = names + [child.name]
            if visit(child, label):
                return True
        return False

    visit(tree, [])
    return ".".join(path) or "<module>"
