"""reprolint: project-specific static analysis for the repro codebase.

Six AST rules guard the conventions the test suite cannot see
(docs/DESIGN.md §14):

== ======================= ==================================================
id name                    guards
== ======================= ==================================================
RL001 lock-discipline      attrs written under ``with self._lock`` are never
                           touched outside one in the same class
RL002 frozen-mutation      ``Frozen*`` CoW snapshot instances are never
                           mutated after construction
RL003 async-blocking       no blocking calls (``time.sleep``, sync ``open``/
                           ``socket``/``subprocess``, ``.result()``) inside
                           ``async def`` in serving/ and cluster/
RL004 protocol-drift       NDJSON ops stay in sync across server, router,
                           replica and ``ServingClient``
RL005 no-print             library code logs through ``StructuredLogger``
RL006 env-knobs            every ``REPRO_*`` env read is declared in
                           :mod:`repro.knobs`
== ======================= ==================================================

Run with ``repro lint`` or ``tools/reprolint.py``; silence a finding
with ``# reprolint: disable=RLnnn`` (same line) or accept it in
``tools/reprolint-baseline.json``.
"""

from repro.lint.config import LintConfig
from repro.lint.engine import Module, Project, run_lint
from repro.lint.findings import Finding, LintResult
from repro.lint.registry import all_rules, register

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Module",
    "Project",
    "all_rules",
    "register",
    "run_lint",
]
