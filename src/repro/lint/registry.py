"""Rule registry: rules self-register at import time.

A rule is a class with a ``rule_id`` (``RLnnn``), a one-line ``name``,
and either ``check_module(module, config)`` (runs once per parsed file)
or ``check_project(project, config)`` (runs once per lint run, for
cross-module rules like protocol drift).  Registration is a decorator::

    @register
    class NoPrint:
        rule_id = "RL005"
        name = "no-print"
        scope = "module"
        def check_module(self, module, config): ...

Importing :mod:`repro.lint.rules` registers the built-in six.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.lint.findings import Finding


@runtime_checkable
class LintRule(Protocol):
    rule_id: str
    name: str
    scope: str  # "module" | "project"


_RULES: dict[str, type] = {}


def register(cls: type) -> type:
    rule_id = getattr(cls, "rule_id", None)
    if not rule_id or not rule_id.startswith("RL"):
        raise ValueError(f"{cls.__name__}: rule_id must look like 'RLnnn'")
    if rule_id in _RULES and _RULES[rule_id] is not cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _RULES[rule_id] = cls
    return cls


def all_rules() -> dict[str, type]:
    """rule_id -> rule class, built-ins included (import side effect)."""
    import repro.lint.rules  # noqa: F401  (registers on import)

    return dict(sorted(_RULES.items()))


def instantiate(select: Iterable[str] | None = None) -> list[LintRule]:
    rules = all_rules()
    wanted = set(select) if select is not None else set(rules)
    unknown = wanted - set(rules)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [rules[rid]() for rid in sorted(wanted)]


__all__ = ["LintRule", "register", "all_rules", "instantiate", "Finding"]
