"""The lint engine: collect → parse → run rules → partition findings.

One :func:`run_lint` call walks the configured paths, parses every
``.py`` file once, hands the module table to each selected rule, then
partitions raw findings into actionable / suppressed / baselined.  A
file that fails to parse produces a single ``RL000`` parse-error
finding instead of aborting the run (CI should say *which* file broke).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import load_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintResult
from repro.lint.registry import instantiate
from repro.lint.suppress import Suppressions, parse_suppressions

PARSE_RULE = "RL000"


@dataclass
class Module:
    """One parsed source file, shared by every rule."""

    path: Path  # absolute
    relpath: str  # root-relative, POSIX separators
    source: str
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class Project:
    """The whole run's view, for cross-module rules."""

    root: Path
    modules: list[Module] = field(default_factory=list)

    def find(self, basename: str) -> list[Module]:
        """Modules whose file name is exactly ``basename``."""
        return [m for m in self.modules if m.path.name == basename]


def _collect_files(config: LintConfig) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in config.paths:
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            continue
        for file in candidates:
            if "__pycache__" in file.parts:
                continue
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(resolved)
    return files


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(config: LintConfig) -> tuple[Project, list[Finding]]:
    """Parse everything; syntax failures become RL000 findings."""
    project = Project(root=config.root)
    parse_errors: list[Finding] = []
    for file in _collect_files(config):
        relpath = _relpath(file, config.root)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 1
            parse_errors.append(
                Finding(
                    path=relpath,
                    line=int(line),
                    col=int(col),
                    rule=PARSE_RULE,
                    message=f"cannot parse file: {exc.__class__.__name__}: {exc}",
                    symbol="parse",
                )
            )
            continue
        project.modules.append(
            Module(
                path=file,
                relpath=relpath,
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
        )
    return project, parse_errors


def run_lint(config: LintConfig) -> LintResult:
    """Run the selected rules and partition the outcome.

    Partition order: suppression comments win over the baseline (a
    suppressed finding never consumes a baseline entry), and only what
    is left after both buckets sets a nonzero exit code.
    """
    project, raw = load_project(config)
    rules = instantiate(config.select)

    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(project, config))
        else:
            for module in project.modules:
                raw.extend(rule.check_module(module, config))

    suppress_index = {m.relpath: m.suppressions for m in project.modules}
    baseline = load_baseline(config.baseline_path) if config.baseline_path else {}

    result = LintResult(checked_files=len(project.modules))
    for finding in sorted(set(raw)):
        suppressions = suppress_index.get(finding.path)
        if suppressions is not None and suppressions.covers(finding.line, finding.rule):
            result.suppressed.append(finding)
        elif finding.fingerprint in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
