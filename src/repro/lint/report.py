"""Text and JSON reporters over a :class:`~repro.lint.findings.LintResult`."""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.baseline import stale_entries
from repro.lint.findings import LintResult


def render_text(result: LintResult, baseline: dict[str, dict] | None = None) -> str:
    lines: list[str] = [f.render() for f in result.findings]
    counts = Counter(f.rule for f in result.findings)
    if lines:
        lines.append("")
    summary = (
        f"{len(result.findings)} finding(s) in {result.checked_files} file(s)"
        f" ({len(result.suppressed)} suppressed, {len(result.baselined)} baselined)"
    )
    if counts:
        summary += " — " + ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
    lines.append(summary)
    if baseline:
        matched = {f.fingerprint for f in result.baselined}
        stale = stale_entries(baseline, matched)
        if stale:
            lines.append(f"note: {len(stale)} stale baseline entr(y/ies) — safe to remove:")
            lines.extend(
                f"  {e['fingerprint']}  {e['rule']} {e['path']} ({e['symbol']})" for e in stale
            )
    return "\n".join(lines)


def render_json(result: LintResult, baseline: dict[str, dict] | None = None) -> str:
    matched = {f.fingerprint for f in result.baselined}
    payload = {
        "version": 1,
        "checked_files": result.checked_files,
        "counts": dict(sorted(Counter(f.rule for f in result.findings).items())),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": stale_entries(baseline or {}, matched),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
