"""``repro lint`` / ``tools/reprolint.py`` command-line front end.

Exit codes: 0 clean (after suppressions + baseline), 1 findings,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.config import DEFAULT_BASELINE, LintConfig
from repro.lint.engine import run_lint
from repro.lint.registry import all_rules
from repro.lint.report import render_json, render_text


def build_parser(prog: str = "reprolint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} under --root, if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in all_rules().items():
            doc = (cls.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{rule_id}  {getattr(cls, 'name', '?'):<18} {summary}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2

    select: set[str] | None = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}

    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
    else:
        candidate = root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None

    config = LintConfig(
        root=root,
        paths=[Path(p) for p in args.paths],
        select=select,
        baseline_path=None if args.update_baseline else baseline_path,
    )

    try:
        result = run_lint(config)
    except ValueError as exc:  # unknown --select ids, bad baseline file
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = baseline_path or root / DEFAULT_BASELINE
        reasons = {}
        if target.exists():
            reasons = {
                fp: entry.get("reason", "")
                for fp, entry in load_baseline(target).items()
            }
        save_baseline(target, result.findings, reasons)
        print(f"wrote {len(result.findings)} entr(y/ies) to {target}")
        return 0

    baseline = load_baseline(config.baseline_path) if config.baseline_path else {}
    if args.format == "json":
        print(render_json(result, baseline))
    else:
        print(render_text(result, baseline))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
