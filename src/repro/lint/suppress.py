"""``# reprolint: disable=...`` suppression comments.

Two scopes:

* line — ``x = 1  # reprolint: disable=RL001`` silences the named
  rule(s) for findings reported **on that line**;
* file — a ``# reprolint: disable-file=RL005`` comment anywhere in the
  file (conventionally in the header) silences the rule(s) for the
  whole module.

Multiple rules separate with commas (``disable=RL001,RL003``).  The
tokenizer — not a regex over raw text — finds the comments, so the
directive inside a string literal is not a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>RL\d+(?:\s*,\s*RL\d+)*)"
)


@dataclass
class Suppressions:
    """Parsed suppression state for one module."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def covers(self, line: int, rule: str) -> bool:
        if rule in self.file_wide:
            return True
        return rule in self.by_line.get(line, set())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every reprolint directive from ``source``.

    Unreadable source (tokenize errors on top of a syntax error the
    parser already reported) yields no suppressions rather than raising.
    """
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("scope") == "disable-file":
                out.file_wide |= rules
            else:
                out.by_line.setdefault(tok.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError):
        pass
    return out
