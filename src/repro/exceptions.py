"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Errors are raised eagerly on invalid input ("errors should
never pass silently"), with messages that state what was received and what
was expected.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors concerning graph structure or graph inputs."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class EdgeExistsError(GraphError, ValueError):
    """An edge insertion targets an edge that is already present.

    The paper's problem definition (Section 3) requires ``(a, b) not in E``
    for an edge insertion, so inserting a duplicate edge is a caller error.
    """

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """A self-loop was supplied where simple edges are required."""

    def __init__(self, vertex: object) -> None:
        super().__init__(
            f"self-loop ({vertex!r}, {vertex!r}) is not allowed in a simple graph"
        )
        self.vertex = vertex


class LabellingError(ReproError):
    """Base class for errors concerning distance labellings."""


class NotALandmarkError(LabellingError, KeyError):
    """An operation expected a landmark but was given a plain vertex."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not a landmark")
        self.vertex = vertex


class InvariantViolationError(LabellingError, AssertionError):
    """A labelling invariant (cover property, minimality, ...) is broken.

    Raised by the validation helpers in :mod:`repro.core.validation`; seeing
    this outside tests indicates a bug in construction or maintenance code.
    """


class ConstructionBudgetExceeded(ReproError):
    """An index construction exceeded its time budget.

    The benchmark harness uses this to reproduce the paper's honest failure
    reporting ("IncPLL fails for 7 out of 12 datasets due to very high
    preprocessing time and memory requirements") with a configurable gate
    instead of an out-of-memory crash.
    """

    def __init__(self, what: str, budget_s: float) -> None:
        super().__init__(f"{what} exceeded its construction budget of {budget_s:.1f}s")
        self.what = what
        self.budget_s = budget_s


class WorkloadError(ReproError):
    """Invalid workload specification (updates/queries/datasets)."""


class BenchmarkError(ReproError):
    """Invalid benchmark configuration or a failed experiment run."""


class ServingError(ReproError):
    """Invalid serving-layer state or request (:mod:`repro.serving`)."""


class ClusterError(ServingError):
    """Invalid cluster state: WAL corruption, log gaps, replica spawn or
    catch-up failures (:mod:`repro.cluster`)."""
