"""Distribution statistics over labels and the highway.

Table 1's "Labelling Size" column compresses the whole labelling into one
number; these helpers expose the structure behind it — how entries spread
over vertices and landmarks, and how well the highway covers the graph —
which is what the minimality theorem (5.2) actually controls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labelling import HighwayCoverLabelling
from repro.graph.traversal import INF

__all__ = [
    "LabelStats",
    "HighwayStats",
    "label_stats",
    "highway_stats",
    "landmark_entry_counts",
]


@dataclass(frozen=True)
class LabelStats:
    """Per-vertex label-size distribution of a labelling."""

    num_vertices: int
    total_entries: int
    labelled_vertices: int
    max_label_size: int
    mean_label_size: float
    size_bytes: int

    @property
    def empty_vertices(self) -> int:
        """Vertices carrying no entries (landmarks, covered, unreachable)."""
        return self.num_vertices - self.labelled_vertices


@dataclass(frozen=True)
class HighwayStats:
    """Connectivity and eccentricity statistics of the highway."""

    num_landmarks: int
    reachable_pairs: int
    total_pairs: int
    max_distance: float
    mean_distance: float

    @property
    def connectivity(self) -> float:
        """Fraction of landmark pairs with a finite highway distance."""
        if self.total_pairs == 0:
            return 1.0
        return self.reachable_pairs / self.total_pairs


def label_stats(labelling: HighwayCoverLabelling, num_vertices: int) -> LabelStats:
    """Label-size distribution over a graph with ``num_vertices`` vertices.

    The paper's complexity analysis uses ``l = size(L)/|V|`` — reported
    here as ``mean_label_size`` — and observes it is "significantly
    smaller than |R|" in practice; the bench ablations assert exactly that
    on every stand-in dataset.
    """
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    labels = labelling.labels
    sizes = [len(label) for _, label in labels.items()]
    return LabelStats(
        num_vertices=num_vertices,
        total_entries=labels.total_entries,
        labelled_vertices=len(sizes),
        max_label_size=max(sizes, default=0),
        mean_label_size=labels.total_entries / num_vertices,
        size_bytes=labelling.size_bytes(),
    )


def landmark_entry_counts(labelling: HighwayCoverLabelling) -> dict[int, int]:
    """How many label entries each landmark contributes.

    A landmark with few entries covers little of the graph directly (its
    shortest-path trees are mostly pruned by other landmarks) — candidates
    for :func:`repro.landmarks.maintenance.remove_landmark`.
    """
    counts = {r: 0 for r in labelling.landmarks}
    for _, label in labelling.labels.items():
        for r in label:
            counts[r] += 1
    return counts


def highway_stats(labelling: HighwayCoverLabelling) -> HighwayStats:
    """Pairwise distance statistics of the highway ``H``."""
    highway = labelling.highway
    landmarks = highway.landmarks
    n = len(landmarks)
    total_pairs = n * (n - 1) // 2
    finite: list[float] = []
    for i, r1 in enumerate(landmarks):
        row = highway.row(r1)
        for r2 in landmarks[i + 1 :]:
            d = row.get(r2, INF)
            if d != INF:
                finite.append(d)
    return HighwayStats(
        num_landmarks=n,
        reachable_pairs=len(finite),
        total_pairs=total_pairs,
        max_distance=max(finite) if finite else 0.0,
        mean_distance=sum(finite) / len(finite) if finite else 0.0,
    )
