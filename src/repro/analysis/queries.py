"""Query-cost decomposition over a workload of vertex pairs.

Section 6.1.3 of the paper attributes query time to labelling size and
explains the stability of IncHL+'s query times by the stability of its
labelling.  This module measures the mechanism directly: for a sample of
queries, how much label-join work was done, how often the bound ``d⊤``
alone was already exact (a shortest path met a landmark — the fraction
the highway cover actually covers), and how often the bounded sparsified
search improved on it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import query_distance_probed

__all__ = ["QueryCostProfile", "query_cost_profile"]


@dataclass(frozen=True)
class QueryCostProfile:
    """Aggregated cost decomposition of a query workload."""

    num_queries: int
    landmark_endpoint_queries: int
    bound_exact_queries: int
    search_won_queries: int
    mean_label_join_ops: float
    unreachable_queries: int

    @property
    def bound_exact_fraction(self) -> float:
        """Fraction of queries the label bound alone answered exactly —
        the empirical coverage of the highway cover."""
        if self.num_queries == 0:
            return 0.0
        return self.bound_exact_queries / self.num_queries

    @property
    def search_won_fraction(self) -> float:
        """Fraction where the sparsified search beat the bound (the
        landmark-free shortest-path case)."""
        if self.num_queries == 0:
            return 0.0
        return self.search_won_queries / self.num_queries


def query_cost_profile(
    graph,
    labelling: HighwayCoverLabelling,
    pairs: Sequence[tuple[int, int]],
) -> QueryCostProfile:
    """Probe every pair and aggregate the cost decomposition."""
    landmark_endpoint = 0
    bound_exact = 0
    search_won = 0
    unreachable = 0
    join_total = 0
    for u, v in pairs:
        probe = query_distance_probed(graph, labelling, u, v)
        join_total += probe.label_join_ops
        if probe.landmark_endpoint:
            landmark_endpoint += 1
        if probe.bound_was_exact:
            bound_exact += 1
        if probe.search_won:
            search_won += 1
        if probe.distance == float("inf"):
            unreachable += 1
    n = len(pairs)
    return QueryCostProfile(
        num_queries=n,
        landmark_endpoint_queries=landmark_endpoint,
        bound_exact_queries=bound_exact,
        search_won_queries=search_won,
        mean_label_join_ops=join_total / n if n else 0.0,
        unreachable_queries=unreachable,
    )
