"""Affected-vertex measurement (Figure 1's quantity, as a reusable tool).

The paper's Figure 1 plots, per network, the percentage of vertices
affected by each of 1,000 single edge insertions, sorted descending —
the empirical justification for incremental maintenance (most changes
touch tiny regions; a few touch up to 10%).  The benchmark experiment
:mod:`repro.bench.experiments.figure1` renders that figure; this module
exposes the underlying measurement for programmatic use:

* :func:`probe_affected_ratio` measures one *hypothetical* insertion
  without permanently changing anything (insert, measure, roll back);
* :func:`measure_affected_ratios` replays a whole stream of insertions,
  permanently, recording the affected footprint of each.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.inchl import apply_edge_insertion, find_affected
from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance

__all__ = [
    "AffectedMeasurement",
    "probe_affected_ratio",
    "measure_affected_ratios",
]


@dataclass(frozen=True)
class AffectedMeasurement:
    """Affected footprint of one edge insertion.

    ``ratio`` is the paper's Figure 1 quantity: ``|Λ| / |V|`` where
    ``Λ = ∪_r Λ_r`` (distinct affected vertices over all landmarks).
    """

    edge: tuple[int, int]
    affected_union: int
    total_affected: int
    num_vertices: int

    @property
    def ratio(self) -> float:
        """``|Λ| / |V|`` in [0, 1]."""
        return self.affected_union / self.num_vertices

    @property
    def percentage(self) -> float:
        """``ratio`` as a percentage, as Figure 1's y-axis reports it."""
        return 100.0 * self.ratio


def probe_affected_ratio(
    graph, labelling: HighwayCoverLabelling, a: int, b: int
) -> AffectedMeasurement:
    """Measure the affected set of inserting ``(a, b)`` without committing.

    Runs FindAffected for every landmark on a temporarily inserted edge,
    then removes the edge again; the labelling is never touched.  Useful
    for what-if analyses (e.g. ranking candidate edges by disruption).
    """
    graph.add_edge(a, b)
    try:
        union: set[int] = set()
        total = 0
        for r in labelling.landmarks:
            da = landmark_distance(labelling, r, a)
            db = landmark_distance(labelling, r, b)
            if da == db:
                continue
            anchor, root, dist = (a, b, da) if da < db else (b, a, db)
            search = find_affected(graph, labelling, r, anchor, root, dist)
            union.update(search.new_dist)
            total += search.num_affected
    finally:
        graph.remove_edge(a, b)
    return AffectedMeasurement(
        edge=(a, b),
        affected_union=len(union),
        total_affected=total,
        num_vertices=graph.num_vertices,
    )


def measure_affected_ratios(
    graph,
    labelling: HighwayCoverLabelling,
    insertions: Sequence[tuple[int, int]],
) -> list[AffectedMeasurement]:
    """Replay ``insertions`` (permanently), measuring each footprint.

    This is Figure 1's protocol: each insertion is applied with IncHL+,
    so later measurements see the graph (and labelling) as updated by the
    earlier ones.  Sort the resulting percentages descending to get the
    paper's curve.
    """
    measurements = []
    for a, b in insertions:
        graph.add_edge(a, b)
        stats = apply_edge_insertion(graph, labelling, a, b)
        measurements.append(
            AffectedMeasurement(
                edge=(a, b),
                affected_union=stats.affected_union,
                total_affected=stats.total_affected,
                num_vertices=graph.num_vertices,
            )
        )
    return measurements
