"""Least-squares validation of the paper's update-cost bound.

Section 5 bounds one IncHL+ update by ``O(|R| · m · d · l)`` — affected
vertices ``m``, average degree ``d``, average label size ``l``, summed
over landmarks.  This module turns that asymptotic claim into a measurable
one: collect ``(cost_term, seconds)`` pairs from instrumented updates and
fit ``seconds ≈ α + β · cost_term`` by ordinary least squares.  A good fit
(high R², positive β) is empirical support that the implementation tracks
the analysis; the complexity test-suite and an ablation bench both use it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["UpdateRecord", "CostModel"]


@dataclass(frozen=True)
class UpdateRecord:
    """One measured update: the bound's ingredients plus wall time.

    ``affected_total`` is ``Σ_r |Λ_r|`` (the bound charges per landmark,
    so the sum — not the distinct union — is the right ``|R| · m``).
    """

    affected_total: int
    avg_degree: float
    avg_label_size: float
    seconds: float

    @property
    def cost_term(self) -> float:
        """The bound's product ``(Σ_r |Λ_r|) · d · l``."""
        return self.affected_total * self.avg_degree * self.avg_label_size


@dataclass(frozen=True)
class CostModel:
    """An affine fit ``seconds ≈ intercept + slope · cost_term``."""

    slope: float
    intercept: float
    r_squared: float
    num_records: int

    @classmethod
    def fit(cls, records: Sequence[UpdateRecord]) -> "CostModel":
        """Ordinary least squares over measured updates.

        Requires at least two records with distinct cost terms; constant
        inputs make the slope unidentifiable.
        """
        if len(records) < 2:
            raise ValueError(f"need at least 2 records, got {len(records)}")
        x = np.array([rec.cost_term for rec in records], dtype=float)
        y = np.array([rec.seconds for rec in records], dtype=float)
        if np.ptp(x) == 0:
            raise ValueError("all cost terms identical; slope unidentifiable")
        design = np.column_stack([x, np.ones_like(x)])
        (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
        predicted = design @ np.array([slope, intercept])
        residual = float(((y - predicted) ** 2).sum())
        total = float(((y - y.mean()) ** 2).sum())
        r_squared = 1.0 if total == 0 else 1.0 - residual / total
        return cls(
            slope=float(slope),
            intercept=float(intercept),
            r_squared=r_squared,
            num_records=len(records),
        )

    def predict(self, record: UpdateRecord) -> float:
        """Predicted seconds for a record's cost term."""
        return self.intercept + self.slope * record.cost_term

    def predict_cost_term(self, cost_term: float) -> float:
        """Predicted seconds for a raw cost-term value."""
        return self.intercept + self.slope * cost_term
