"""Analysis toolkit over labellings, affected sets and update costs.

Three modules support the paper's empirical narrative beyond the headline
tables:

* :mod:`repro.analysis.affected` — affected-vertex measurement (the
  quantity of Figure 1 and of the complexity bound ``O(|R| m d l)``);
* :mod:`repro.analysis.labels` — label/highway distribution statistics
  (what "minimality" buys in concrete bytes and entry counts);
* :mod:`repro.analysis.costmodel` — a least-squares fit of measured
  update times against the paper's ``|R| · m · d · l`` cost term;
* :mod:`repro.analysis.queries` — query-cost decomposition (how often
  the label bound alone is exact vs the sparsified search winning).
"""

from repro.analysis.affected import (
    AffectedMeasurement,
    measure_affected_ratios,
    probe_affected_ratio,
)
from repro.analysis.costmodel import CostModel, UpdateRecord
from repro.analysis.labels import (
    HighwayStats,
    LabelStats,
    highway_stats,
    label_stats,
    landmark_entry_counts,
)
from repro.analysis.queries import QueryCostProfile, query_cost_profile

__all__ = [
    "AffectedMeasurement",
    "measure_affected_ratios",
    "probe_affected_ratio",
    "CostModel",
    "UpdateRecord",
    "LabelStats",
    "HighwayStats",
    "label_stats",
    "highway_stats",
    "landmark_entry_counts",
    "QueryCostProfile",
    "query_cost_profile",
]
