"""Bench-vs-baseline comparison: the CI perf-regression gate.

Compares a fresh ``python -m repro.bench --json`` output against a
committed ``BENCH_*.json`` baseline, row by row.  A row is identified by
its configuration fields (experiment/dataset/mode/replicas/...), and two
matched rows are compared metric by metric:

* **lower-better** metrics (``total_ms``, ``per_update_us``, tail
  latencies...) regress when ``fresh > baseline * (1 + threshold)``;
* **higher-better** metrics (``speedup``, ``qps``...) regress when
  ``fresh < baseline / (1 + threshold)``;
* **invariants** are absolute, not relative: ``identical`` must stay
  true and ``incorrect`` / ``bfs_incorrect`` must stay zero in the fresh
  rows — a correctness break fails the gate even when timings improved.

Comparisons that would be meaningless are *skipped*, not failed:

* rows whose **scale fields** (``updates``, ``events``, ``duration_s``,
  ``deletes``, ``clients``) differ — a smoke-profile run against a
  full-profile baseline shares row keys but not workloads;
* rows recorded on a different **host CPU count** (the ``host_cpus``
  stamp the cluster experiment writes) — replica scaling numbers from a
  1-CPU container say nothing about a 8-CPU runner;
* metrics whose baseline value sits under the **noise floor** (10 ms /
  10 us / 100 qps) — a 2 ms phase timing doubling is scheduler jitter,
  not a regression.

Skips are reported, never silent: the rendered report says what was not
compared and why.  ``tools/bench_compare.py`` is the CLI wrapper; exit
code 1 means at least one regression or invariant failure.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "load_bench",
    "compare_rows",
    "compare_bench",
    "render_report",
    "has_failures",
    "LOWER_BETTER",
    "HIGHER_BETTER",
    "SCALE_FIELDS",
    "ID_FIELDS",
]

#: Fields that *identify* a row (configuration, not measurement).
ID_FIELDS = ("experiment", "dataset", "mode", "replicas", "shards", "workers")

#: Fields that set the workload scale: rows only compare when these match.
SCALE_FIELDS = ("updates", "events", "deletes", "duration_s", "clients")

#: Metrics where smaller is better (latency/cost).
LOWER_BETTER = (
    "total_ms",
    "per_update_us",
    "per_event_us",
    "p50_us",
    "p95_us",
    "p99_us",
    "attach_ms",
    "propagation_ms",
)

#: Metrics where larger is better (throughput/speedup).
HIGHER_BETTER = (
    "qps",
    "speedup",
    "speedup_vs_single",
    "speedup_vs_fallback",
)

#: Fresh-row invariants checked regardless of scale/host: field -> check.
_INVARIANTS = {
    "identical": lambda v: v is None or v is True,
    "incorrect": lambda v: v is None or v == 0,
    "bfs_incorrect": lambda v: v is None or v == 0,
}

#: Baseline values under these floors are noise, not signal.
_FLOORS = {"_ms": 10.0, "_us": 10.0, "qps": 100.0}


def _floor(metric: str) -> float:
    for suffix, floor in _FLOORS.items():
        if metric.endswith(suffix) or metric == suffix:
            return floor
    return 0.0


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_bench(path: str | os.PathLike) -> dict[str, list[dict]]:
    """Load a bench JSON file: ``{experiment: [row, ...]}``.  Top-level
    keys that are not row lists (e.g. the ``caveat`` note or a
    ``_profile`` dump) are metadata, not experiments — dropped here."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench JSON must be an object")
    return {
        name: rows for name, rows in data.items() if isinstance(rows, list)
    }


def _row_key(experiment: str, row: dict) -> tuple:
    return (experiment,) + tuple(
        (field, row.get(field)) for field in ID_FIELDS if field in row
    )


def _key_label(key: tuple) -> str:
    experiment, *fields = key
    parts = [experiment] + [
        f"{value}" for field, value in fields if value is not None
    ]
    return "/".join(str(p) for p in parts)


def compare_rows(
    key: tuple,
    baseline: dict,
    fresh: dict,
    *,
    threshold: float = 0.20,
    host_cpus: int | None = None,
) -> list[dict]:
    """Compare one matched row pair; returns finding dicts with
    ``status`` in ``regression`` / ``improved`` / ``ok`` / ``skipped`` /
    ``invariant-failure``."""
    label = _key_label(key)
    findings: list[dict] = []
    for field, check in _INVARIANTS.items():
        if field in fresh and not check(fresh[field]):
            findings.append(
                {
                    "status": "invariant-failure",
                    "row": label,
                    "metric": field,
                    "detail": f"{field}={fresh[field]!r} must stay "
                    + ("true" if field == "identical" else "0"),
                }
            )
    mismatched = [
        field
        for field in SCALE_FIELDS
        if baseline.get(field) != fresh.get(field)
    ]
    if mismatched:
        findings.append(
            {
                "status": "skipped",
                "row": label,
                "metric": ",".join(mismatched),
                "detail": "scale mismatch (different workload profile)",
            }
        )
        return findings
    base_cpus = baseline.get("host_cpus")
    fresh_cpus = fresh.get("host_cpus", host_cpus)
    if base_cpus is not None and fresh_cpus is not None and base_cpus != fresh_cpus:
        findings.append(
            {
                "status": "skipped",
                "row": label,
                "metric": "host_cpus",
                "detail": f"recorded on {base_cpus} cpu(s), "
                f"running on {fresh_cpus}",
            }
        )
        return findings
    for metric in LOWER_BETTER + HIGHER_BETTER:
        base_value = baseline.get(metric)
        fresh_value = fresh.get(metric)
        if not (_is_number(base_value) and _is_number(fresh_value)):
            continue
        if base_value <= 0:
            continue
        if base_value < _floor(metric):
            findings.append(
                {
                    "status": "skipped",
                    "row": label,
                    "metric": metric,
                    "detail": f"baseline {base_value:g} under the "
                    f"{_floor(metric):g} noise floor",
                }
            )
            continue
        lower_better = metric in LOWER_BETTER
        ratio = fresh_value / base_value
        delta_pct = (ratio - 1.0) * 100.0
        regressed = (
            ratio > 1.0 + threshold
            if lower_better
            else ratio < 1.0 / (1.0 + threshold)
        )
        improved = (
            ratio < 1.0 / (1.0 + threshold)
            if lower_better
            else ratio > 1.0 + threshold
        )
        findings.append(
            {
                "status": "regression"
                if regressed
                else ("improved" if improved else "ok"),
                "row": label,
                "metric": metric,
                "baseline": base_value,
                "fresh": fresh_value,
                "delta_pct": round(delta_pct, 1),
            }
        )
    return findings


def compare_bench(
    baseline: dict[str, list[dict]],
    fresh: dict[str, list[dict]],
    *,
    threshold: float = 0.20,
    host_cpus: int | None = None,
) -> list[dict]:
    """Compare two loaded bench dicts; returns the flat finding list.

    Baseline rows with no fresh counterpart surface as ``missing`` (the
    smoke jobs legitimately run subsets — informational, not failing);
    fresh-only rows surface as ``new``.
    """
    if host_cpus is None:
        host_cpus = os.cpu_count()
    findings: list[dict] = []
    for experiment, base_rows in baseline.items():
        fresh_rows = {
            _row_key(experiment, row): row
            for row in fresh.get(experiment, [])
            if isinstance(row, dict)
        }
        seen = set()
        for base_row in base_rows:
            if not isinstance(base_row, dict):
                continue
            key = _row_key(experiment, base_row)
            fresh_row = fresh_rows.get(key)
            if fresh_row is None:
                findings.append(
                    {
                        "status": "missing",
                        "row": _key_label(key),
                        "metric": "",
                        "detail": "row absent from the fresh run",
                    }
                )
                continue
            seen.add(key)
            findings.extend(
                compare_rows(
                    key,
                    base_row,
                    fresh_row,
                    threshold=threshold,
                    host_cpus=host_cpus,
                )
            )
        for key in fresh_rows.keys() - seen:
            findings.append(
                {
                    "status": "new",
                    "row": _key_label(key),
                    "metric": "",
                    "detail": "row absent from the baseline",
                }
            )
    return findings


def has_failures(findings: list[dict]) -> bool:
    return any(
        f["status"] in ("regression", "invariant-failure") for f in findings
    )


def render_report(findings: list[dict], *, verbose: bool = False) -> str:
    """Human-readable gate report.  Without ``verbose``, per-metric ``ok``
    lines collapse into a count; failures and skips always print."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding["status"]] = counts.get(finding["status"], 0) + 1
    lines = [
        "bench-compare: "
        + ", ".join(f"{counts.get(s, 0)} {s}" for s in (
            "regression", "invariant-failure", "ok", "improved",
            "skipped", "missing", "new",
        ) if counts.get(s))
    ]
    for finding in findings:
        status = finding["status"]
        if status == "ok" and not verbose:
            continue
        if "delta_pct" in finding:
            sign = "+" if finding["delta_pct"] >= 0 else ""
            lines.append(
                f"  [{status}] {finding['row']} {finding['metric']}: "
                f"{finding['baseline']:g} -> {finding['fresh']:g} "
                f"({sign}{finding['delta_pct']}%)"
            )
        else:
            lines.append(
                f"  [{status}] {finding['row']} {finding['metric']}: "
                f"{finding.get('detail', '')}".rstrip(": ")
            )
    if not findings:
        lines.append("  (nothing to compare)")
    return "\n".join(lines)
