"""Plain-text rendering of experiment results in the paper's shapes.

Tables render as aligned fixed-width text (the paper's Table 1/2 layout);
figure data renders as labelled series — one line per x-value — since the
harness is terminal-first.  Values render through :func:`format_value`,
which picks sensible precision and unit suffixes (ms / MB) to match the
units the paper reports.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_value", "format_bytes", "format_table", "render_series"]


def format_bytes(num_bytes: float) -> str:
    """Human-readable size with the paper's MB/GB units.

    >>> format_bytes(44_040_192)
    '42.0 MB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    for unit, factor in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f} {unit}"
    return f"{num_bytes:.0f} B"


def format_value(value: object) -> str:
    """Render one cell: floats get 3 significant-ish decimals, None is '-'.

    ``None`` renders as "-", mirroring the paper's dashes for methods that
    failed to build on a dataset.
    """
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    title: str | None = None,
) -> str:
    """Render rows (dicts keyed by header) as an aligned text table."""
    cells = [[format_value(row.get(h)) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Sequence[tuple[object, object]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render figure data: one block per named series, one line per point.

    This is the text equivalent of the paper's figures — the series carry
    the same (x, y) points a plot would.
    """
    lines = [title, f"  [{x_label} -> {y_label}]"]
    for name, points in series.items():
        lines.append(f"  {name}:")
        for x, y in points:
            lines.append(f"    {format_value(x):>10}  {format_value(y)}")
    return "\n".join(lines)
