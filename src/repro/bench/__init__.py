"""Benchmark harness regenerating every table and figure of the paper.

Each experiment module produces structured rows *and* a paper-style text
rendering; ``python -m repro.bench <experiment>`` runs one from the command
line, and ``benchmarks/bench_*.py`` wraps the same code in pytest-benchmark.

Experiments (see docs/DESIGN.md §5 for the index):

========= ==============================================================
table1    update time / query time / labelling size, IncHL+ vs IncFD vs
          IncPLL, 12 datasets
table2    dataset summary statistics
figure1   distribution of affected vertices per single change
figure3   update time under 10–50 landmarks, IncHL+ vs IncFD
figure4   cumulative update time vs from-scratch construction
ablations A1 landmark strategies, A2 update-vs-rebuild speedup,
          A3 random-pair vs replayed-real-edge workloads
========= ==============================================================
"""

from repro.bench.profile import bench_profile
from repro.bench.report import format_table, render_series
from repro.bench.runner import OracleFactory, build_oracles

__all__ = [
    "bench_profile",
    "format_table",
    "render_series",
    "OracleFactory",
    "build_oracles",
]
