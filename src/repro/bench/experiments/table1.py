"""Table 1 — update time, query time and labelling size per method.

Protocol (Section 6): per dataset, apply the *same* stream of random edge
insertions (``EI ∩ E = ∅``) to each method, timing every update; then
answer the same stream of random query pairs, timing every query; report
the index size after all updates.  IncPLL is only built where the paper
could build it (5 of 12 datasets); other cells render "-".

``PAPER_TABLE1`` carries the paper's published numbers so the renderer can
put measured and published values side by side (EXPERIMENTS.md's source).
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_bytes, format_table
from repro.bench.runner import build_oracles, default_factories, time_queries, time_updates
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run", "PAPER_TABLE1"]

#: The paper's Table 1: dataset -> method -> (update ms, query ms, size).
#: ``None`` marks the paper's "-" (method failed to build).
PAPER_TABLE1: dict[str, dict[str, tuple[float, float, str] | None]] = {
    "skitter-s": {"IncHL+": (0.194, 0.027, "42 MB"), "IncFD": (0.444, 0.019, "153 MB"), "IncPLL": (2.05, 0.047, "2.44 GB")},
    "flickr-s": {"IncHL+": (0.006, 0.007, "34 MB"), "IncFD": (0.074, 0.012, "152 MB"), "IncPLL": (1.73, 0.064, "3.69 GB")},
    "hollywood-s": {"IncHL+": (0.031, 0.027, "27 MB"), "IncFD": (0.101, 0.037, "263 MB"), "IncPLL": (48.0, 0.109, "12.58 GB")},
    "orkut-s": {"IncHL+": (2.026, 0.101, "70 MB"), "IncFD": (2.049, 0.103, "711 MB"), "IncPLL": None},
    "enwiki-s": {"IncHL+": (0.134, 0.054, "82 MB"), "IncFD": (0.163, 0.035, "608 MB"), "IncPLL": (5.91, 0.071, "12.57 GB")},
    "livejournal-s": {"IncHL+": (0.245, 0.044, "122 MB"), "IncFD": (0.268, 0.046, "663 MB"), "IncPLL": None},
    "indochina-s": {"IncHL+": (5.443, 0.737, "81 MB"), "IncFD": (158.0, 0.839, "838 MB"), "IncPLL": (2018.0, 0.063, "18.64 GB")},
    "it-s": {"IncHL+": (95.92, 1.069, "854 MB"), "IncFD": (224.0, 1.013, "4.74 GB"), "IncPLL": None},
    "twitter-s": {"IncHL+": (0.027, 0.863, "1.14 GB"), "IncFD": (0.134, 0.177, "3.83 GB"), "IncPLL": None},
    "friendster-s": {"IncHL+": (0.159, 0.814, "2.43 GB"), "IncFD": (0.419, 0.904, "9.14 GB"), "IncPLL": None},
    "uk-s": {"IncHL+": (11.49, 3.443, "1.78 GB"), "IncFD": (384.0, 5.858, "11.8 GB"), "IncPLL": None},
    "clueweb09-s": {"IncHL+": (40.68, 16.93, "163 GB"), "IncFD": None, "IncPLL": None},
}

_METHODS = ("IncHL+", "IncFD", "IncPLL")


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    cross_check_queries: int = 25,
) -> ExperimentResult:
    """Run the Table 1 experiment; returns rows and a paper-style table."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "table1")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(graph, prof.num_updates, rng=rng)
        query_pairs = sample_query_pairs(graph, prof.num_queries, rng=rng)
        built = build_oracles(spec, graph, default_factories(prof.pll_budget_s))

        per_method: dict[str, dict] = {}
        for b in built:
            if b.oracle is None:
                per_method[b.name] = {
                    "update_ms": None, "query_ms": None, "size_bytes": None,
                    "build_s": None, "failure": b.failure,
                }
                continue
            update_stats = time_updates(b.oracle, insertions)
            query_stats = time_queries(b.oracle, query_pairs)
            per_method[b.name] = {
                "update_ms": update_stats.mean_ms(),
                "query_ms": query_stats.mean_ms(),
                "size_bytes": b.oracle.size_bytes(),
                "build_s": b.build_seconds,
                "failure": None,
            }

        _cross_check(built, query_pairs[:cross_check_queries], name)

        paper = PAPER_TABLE1[name]
        for method in _METHODS:
            measured = per_method.get(method)
            published = paper.get(method)
            rows.append({
                "dataset": name,
                "method": method,
                "update_ms": measured["update_ms"] if measured else None,
                "query_ms": measured["query_ms"] if measured else None,
                "size_bytes": measured["size_bytes"] if measured else None,
                "build_s": measured["build_s"] if measured else None,
                "paper_update_ms": published[0] if published else None,
                "paper_query_ms": published[1] if published else None,
                "paper_size": published[2] if published else None,
            })

    return ExperimentResult(name="table1", rows=rows, text=_render(rows))


def _cross_check(built, pairs, dataset: str) -> None:
    """All successfully built methods must agree on every sampled query —
    the harness doubles as an integration test."""
    oracles = [(b.name, b.oracle) for b in built if b.oracle is not None]
    if len(oracles) < 2:
        return
    for u, v in pairs:
        answers = {name: oracle.query(u, v) for name, oracle in oracles}
        if len(set(answers.values())) != 1:
            raise BenchmarkError(
                f"oracles disagree on d({u}, {v}) in {dataset}: {answers}"
            )


def _render(rows: list[dict]) -> str:
    display = []
    for row in rows:
        display.append({
            "Dataset": row["dataset"],
            "Method": row["method"],
            "Update (ms)": row["update_ms"],
            "Query (ms)": row["query_ms"],
            "Label size": (
                format_bytes(row["size_bytes"])
                if row["size_bytes"] is not None else None
            ),
            "Paper upd (ms)": row["paper_update_ms"],
            "Paper qry (ms)": row["paper_query_ms"],
            "Paper size": row["paper_size"],
        })
    return format_table(
        ["Dataset", "Method", "Update (ms)", "Query (ms)", "Label size",
         "Paper upd (ms)", "Paper qry (ms)", "Paper size"],
        display,
        title="Table 1 — update/query time and labelling size (measured vs paper)",
    )
