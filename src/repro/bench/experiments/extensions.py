"""Ablations A4–A7: the repository's extension features, measured.

These experiments quantify the design choices docs/DESIGN.md calls out beyond
the paper's own evaluation:

* **A4 — batch vs sequential insertion**: the sweep-sharing win of
  :mod:`repro.core.batch` over one-at-a-time IncHL+ for bursts of edges.
* **A5 — decremental strategies**: fine-grained DecHL
  (:mod:`repro.core.dechl`) vs the coarse per-landmark rebuild
  (:mod:`repro.core.decremental`) vs a full reconstruction.
* **A6 — construction fast path**: the numpy CSR builder
  (:mod:`repro.core.construction_fast`) vs the reference builder — the
  "C extension substitute" dividend.
* **A7 — cost-model fit**: least-squares fit of measured update times
  against the paper's ``O(|R| · m · d · l)`` bound
  (:mod:`repro.analysis.costmodel`); a positive slope with high R² is
  empirical support for the Section 5 complexity analysis.

Every timing comparison first asserts the compared implementations land
on identical labellings, so a speedup can never hide a semantic drift.
"""

from __future__ import annotations

from repro.analysis.costmodel import CostModel, UpdateRecord
from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.batch import apply_edge_insertions_batch
from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.dechl import apply_edge_deletion_partial
from repro.core.decremental import apply_edge_deletion
from repro.core.dynamic import DynamicHCL
from repro.core.inchl import apply_edge_insertion
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import held_out_edges, sample_edge_insertions

__all__ = [
    "run",
    "run_batch_vs_sequential",
    "run_decremental_strategies",
    "run_construction_fast_path",
    "run_cost_model_fit",
]

_DEFAULT_DATASETS = ["flickr-s", "indochina-s"]


def run_batch_vs_sequential(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A4: one combined sweep per landmark vs one sweep per edge."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    batch_sizes = (2, 8, max(2, prof.ablation_updates // 2))
    rows = []
    for name in names:
        spec, base_graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a4")) & 0x7FFFFFFF)
        landmarks_oracle = DynamicHCL.build(
            base_graph.copy(), num_landmarks=spec.num_landmarks
        )
        landmarks = landmarks_oracle.landmarks
        for batch_size in batch_sizes:
            batch = sample_edge_insertions(base_graph, batch_size, rng=rng)

            seq_graph = base_graph.copy()
            seq_labelling = build_hcl(seq_graph, landmarks)
            with Stopwatch() as sw_seq:
                for u, v in batch:
                    seq_graph.add_edge(u, v)
                    apply_edge_insertion(seq_graph, seq_labelling, u, v)

            batch_graph = base_graph.copy()
            batch_labelling = build_hcl(batch_graph, landmarks)
            for u, v in batch:
                batch_graph.add_edge(u, v)
            with Stopwatch() as sw_batch:
                apply_edge_insertions_batch(batch_graph, batch_labelling, batch)

            if batch_labelling != seq_labelling:
                raise BenchmarkError(
                    f"batch and sequential labellings diverged on {name}"
                )
            seq_ms = sw_seq.elapsed * 1000.0
            batch_ms = sw_batch.elapsed * 1000.0
            rows.append({
                "experiment": "A4-batch-vs-sequential",
                "dataset": name,
                "batch_size": batch_size,
                "sequential_ms": seq_ms,
                "batch_ms": batch_ms,
                "speedup": seq_ms / batch_ms if batch_ms > 0 else None,
            })
    return rows


def run_decremental_strategies(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A5: DecHL partial repair vs per-landmark rebuild vs full rebuild."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    num_deletions = max(4, prof.ablation_updates // 2)
    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a5")) & 0x7FFFFFFF)
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        landmarks = oracle.landmarks
        deletions = _sample_deletions(graph, num_deletions, rng)

        partial_graph = graph.copy()
        partial_labelling = build_hcl(partial_graph, landmarks)
        with Stopwatch() as sw_partial:
            for u, v in deletions:
                apply_edge_deletion_partial(partial_graph, partial_labelling, u, v)

        rebuild_graph = graph.copy()
        rebuild_labelling = build_hcl(rebuild_graph, landmarks)
        with Stopwatch() as sw_rebuild:
            for u, v in deletions:
                apply_edge_deletion(rebuild_graph, rebuild_labelling, u, v)

        if partial_labelling != rebuild_labelling:
            raise BenchmarkError(
                f"partial and rebuild deletions diverged on {name}"
            )

        scratch_graph = graph.copy()
        for u, v in deletions:
            scratch_graph.remove_edge(u, v)
        with Stopwatch() as sw_scratch:
            build_hcl(scratch_graph, landmarks)

        per = 1000.0 / len(deletions)
        rows.append({
            "experiment": "A5-decremental-strategies",
            "dataset": name,
            "deletions": len(deletions),
            "partial_ms": sw_partial.elapsed * per,
            "landmark_rebuild_ms": sw_rebuild.elapsed * per,
            "full_rebuild_ms": sw_scratch.elapsed * 1000.0,
        })
    return rows


def _sample_deletions(graph, count: int, rng) -> list[tuple[int, int]]:
    """Uniform existing edges, deletable in sequence (no duplicates)."""
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    return edges[:count]


#: A6 scale sweep: Barabási–Albert sizes per profile.  The numpy fast
#: path pays per-level array overheads, so it loses below ~1k vertices
#: and wins increasingly above — the sweep shows the crossover.
_A6_SCALES = {
    "smoke": (500, 2_000),
    "default": (2_000, 8_000, 20_000),
    "full": (8_000, 30_000, 60_000),
}


def run_construction_fast_path(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A6: reference Python construction vs the numpy CSR fast path.

    Measured both on the dataset stand-ins (small, representative
    topology) and on a Barabási–Albert scale sweep that exposes where the
    vectorized builder overtakes the interpreter.
    """
    from repro.graph.generators import barabasi_albert

    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    cases: list[tuple[str, object, int]] = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        cases.append((name, graph, spec.num_landmarks))
    for n in _A6_SCALES[prof.name]:
        cases.append((f"ba-{n}", barabasi_albert(n, 4, rng=seed), 10))

    from repro.landmarks.selection import select_landmarks

    rows = []
    for name, graph, num_landmarks in cases:
        landmarks = select_landmarks(graph, num_landmarks, "degree")
        with Stopwatch() as sw_python:
            reference = build_hcl(graph, landmarks)
        with Stopwatch() as sw_csr:
            fast = build_hcl_fast(graph, landmarks)
        if fast != reference:
            raise BenchmarkError(f"fast construction diverged on {name}")
        python_ms = sw_python.elapsed * 1000.0
        csr_ms = sw_csr.elapsed * 1000.0
        rows.append({
            "experiment": "A6-construction-fast-path",
            "dataset": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "python_ms": python_ms,
            "csr_ms": csr_ms,
            "speedup": python_ms / csr_ms if csr_ms > 0 else None,
        })
    return rows


def run_cost_model_fit(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A7: fit measured update times to the ``|R| · m · d · l`` bound."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a7")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(
            graph, max(8, prof.ablation_updates), rng=rng
        )
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        records = []
        for u, v in insertions:
            avg_degree = graph.average_degree()
            avg_label = oracle.label_entries / graph.num_vertices
            with Stopwatch() as sw:
                stats = oracle.insert_edge(u, v)
            records.append(UpdateRecord(
                affected_total=stats.total_affected,
                avg_degree=avg_degree,
                avg_label_size=avg_label,
                seconds=sw.elapsed,
            ))
        try:
            model = CostModel.fit(records)
            slope, r_squared = model.slope, model.r_squared
        except ValueError:
            slope, r_squared = None, None  # degenerate workload (tiny profile)
        rows.append({
            "experiment": "A7-cost-model-fit",
            "dataset": name,
            "updates": len(records),
            "slope_us_per_unit": slope * 1e6 if slope is not None else None,
            "r_squared": r_squared,
        })
    return rows


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Run A4–A7 and render one combined report."""
    if datasets is not None:
        unknown = [n for n in datasets if n not in DATASETS]
        if unknown:
            raise BenchmarkError(f"unknown datasets: {unknown}")
    a4 = run_batch_vs_sequential(profile, datasets, seed)
    a5 = run_decremental_strategies(profile, datasets, seed)
    a6 = run_construction_fast_path(profile, datasets, seed)
    a7 = run_cost_model_fit(profile, datasets, seed)

    sections = [
        format_table(
            ["dataset", "batch_size", "sequential_ms", "batch_ms", "speedup"],
            a4, title="A4 — batch vs sequential insertion",
        ),
        format_table(
            ["dataset", "deletions", "partial_ms", "landmark_rebuild_ms",
             "full_rebuild_ms"],
            a5, title="A5 — decremental strategies (per-deletion ms)",
        ),
        format_table(
            ["dataset", "vertices", "edges", "python_ms", "csr_ms", "speedup"],
            a6, title="A6 — construction fast path (numpy CSR)",
        ),
        format_table(
            ["dataset", "updates", "slope_us_per_unit", "r_squared"],
            a7, title="A7 — update-cost model fit (seconds ~ |R|·m·d·l)",
        ),
    ]
    return ExperimentResult(
        name="extensions", rows=a4 + a5 + a6 + a7, text="\n\n".join(sections)
    )
