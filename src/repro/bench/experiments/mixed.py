"""MX — fully-dynamic mixed insert/delete batches vs the fallback paths.

The paper's model is insert-only; the fully-dynamic extension must prove
its keep against what a deployment would otherwise do with deletions.
Each dataset replays one interleaved insert/delete stream (deletions may
disconnect the graph — intended) through three maintenance routes over
identical graph copies:

* **sequential** — the reference kernels, one event at a time (IncHL+
  insertions, DecHL deletions);
* **fallback** — the *pre-mixed-engine* fast path: insert runs use the
  vectorized batch engine but every deletion drops to DecHL and
  invalidates the engine, so the next insert run pays a full re-attach
  (one CSR BFS per landmark).  This is what serving deployments did
  before the engine kept its dense rows valid across deletions;
* **mixed-fast** — the BatchHL-style mixed batch engine: each chunk is
  collapsed to its net edge sets and applied as one find/repair sweep
  per landmark through ``apply_events_batch(fast=True)``.

Every route's final labelling must equal the sequential reference
(byte-identity contract), and the mixed-fast oracle's answers are
spot-checked against BFS ground truth — the ``bfs_incorrect`` column
must read zero for the run to be trusted (CI asserts it).
"""

from __future__ import annotations

import zlib

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.streams import mixed_stream

__all__ = ["run"]

#: Same representative spread as the incremental-fast sweep.
_DEFAULT_DATASETS = ["flickr-s", "twitter-s", "uk-s"]

#: Deletion-heavy enough that the decremental path dominates the fallback.
_INSERT_RATIO = 0.6


def _chunks(events, size):
    for start in range(0, len(events), size):
        yield events[start : start + size]


def _replay_sequential(oracle: DynamicHCL, events) -> float:
    total = 0.0
    for event in events:
        u, v = event.edge
        with Stopwatch() as sw:
            if event.is_insert:
                oracle.insert_edge(u, v, fast=False)
            else:
                oracle.remove_edge(u, v, fast=False)
        total += sw.elapsed
    return total


def _replay_fallback(oracle: DynamicHCL, events, batch: int, workers) -> float:
    """Insert runs on the vectorized engine, deletions through DecHL with
    engine invalidation — the pre-mixed-engine serving behaviour."""
    oracle._resolve_fast_engine()
    total = 0.0
    for chunk in _chunks(events, batch):
        with Stopwatch() as sw:
            run: list[tuple[int, int]] = []
            for event in chunk:
                if event.is_insert:
                    run.append(event.edge)
                    continue
                if run:
                    oracle.insert_edges_batch(run, workers=workers, fast=True)
                    run = []
                oracle.remove_edge(*event.edge, fast=False)
            if run:
                oracle.insert_edges_batch(run, workers=workers, fast=True)
        total += sw.elapsed
    return total


def _replay_mixed(oracle: DynamicHCL, events, batch: int, workers):
    oracle._resolve_fast_engine()  # attach once, like a serving deployment
    total = 0.0
    phase_s: dict[str, float] = {}
    affected: list[int] = []
    for chunk in _chunks(events, batch):
        with Stopwatch() as sw:
            stats = oracle.apply_events_batch(chunk, workers=workers, fast=True)
        total += sw.elapsed
        for phase, seconds in stats.phases.items():
            phase_s[phase] = phase_s.get(phase, 0.0) + seconds
        affected.append(stats.affected_union)
    phases = {
        f"{phase}_ms": round(seconds * 1000.0, 3)
        for phase, seconds in sorted(phase_s.items())
    }
    if affected:
        ordered = sorted(affected)
        phases["aff"] = {
            "mean": round(sum(affected) / len(affected), 1),
            "p50": ordered[len(ordered) // 2],
            "max": ordered[-1],
        }
    return total, phases or None


def _bfs_spot_check(oracle: DynamicHCL, rng, samples: int) -> tuple[int, int]:
    vertices = sorted(oracle.graph.vertices())
    incorrect = 0
    for _ in range(samples):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        expected = bfs_distances(oracle.graph, u).get(v, float("inf"))
        if oracle.query(u, v) != expected:
            incorrect += 1
    return samples, incorrect


def _row(dataset, mode, events, deletes, total_s, speedup, identical,
         checked=None, incorrect=None, phases=None):
    return {
        "experiment": "MX-mixed-batch",
        "dataset": dataset,
        "mode": mode,
        "events": events,
        "deletes": deletes,
        "total_ms": round(total_s * 1000.0, 3),
        "per_event_us": round(total_s / events * 1e6, 3) if events else 0.0,
        "speedup_vs_fallback": round(speedup, 3) if speedup is not None else None,
        "identical": identical,
        "bfs_checked": checked,
        "bfs_incorrect": incorrect,
        "phases": phases,
    }


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    workers: int | None = None,
) -> ExperimentResult:
    """Mixed insert/delete batch engine vs the decremental fallback."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows: list[dict] = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(zlib.crc32(f"{seed}:{name}:mixed".encode()))
        events = mixed_stream(
            graph, prof.figure4_total, insert_ratio=_INSERT_RATIO, rng=rng
        )
        deletes = sum(1 for e in events if not e.is_insert)
        landmarks = top_degree_landmarks(graph, spec.num_landmarks)

        seq_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr"
        )
        t_seq = _replay_sequential(seq_oracle, events)

        fb_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr",
            fast_updates=True, workers=workers,
        )
        t_fb = _replay_fallback(fb_oracle, events, prof.figure4_batch, workers)
        identical_fb = fb_oracle.labelling == seq_oracle.labelling

        mx_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr",
            fast_updates=True, workers=workers,
        )
        t_mx, phases_mx = _replay_mixed(
            mx_oracle, events, prof.figure4_batch, workers
        )
        identical_mx = mx_oracle.labelling == seq_oracle.labelling
        checked, incorrect = _bfs_spot_check(mx_oracle, rng, samples=30)

        count = len(events)
        rows.append(_row(name, "sequential", count, deletes, t_seq,
                         t_fb / t_seq if t_seq > 0 else None, True))
        rows.append(_row(name, "fallback", count, deletes, t_fb,
                         1.0, identical_fb))
        rows.append(_row(name, "mixed-fast", count, deletes, t_mx,
                         t_fb / t_mx if t_mx > 0 else None, identical_mx,
                         checked, incorrect, phases=phases_mx))

    text = format_table(
        ["dataset", "mode", "events", "deletes", "total_ms", "per_event_us",
         "speedup_vs_fallback", "identical", "bfs_checked", "bfs_incorrect"],
        rows,
        title=(f"MX — fully-dynamic mixed batches vs decremental fallback "
               f"({prof.figure4_total} events/dataset, "
               f"insert ratio {_INSERT_RATIO})"),
    )
    return ExperimentResult(name="mixed", rows=rows, text=text)
