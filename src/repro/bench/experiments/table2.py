"""Table 2 — summary of datasets (|V|, |E|, avg degree, avg distance).

Renders the stand-ins' measured statistics next to the paper's published
values, making the scale substitution (docs/DESIGN.md §3) explicit.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.exceptions import BenchmarkError
from repro.graph.statistics import summarize
from repro.workloads.datasets import DATASETS, build_dataset

__all__ = ["run"]


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    num_sources: int = 24,
) -> ExperimentResult:
    """Compute the Table 2 row for every stand-in dataset."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        summary = summarize(graph, num_sources=num_sources, rng=seed)
        rows.append({
            "dataset": name,
            "network": f"{spec.network_class} (u)",
            "stands_in_for": spec.stands_in_for,
            "num_vertices": summary.num_vertices,
            "num_edges": summary.num_edges,
            "avg_degree": summary.average_degree,
            "avg_distance": summary.average_distance,
            "paper_vertices": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
            "paper_avg_degree": spec.paper_avg_degree,
            "paper_avg_distance": spec.paper_avg_distance,
        })
    return ExperimentResult(name="table2", rows=rows, text=_render(rows))


def _render(rows: list[dict]) -> str:
    display = [
        {
            "Dataset": r["dataset"],
            "Network": r["network"],
            "|V|": r["num_vertices"],
            "|E|": r["num_edges"],
            "avg. deg": r["avg_degree"],
            "avg. dist": r["avg_distance"],
            "Paper |V|": r["paper_vertices"],
            "Paper |E|": r["paper_edges"],
            "Paper deg": r["paper_avg_degree"],
            "Paper dist": r["paper_avg_distance"],
        }
        for r in rows
    ]
    return format_table(
        ["Dataset", "Network", "|V|", "|E|", "avg. deg", "avg. dist",
         "Paper |V|", "Paper |E|", "Paper deg", "Paper dist"],
        display,
        title="Table 2 — summary of datasets (stand-ins vs paper)",
    )
