"""Figure 1 — distribution of affected vertices per single graph change.

The paper applies 1,000 random edge insertions per network and plots the
percentage of affected vertices per change, sorted in descending order —
establishing that single changes touch between 1e-5 % and 10 % of vertices
and hence that from-scratch recomputation is wasteful.

This experiment replays the same protocol: the maintained IncHL+ oracle
applies each insertion and reports ``|Λ| = |∪_r Λ_r|`` from its own
FindAffected phase.  By default the six datasets shown in the paper's
figure are used.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import render_series
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run", "FIGURE1_DATASETS"]

#: The six networks in the paper's Figure 1 legend (stand-in names).
FIGURE1_DATASETS = [
    "indochina-s", "it-s", "twitter-s", "friendster-s", "uk-s", "clueweb09-s",
]


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Percentage of affected vertices per insertion, sorted descending."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(FIGURE1_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows = []
    series: dict[str, list[tuple[int, float]]] = {}
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "figure1")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(graph, prof.figure1_updates, rng=rng)
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        num_vertices = graph.num_vertices
        percentages = []
        for u, v in insertions:
            stats = oracle.insert_edge(u, v)
            percentages.append(100.0 * stats.affected_union / num_vertices)
        percentages.sort(reverse=True)
        series[name] = list(enumerate(percentages))
        rows.append({
            "dataset": name,
            "num_updates": len(percentages),
            "max_pct": max(percentages),
            "median_pct": percentages[len(percentages) // 2],
            "min_pct": min(percentages),
        })

    from repro.bench.plotting import sparkline

    text = render_series(
        "Figure 1 — % of affected vertices per change (sorted descending)",
        {k: _thin(v) for k, v in series.items()},
        x_label="update rank",
        y_label="% affected",
    )
    # One log-scale sparkline per dataset — the shape of the paper's
    # descending curves at a glance.
    width = max(len(k) for k in series)
    spark_lines = ["", "descending curves (log scale):"]
    for name, points in series.items():
        values = [p for _, p in _thin(points, keep=40)]
        spark_lines.append(f"  {name.ljust(width)}  {sparkline(values, log=True)}")
    return ExperimentResult(
        name="figure1", rows=rows, text=text + "\n".join(spark_lines)
    )


def _thin(points: list[tuple[int, float]], keep: int = 12) -> list[tuple[int, float]]:
    """Keep ~``keep`` representative points per series for terminal output."""
    if len(points) <= keep:
        return points
    step = max(1, len(points) // keep)
    thinned = points[::step]
    if thinned[-1] != points[-1]:
        thinned.append(points[-1])
    return thinned
