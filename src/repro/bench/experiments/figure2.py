"""Figure 2 — the paper's worked example, replayed and cross-checked.

The paper's only non-measurement figure is the 16-vertex walkthrough of
Sections 4.1–4.2 (Examples 4.2, 4.5, 4.7): landmarks {0, 4, 10}, edge
(2, 5) inserted, affected sets found and repaired per landmark.  This
experiment replays the example on the real implementation, reports every
find/repair action, and checks each against the numbers printed in the
paper — a reproduction of the figure in the only sense a figure of a
worked example can be reproduced.

Expected (from the paper's text):

* ``Λ_0 = {5, 8, 9, 10, 13, 14}`` — six affected vertices (Example 4.2);
* ``Λ_10 = {0, 1, 2}``; ``Λ_4 = ∅`` (the |R| filter removes landmark 4);
* repair w.r.t. 0: vertices {5, 9} re-labelled, 10 updates the highway,
  {8, 13, 14} are covered (entries removed) — Example 4.7;
* repair w.r.t. 10: vertex {2} re-labelled, 0 updates the highway, 1 is
  covered.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_table
from repro.core.construction import build_hcl
from repro.core.inchl import find_affected, repair_affected
from repro.core.query import landmark_distance
from repro.core.validation import check_matches_rebuild
from repro.graph.dynamic_graph import DynamicGraph

__all__ = ["run", "paper_figure2_graph", "FIGURE2_LANDMARKS", "FIGURE2_INSERTION"]

#: Landmarks of the paper's Figure 2 example (coloured yellow in the figure).
FIGURE2_LANDMARKS = [0, 4, 10]

#: The edge inserted in Examples 4.2/4.5/4.7.
FIGURE2_INSERTION = (2, 5)

#: Expected affected sets (Example 4.2).
EXPECTED_AFFECTED = {0: {5, 8, 9, 10, 13, 14}, 4: set(), 10: {0, 1, 2}}

#: Expected repair actions (Example 4.7): per landmark, the vertices whose
#: entries are added/modified, whose entries are removed (covered), and
#: whose highway rows change.
EXPECTED_REPAIRED = {0: {5, 9}, 10: {2}}
EXPECTED_COVERED = {0: {8, 13, 14}, 10: {1}}
EXPECTED_HIGHWAY = {0: {10}, 10: {0}}


def paper_figure2_graph() -> DynamicGraph:
    """The 16-vertex graph of the paper's Figure 2.

    The figure's layout is not machine-readable; this reconstruction (the
    same one the test-suite uses) reproduces all the worked-example
    numbers exactly.
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (2, 4), (3, 12), (4, 5), (4, 6), (4, 7),
        (4, 12), (5, 9), (5, 10), (7, 11), (8, 9), (8, 10), (10, 13),
        (10, 14), (10, 15), (11, 15), (12, 15), (13, 14),
    ]
    return DynamicGraph.from_edges(edges, num_vertices=16)


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Replay the worked example (parameters ignored; the example is fixed)."""
    graph = paper_figure2_graph()
    labelling = build_hcl(graph, FIGURE2_LANDMARKS)
    a, b = FIGURE2_INSERTION
    graph.add_edge(a, b)

    rows: list[dict] = []
    searches = []
    for r in FIGURE2_LANDMARKS:
        da = landmark_distance(labelling, r, a)
        db = landmark_distance(labelling, r, b)
        if da == db:
            searches.append(None)
            continue
        anchor, root, dist = (a, b, da) if da < db else (b, a, db)
        searches.append(find_affected(graph, labelling, r, anchor, root, dist))

    for r, search in zip(FIGURE2_LANDMARKS, searches):
        affected = search.affected if search is not None else set()
        repaired: set[int] = set()
        covered: set[int] = set()
        highway_updates: set[int] = set()
        if search is not None:
            repair_affected(graph, labelling, search)
            # Classify by post-repair state: an affected landmark always
            # resolves through the highway (Algorithm 3, lines 9-10); an
            # affected non-landmark either keeps an r-entry (uncovered,
            # added/modified) or ends without one (covered, removed).
            for v in affected:
                if v in labelling.landmark_set:
                    highway_updates.add(v)
                elif labelling.labels.has_entry(v, r):
                    repaired.add(v)
                else:
                    covered.add(v)
        matches = (
            affected == EXPECTED_AFFECTED[r]
            and repaired == EXPECTED_REPAIRED.get(r, set())
            and covered == EXPECTED_COVERED.get(r, set())
            and highway_updates == EXPECTED_HIGHWAY.get(r, set())
        )
        rows.append({
            "landmark": r,
            "affected": _fmt(affected),
            "repaired": _fmt(repaired),
            "covered": _fmt(covered),
            "highway": _fmt(highway_updates),
            "matches_paper": "yes" if matches else "NO",
        })

    check_matches_rebuild(graph, labelling)
    text = "\n".join([
        "Figure 2 — worked example of IncHL+ on the paper's 16-vertex graph",
        f"landmarks R = {FIGURE2_LANDMARKS}, inserted edge = {FIGURE2_INSERTION}",
        "",
        format_table(
            ["landmark", "affected", "repaired", "covered", "highway",
             "matches_paper"],
            rows,
        ),
        "",
        "maintained labelling verified equal to a from-scratch rebuild",
    ])
    return ExperimentResult(name="figure2", rows=rows, text=text)


def _fmt(vertices: set[int]) -> str:
    return "{" + ", ".join(str(v) for v in sorted(vertices)) + "}"
