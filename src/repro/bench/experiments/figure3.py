"""Figure 3 — average update time under 10–50 landmarks, IncHL+ vs IncFD.

The paper sweeps ``|R| ∈ {10, 20, 30, 40, 50}`` per dataset and shows
IncHL+ beating IncFD across (almost) every selection, with a stable gap.
Both methods get the same landmark counts and the same insertion stream.
"""

from __future__ import annotations

from repro.baselines.fd import FullDynamicOracle
from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.bench.runner import time_updates
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run"]


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Mean update time per (dataset, |R|, method)."""
    prof = bench_profile(profile)
    if datasets is not None:
        names = datasets
    elif prof.figure3_datasets is not None:
        names = list(prof.figure3_datasets)
    else:
        names = list(DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows = []
    for name in names:
        spec, base_graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "figure3")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(base_graph, prof.figure3_updates, rng=rng)
        for num_landmarks in prof.figure3_landmark_counts:
            if num_landmarks >= base_graph.num_vertices:
                continue
            hl = DynamicHCL.build(base_graph.copy(), num_landmarks=num_landmarks)
            hl_ms = time_updates(hl, insertions).mean_ms()
            fd = FullDynamicOracle(base_graph.copy(), num_landmarks=num_landmarks)
            fd_ms = time_updates(fd, insertions).mean_ms()
            rows.append({
                "dataset": name,
                "num_landmarks": num_landmarks,
                "inchl_update_ms": hl_ms,
                "incfd_update_ms": fd_ms,
                "speedup": fd_ms / hl_ms if hl_ms > 0 else None,
            })

    display = [
        {
            "Dataset": r["dataset"],
            "|R|": r["num_landmarks"],
            "IncHL+ (ms)": r["inchl_update_ms"],
            "IncFD (ms)": r["incfd_update_ms"],
            "IncFD/IncHL+": r["speedup"],
        }
        for r in rows
    ]
    table = format_table(
        ["Dataset", "|R|", "IncHL+ (ms)", "IncFD (ms)", "IncFD/IncHL+"],
        display,
        title="Figure 3 — average update time under varying landmarks",
    )
    # The paper's figure is a grouped log-scale bar chart: per dataset,
    # IncHL+ bars inside IncFD bars.  Render the |R|-averaged pair per
    # dataset the same way.
    from repro.bench.plotting import bar_chart

    labels: list[str] = []
    values: list[float] = []
    for name in names:
        dataset_rows = [r for r in rows if r["dataset"] == name]
        if not dataset_rows:
            continue
        labels.append(f"{name} IncHL+")
        values.append(
            sum(r["inchl_update_ms"] for r in dataset_rows) / len(dataset_rows)
        )
        labels.append(f"{name} IncFD")
        values.append(
            sum(r["incfd_update_ms"] for r in dataset_rows) / len(dataset_rows)
        )
    chart = bar_chart(
        "mean update time over the |R| sweep (log scale)",
        labels,
        values,
        log=True,
        unit="ms",
    )
    return ExperimentResult(
        name="figure3", rows=rows, text=table + "\n\n" + chart
    )
