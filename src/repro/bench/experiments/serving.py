"""S — serving layer: closed-loop query load under a concurrent writer.

A reproduction extra (the paper's harness measures updates and queries in
isolation; a deployment serves both at once): for each reader count, N
reader threads run a closed query loop against the service's published
snapshots while the single writer absorbs a mixed update stream, batching
consecutive insertions.  Recorded per row: sustained qps, p50/p95/p99
read latency, how many updates were applied, and — the snapshot-isolation
contract — the number of *incorrect* answers, where every K-th query is
re-checked by a BFS on the very snapshot graph that answered it.  That
column must be 0: a torn read would show up here as a mismatch.
"""

from __future__ import annotations

import threading
import zlib
from time import perf_counter, sleep

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.graph.traversal import INF, bfs_distances
from repro.serving.metrics import percentile
from repro.serving.service import OracleService
from repro.utils.rng import ensure_rng
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.streams import mixed_stream

__all__ = ["run"]

_DEFAULT_DATASETS = ["flickr-s"]


class _Reader(threading.Thread):
    """One closed-loop reader: query as fast as answers come back."""

    def __init__(self, service, vertices, rng_seed, deadline, verify_every):
        super().__init__(daemon=True)
        self.service = service
        self.vertices = vertices
        self.rng = ensure_rng(rng_seed)
        self.deadline = deadline
        self.verify_every = verify_every
        self.latencies: list[float] = []
        self.incorrect = 0
        self.epochs_seen: set[int] = set()

    def run(self) -> None:
        choice = self.rng.choice
        count = 0
        while perf_counter() < self.deadline:
            u, v = choice(self.vertices), choice(self.vertices)
            snap = self.service.snapshot  # pin one epoch for this query
            start = perf_counter()
            distance = snap.query(u, v)
            self.latencies.append(perf_counter() - start)
            self.epochs_seen.add(snap.epoch)
            count += 1
            if count % self.verify_every == 0:
                # Ground truth on the same frozen epoch: a torn read (the
                # writer leaking into the snapshot) cannot agree with this.
                expected = bfs_distances(snap.graph, u).get(v, INF)
                if distance != expected:
                    self.incorrect += 1


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    workers: int | None = None,
) -> ExperimentResult:
    """Closed-loop read throughput/latency per reader count, writer active."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows: list[dict] = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        events = mixed_stream(
            graph,
            prof.serving_updates,
            rng=ensure_rng(zlib.crc32(f"{seed}:{name}:serving".encode())),
        )
        for readers in prof.serving_reader_counts:
            oracle = DynamicHCL.build(
                graph.copy(), num_landmarks=spec.num_landmarks, workers=workers
            )
            rows.append(
                _run_one(name, oracle, events, readers, prof, seed, workers)
            )

    text = format_table(
        ["dataset", "readers", "duration_s", "queries", "qps", "p50_ms",
         "p95_ms", "p99_ms", "updates_applied", "update_qps",
         "epochs_served", "incorrect"],
        rows,
        title="S — snapshot-isolated serving under concurrent updates "
              "(closed-loop readers; incorrect MUST be 0)",
    )
    return ExperimentResult(name="serving", rows=rows, text=text)


def _run_one(name, oracle, events, readers, prof, seed, workers) -> dict:
    vertices = sorted(oracle.graph.vertices())
    duration = prof.serving_duration_s
    service = OracleService(oracle, workers=workers)
    with service:
        deadline = perf_counter() + duration
        threads = [
            _Reader(service, vertices, seed * 1000 + readers * 100 + i,
                    deadline, prof.serving_verify_every)
            for i in range(readers)
        ]
        start = perf_counter()
        for t in threads:
            t.start()
        # Feed the writer across the window so updates overlap the reads.
        chunk = 4
        pause = duration / max(1, len(events) / chunk) * 0.5
        for base in range(0, len(events), chunk):
            if perf_counter() >= deadline:
                break
            service.submit_many(events[base : base + chunk])
            sleep(min(pause, max(0.0, deadline - perf_counter())))
        for t in threads:
            t.join()
        service.flush()
        elapsed = perf_counter() - start
        stats = service.stats()

    latencies = sorted(x for t in threads for x in t.latencies)
    incorrect = sum(t.incorrect for t in threads)
    epochs = set().union(*(t.epochs_seen for t in threads))
    queries = len(latencies)
    return {
        "experiment": "S-serving",
        "dataset": name,
        "readers": readers,
        "duration_s": round(elapsed, 3),
        "queries": queries,
        "qps": round(queries / elapsed, 1) if elapsed > 0 else None,
        "p50_ms": round(percentile(latencies, 50) * 1000, 4) if latencies else None,
        "p95_ms": round(percentile(latencies, 95) * 1000, 4) if latencies else None,
        "p99_ms": round(percentile(latencies, 99) * 1000, 4) if latencies else None,
        "updates_applied": stats["events_applied"],
        "update_qps": round(stats["events_applied"] / elapsed, 1)
        if elapsed > 0 else None,
        "epochs_served": len(epochs),
        "incorrect": incorrect,
    }
