"""Figure 4 — cumulative update time vs from-scratch construction.

The paper performs 500, 1000, …, 10,000 updates and plots IncHL+'s
cumulative update time against the (flat) cost of reconstructing the
labelling from scratch — showing maintenance stays well below rebuild on
almost all datasets.  The reproduction scales the schedule per profile
(default: batches of 100 up to 2,000) and measures the real rebuild cost of
:func:`repro.core.construction.build_hcl` on the final graph.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import render_series
from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run"]


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Cumulative IncHL+ update time at each batch boundary, per dataset."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows = []
    all_series: dict[str, list[tuple[int, float]]] = {}
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "figure4")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(graph, prof.figure4_total, rng=rng)

        with Stopwatch() as initial_build:
            oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)

        cumulative = 0.0
        points: list[tuple[int, float]] = []
        for start in range(0, len(insertions), prof.figure4_batch):
            batch = insertions[start : start + prof.figure4_batch]
            with Stopwatch() as sw:
                for u, v in batch:
                    oracle.insert_edge(u, v)
            cumulative += sw.elapsed
            points.append((start + len(batch), cumulative))

        # Rebuild cost on the final (grown) graph — the paper's flat line.
        with Stopwatch() as rebuild:
            build_hcl(graph, oracle.landmarks)

        all_series[name] = points
        rows.append({
            "dataset": name,
            "num_updates": len(insertions),
            "cumulative_update_s": cumulative,
            "initial_construction_s": initial_build.elapsed,
            "reconstruction_s": rebuild.elapsed,
            "updates_per_rebuild": (
                len(insertions) * rebuild.elapsed / cumulative
                if cumulative > 0 else None
            ),
        })

    lines = [
        render_series(
            "Figure 4 — cumulative IncHL+ update time (s) vs construction",
            all_series,
            x_label="# updates",
            y_label="cumulative s",
        ),
        "",
        "Construction baselines (s):",
    ]
    for r in rows:
        lines.append(
            f"  {r['dataset']:15s} rebuild={r['reconstruction_s']:.2f}s  "
            f"cumulative={r['cumulative_update_s']:.2f}s  "
            f"(~{r['updates_per_rebuild']:.0f} updates amortise one rebuild)"
        )
    # The paper plots one log-y panel per dataset: the rising cumulative
    # curve against the flat construction line.  Chart the first dataset
    # the same way (one panel keeps the text report readable).
    if rows:
        from repro.bench.plotting import line_chart

        first = rows[0]["dataset"]
        panel = {
            "IncHL+ cumulative": all_series[first],
            "construction": [
                (x, rows[0]["reconstruction_s"]) for x, _ in all_series[first]
            ],
        }
        lines.extend([
            "",
            line_chart(
                f"{first}: cumulative update time vs construction (log y)",
                panel,
                log_y=True,
                x_label="# updates",
                y_label="seconds",
            ),
        ])
    return ExperimentResult(name="figure4", rows=rows, text="\n".join(lines))
