"""IF — incremental fast path: vectorized vs pure-Python update latency.

Replays the Figure 4 insertion schedule (``figure4_total`` edges per
dataset, one at a time — the paper's strictly-online model) through two
oracles over identical graph copies:

* **python** — the reference dict kernels of :mod:`repro.core.inchl`;
* **fast** — the vectorized CSR engine of :mod:`repro.core.inchl_fast`
  (DynCSR overlay + dense old-distance rows + numpy level kernels);

plus a third **fast-batch** replay applying the same stream in Figure-4
batch chunks through one kernel sweep per landmark.  Every replay's final
labelling is checked for equality against the python reference before
timings are accepted (the fast path's byte-identity contract), and the
per-update latency distribution (mean / p50 / p95) is recorded so tail
behaviour is visible next to the speedup.

The engine-attach cost (one CSR BFS per landmark, paid once per oracle
lifetime or after a non-insert mutation) is reported as its own column
rather than buried in the stream timing — on the paper's 10,000-update
replay it amortizes to noise, but a deployment that deletes often should
know it.

A final **fast+profiler** row re-times the first dataset's fast replay
with the sampling profiler (:mod:`repro.obs.profile`) active and reports
``overhead_pct`` — the continuous-profiling tax, re-measured on every
bench run so the "cheap enough to leave on" claim stays checked.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.landmarks.selection import top_degree_landmarks
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run"]

import zlib

#: Representative default sweep: one social, one road-like/web pair —
#: small and large affected regions both appear in the aggregate.
_DEFAULT_DATASETS = ["flickr-s", "twitter-s", "uk-s"]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _accumulate_phases(phase_s: dict, affected: list, stats) -> None:
    """Fold one update's ``UpdateStats`` into running phase totals."""
    for name, seconds in stats.phases.items():
        phase_s[name] = phase_s.get(name, 0.0) + seconds
    affected.append(stats.affected_union)


def _phases_block(phase_s: dict, affected: list) -> dict | None:
    """The per-row ``phases`` block of the BENCH_* JSON report: where the
    update time went (find vs repair sweeps, engine-attributed) and the
    |AFF| distribution the paper's complexity analysis charges."""
    if not phase_s:
        return None
    block = {
        f"{name}_ms": round(seconds * 1000.0, 3)
        for name, seconds in sorted(phase_s.items())
    }
    if affected:
        ordered = sorted(affected)
        block["aff"] = {
            "mean": round(sum(affected) / len(affected), 1),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "max": ordered[-1],
        }
    return block


def _replay_single(oracle: DynamicHCL, insertions, fast: bool):
    """One-at-a-time replay; returns (total_s, latencies_s, phases)."""
    latencies = []
    phase_s: dict[str, float] = {}
    affected: list[int] = []
    for u, v in insertions:
        with Stopwatch() as sw:
            stats = oracle.insert_edge(u, v, fast=fast)
        latencies.append(sw.elapsed)
        _accumulate_phases(phase_s, affected, stats)
    return sum(latencies), latencies, _phases_block(phase_s, affected)


def _replay_batched(oracle: DynamicHCL, insertions, batch_size: int, workers):
    """Figure-4-style chunked replay on the fast path."""
    oracle._resolve_fast_engine()  # attach cost reported separately
    total = 0.0
    chunks = 0
    phase_s: dict[str, float] = {}
    affected: list[int] = []
    for start in range(0, len(insertions), batch_size):
        chunk = insertions[start : start + batch_size]
        with Stopwatch() as sw:
            stats = oracle.insert_edges_batch(chunk, workers=workers, fast=True)
        total += sw.elapsed
        chunks += 1
        _accumulate_phases(phase_s, affected, stats)
    return total, chunks, _phases_block(phase_s, affected)


def _row(dataset, mode, updates, total_s, latencies, attach_ms, speedup,
         identical, phases=None):
    ordered = sorted(latencies) if latencies else []
    per_update = total_s / updates if updates else 0.0
    return {
        "experiment": "IF-incremental-fast",
        "dataset": dataset,
        "mode": mode,
        "updates": updates,
        "total_ms": round(total_s * 1000.0, 3),
        "per_update_us": round(per_update * 1e6, 3),
        "p50_us": round(_percentile(ordered, 0.50) * 1e6, 3) if ordered else None,
        "p95_us": round(_percentile(ordered, 0.95) * 1e6, 3) if ordered else None,
        "attach_ms": round(attach_ms, 3) if attach_ms is not None else None,
        "speedup": round(speedup, 3) if speedup is not None else None,
        "identical": identical,
        "phases": phases,
    }


def _profiler_overhead_row(graph, landmarks, insertions, workers, dataset):
    """Measure the sampling profiler's drag on the fast single-update
    replay: min-of-2 timings with and without an active profiler, same
    stream, fresh oracles.  Ships in the bench JSON so the acceptance
    bound (overhead under a few percent) is re-verified on every run."""
    from repro.obs.profile import SamplingProfiler

    def _timed(profiled: bool) -> float:
        best = None
        for _ in range(2):
            oracle = DynamicHCL.build(
                graph.copy(), landmarks=landmarks, construction="csr",
                fast_updates=True, workers=workers,
            )
            oracle._resolve_fast_engine()
            profiler = SamplingProfiler() if profiled else None
            if profiler is not None:
                profiler.start()
            with Stopwatch() as sw:
                for u, v in insertions:
                    oracle.insert_edge(u, v, fast=True)
            if profiler is not None:
                profiler.stop()
            best = sw.elapsed if best is None else min(best, sw.elapsed)
        return best

    base_s = _timed(False)
    profiled_s = _timed(True)
    overhead = (profiled_s - base_s) / base_s * 100.0 if base_s > 0 else 0.0
    row = _row(dataset, "fast+profiler", len(insertions), profiled_s, [],
               None, None, True)
    row["overhead_pct"] = round(overhead, 2)
    return row


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    workers: int | None = None,
) -> ExperimentResult:
    """Per-update latency and speedup of the vectorized update engine."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    rows: list[dict] = []
    aggregate_python = 0.0
    aggregate_fast = 0.0
    overhead_inputs = None
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(zlib.crc32(f"{seed}:{name}:incremental_fast".encode()))
        insertions = sample_edge_insertions(graph, prof.figure4_total, rng=rng)
        landmarks = top_degree_landmarks(graph, spec.num_landmarks)
        if overhead_inputs is None:
            overhead_inputs = (graph, landmarks, insertions, name)

        python_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr"
        )
        t_python, lat_python, _ = _replay_single(
            python_oracle, insertions, fast=False
        )

        fast_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr",
            fast_updates=True, workers=workers,
        )
        with Stopwatch() as attach:
            fast_oracle._resolve_fast_engine()
        t_fast, lat_fast, phases_fast = _replay_single(
            fast_oracle, insertions, fast=True
        )
        identical_fast = fast_oracle.labelling == python_oracle.labelling

        batch_oracle = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, construction="csr",
            fast_updates=True, workers=workers,
        )
        t_batch, chunks, phases_batch = _replay_batched(
            batch_oracle, insertions, prof.figure4_batch, workers
        )
        identical_batch = batch_oracle.labelling == python_oracle.labelling

        aggregate_python += t_python
        aggregate_fast += t_fast
        count = len(insertions)
        rows.append(_row(name, "python", count, t_python, lat_python,
                         None, None, True))
        rows.append(_row(name, "fast", count, t_fast, lat_fast,
                         attach.elapsed * 1000.0,
                         t_python / t_fast if t_fast > 0 else None,
                         identical_fast, phases=phases_fast))
        rows.append(_row(
            name, f"fast-batch/{prof.figure4_batch}", count, t_batch, [],
            None, t_python / t_batch if t_batch > 0 else None, identical_batch,
            phases=phases_batch,
        ))

    if aggregate_fast > 0 and len(names) > 1:
        rows.append(_row(
            "ALL", "fast-aggregate",
            sum(r["updates"] for r in rows if r["mode"] == "python"),
            aggregate_fast, [], None,
            aggregate_python / aggregate_fast, all(r["identical"] for r in rows),
        ))

    if overhead_inputs is not None:
        graph, landmarks, insertions, name = overhead_inputs
        rows.append(_profiler_overhead_row(
            graph, landmarks, insertions, workers, name
        ))

    text = format_table(
        ["dataset", "mode", "updates", "total_ms", "per_update_us",
         "p50_us", "p95_us", "attach_ms", "speedup", "identical",
         "overhead_pct"],
        rows,
        title=(f"IF — vectorized CSR update engine vs pure-Python IncHL+ "
               f"(Figure 4 replay, {prof.figure4_total} insertions/dataset)"),
    )
    return ExperimentResult(name="incremental_fast", rows=rows, text=text)
