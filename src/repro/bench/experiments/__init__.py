"""Experiment modules — one per table/figure (docs/DESIGN.md §5)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Uniform experiment output: structured rows plus a text rendering."""

    name: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:
        return self.text
