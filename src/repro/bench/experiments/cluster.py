"""C — cluster layer: aggregate read throughput vs. replica count.

A reproduction extra (the paper's numbers are single-process): for each
replica count, a full :class:`~repro.cluster.supervisor.ClusterSupervisor`
stack — WAL-backed router + N spawned replica processes — serves a
closed-loop `query_many` load from concurrent client threads, measured
against the *same* load on a plain single-process
:class:`~repro.serving.server.OracleServer` (the ``single`` row,
speedup 1.0x by definition).  Recorded per row:

* **qps** and **speedup vs. single** — the scaling claim.  Replication
  scales reads with *cores*: each replica is its own process with its own
  GIL, so expect near-linear gains up to the host's CPU count and none
  beyond it (``host_cpus`` is recorded precisely so a 1-core CI box's
  flat numbers are interpretable);
* **incorrect** — every ``verify_frames``-th response frame is decoded
  and each answer BFS-checked against the ground-truth graph.  MUST be 0;
* **propagation_ms** — median time for an update batch to reach *every*
  replica (ack at the router log to full drain), the replication-lag cost
  a reader pays for ``min_epoch`` read-your-writes.

The read phase runs against a static graph (so BFS verification is
exact), then the propagation probe appends insert batches and times the
drain.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
from pathlib import Path
from statistics import median
from time import perf_counter

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.graph.traversal import INF, bfs_distances
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_oracle
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.streams import insertion_stream

__all__ = ["run"]

_DEFAULT_DATASETS = ["flickr-s"]


class _ReadLoop(threading.Thread):
    """Closed-loop reader cycling pre-encoded `query_many` frames.

    The hot loop is write-frame / read-line only; every ``verify_every``-th
    response is decoded and kept for the post-phase BFS check, so client
    CPU stays out of the throughput measurement's way.
    """

    def __init__(self, host, port, frames, deadline, verify_every):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.frames = frames  # [(request_bytes, pairs), ...]
        self.deadline = deadline
        self.verify_every = verify_every
        self.count = 0
        self.sampled: list[tuple[int, list]] = []  # (frame_idx, distances)
        self.failed: str | None = None

    def run(self) -> None:
        try:
            sock = socket.create_connection((self.host, self.port), timeout=10.0)
            handle = sock.makefile("rwb")
        except OSError as exc:  # pragma: no cover - boot race
            self.failed = str(exc)
            return
        try:
            index = 0
            rounds = 0
            frames = self.frames
            while perf_counter() < self.deadline:
                request, pairs = frames[index]
                handle.write(request)
                handle.flush()
                line = handle.readline()
                if not line:
                    self.failed = "connection closed mid-load"
                    return
                rounds += 1
                if rounds % self.verify_every == 0:
                    response = json.loads(line)
                    if not response.get("ok"):
                        self.failed = response.get("error", "request failed")
                        return
                    self.sampled.append((index, response["distances"]))
                self.count += len(pairs)
                index = (index + 1) % len(frames)
        finally:
            handle.close()
            sock.close()


def _make_frames(vertices, rng, count, batch):
    frames = []
    for _ in range(count):
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(batch)]
        request = (
            json.dumps(
                {"op": "query_many", "pairs": [list(p) for p in pairs]},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        frames.append((request, pairs))
    return frames


def _read_phase(host, port, frames, prof, graph):
    deadline = perf_counter() + prof.cluster_duration_s
    # Each client decodes ~verify_frames distinct frame positions per
    # 64-frame cycle; dedup caps post-phase BFS work at 64 frames total.
    verify_every = max(1, len(frames) // max(1, prof.cluster_verify_frames))
    loops = [
        _ReadLoop(host, port, frames, deadline, verify_every)
        for _ in range(prof.cluster_clients)
    ]
    start = perf_counter()
    for loop in loops:
        loop.start()
    for loop in loops:
        loop.join()
    elapsed = perf_counter() - start
    failures = [loop.failed for loop in loops if loop.failed]
    if failures:
        raise BenchmarkError(f"read loop failed: {failures[0]}")

    # BFS-verify every sampled frame (dedup: the same frame re-sampled by
    # several clients must produce identical answers anyway).
    bfs_cache: dict[int, dict] = {}
    checked = incorrect = 0
    seen: set[int] = set()
    for loop in loops:
        for frame_idx, distances in loop.sampled:
            if frame_idx in seen:
                continue
            seen.add(frame_idx)
            _, pairs = frames[frame_idx]
            for (u, v), got in zip(pairs, distances):
                if u not in bfs_cache:
                    bfs_cache[u] = bfs_distances(graph, u)
                expected = bfs_cache[u].get(v, INF)
                got = INF if got is None else got
                checked += 1
                if got != expected:
                    incorrect += 1
    queries = sum(loop.count for loop in loops)
    return {
        "elapsed": elapsed,
        "queries": queries,
        "qps": queries / elapsed if elapsed > 0 else 0.0,
        "checked": checked,
        "incorrect": incorrect,
    }


def _lag_phase(host, port, events, prof):
    """Median ms from update-batch ack to every replica drained."""
    laps = []
    with ServingClient(host, port) as client:
        per = prof.cluster_lag_batch_size
        for base in range(0, len(events), per):
            chunk = events[base : base + per]
            if not chunk:
                break
            client.updates([(e.kind, *e.edge) for e in chunk])
            start = perf_counter()
            response = client.snapshot()
            if not response.get("ok"):
                raise BenchmarkError(f"cluster drain failed: {response}")
            laps.append((perf_counter() - start) * 1000.0)
    return median(laps) if laps else None


def _single_row(name, oracle_file, frames, prof, graph):
    server = OracleServer.from_file(oracle_file, port=0)
    host, port = server.start_in_thread()
    try:
        phase = _read_phase(host, port, frames, prof, graph)
    finally:
        server.stop_thread()
    return phase, None


def _cluster_row(name, oracle_file, frames, prof, graph, replicas, events, tmp):
    from repro.cluster import ClusterSupervisor

    supervisor = ClusterSupervisor(
        oracle_file,
        cluster_dir=Path(tmp) / f"cluster-{replicas}",
        replicas=replicas,
        port=0,
        compact_every=None,
    )
    host, port = supervisor.start_in_thread()
    try:
        phase = _read_phase(host, port, frames, prof, graph)
        propagation = _lag_phase(host, port, events, prof)
    finally:
        supervisor.stop_thread()
    unclean = [
        name_
        for name_, worker in supervisor.workers_by_name.items()
        if worker.exitcode != 0
    ]
    if unclean:
        raise BenchmarkError(f"replicas shut down uncleanly: {unclean}")
    return phase, propagation


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    workers: int | None = None,
) -> ExperimentResult:
    """Aggregate read qps at 1..N replicas vs. single-process serving."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")

    host_cpus = os.cpu_count() or 1
    rows: list[dict] = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        oracle = DynamicHCL.build(
            graph, num_landmarks=spec.num_landmarks, workers=workers
        )
        vertices = sorted(graph.vertices())
        rng = ensure_rng(seed * 31 + 7)
        frames = _make_frames(vertices, rng, 64, prof.cluster_query_batch)
        lag_events = insertion_stream(
            graph, prof.cluster_lag_batches * prof.cluster_lag_batch_size,
            rng=ensure_rng(seed * 17 + 3),
        )
        with tempfile.TemporaryDirectory() as tmp:
            oracle_file = Path(tmp) / "oracle.json.gz"
            save_oracle(oracle, oracle_file)

            single, _ = _single_row(name, oracle_file, frames, prof, graph)
            rows.append(
                _row(name, "single", 1, prof, host_cpus, single, None, single)
            )
            for replicas in prof.cluster_replica_counts:
                phase, propagation = _cluster_row(
                    name, oracle_file, frames, prof, graph, replicas,
                    lag_events, tmp,
                )
                rows.append(
                    _row(name, "cluster", replicas, prof, host_cpus, phase,
                         propagation, single)
                )

    text = format_table(
        ["dataset", "mode", "replicas", "clients", "duration_s", "queries",
         "qps", "speedup_vs_single", "checked", "incorrect",
         "propagation_ms", "host_cpus"],
        rows,
        title="C — replicated cluster read throughput vs. single-process "
              "serving (speedup needs >= replicas CPU cores; incorrect "
              "MUST be 0)",
    )
    return ExperimentResult(name="cluster", rows=rows, text=text)


def _row(name, mode, replicas, prof, host_cpus, phase, propagation, single):
    base_qps = single["qps"]
    return {
        "experiment": "C-cluster",
        "dataset": name,
        "mode": mode,
        "replicas": replicas,
        "clients": prof.cluster_clients,
        "duration_s": round(phase["elapsed"], 3),
        "queries": phase["queries"],
        "qps": round(phase["qps"], 1),
        "speedup_vs_single": (
            round(phase["qps"] / base_qps, 3) if base_qps > 0 else None
        ),
        "checked": phase["checked"],
        "incorrect": phase["incorrect"],
        "propagation_ms": (
            round(propagation, 2) if propagation is not None else None
        ),
        "host_cpus": host_cpus,
    }
