"""Ablation experiments A1–A3 (reproduction extras, docs/DESIGN.md §5).

* **A1 — landmark selection**: the paper (following its predecessors) uses
  top-degree landmarks; this ablation quantifies what that choice buys over
  random / betweenness / spread selection in label size, update time and
  query time.
* **A2 — maintenance vs rebuild**: the per-update speedup of IncHL+ over
  recomputing the labelling from scratch (the quantitative version of the
  paper's Figure 4 argument).
* **A3 — workload realism**: random-pair insertions (the paper's EI) vs
  replaying held-out *real* edges; random pairs connect distant vertices
  and therefore affect far more of the graph.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.bench.runner import time_queries, time_updates
from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import held_out_edges, sample_edge_insertions

__all__ = ["run", "run_landmark_strategies", "run_update_vs_rebuild", "run_workload_realism"]

_DEFAULT_DATASETS = ["flickr-s", "indochina-s"]
_STRATEGIES = ("degree", "random", "betweenness", "spread")


def run_landmark_strategies(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A1: per-strategy label size / update time / query time."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    rows = []
    for name in names:
        spec, base_graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a1")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(base_graph, prof.ablation_updates, rng=rng)
        query_pairs = sample_query_pairs(base_graph, prof.ablation_queries, rng=rng)
        for strategy in _STRATEGIES:
            graph = base_graph.copy()
            oracle = DynamicHCL.build(
                graph,
                num_landmarks=spec.num_landmarks,
                strategy=strategy,
                rng=ensure_rng(seed),
            )
            entries_before = oracle.label_entries
            update_ms = time_updates(oracle, insertions).mean_ms()
            query_ms = time_queries(oracle, query_pairs).mean_ms()
            rows.append({
                "experiment": "A1-landmark-strategy",
                "dataset": name,
                "strategy": strategy,
                "label_entries": entries_before,
                "update_ms": update_ms,
                "query_ms": query_ms,
            })
    return rows


def run_update_vs_rebuild(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A2: mean IncHL+ update time vs from-scratch reconstruction time."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(DATASETS)
    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a2")) & 0x7FFFFFFF)
        insertions = sample_edge_insertions(graph, prof.ablation_updates, rng=rng)
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        update_ms = time_updates(oracle, insertions).mean_ms()
        with Stopwatch() as sw:
            build_hcl(graph, oracle.landmarks)
        rebuild_ms = sw.elapsed * 1000.0
        rows.append({
            "experiment": "A2-update-vs-rebuild",
            "dataset": name,
            "update_ms": update_ms,
            "rebuild_ms": rebuild_ms,
            "speedup": rebuild_ms / update_ms if update_ms > 0 else None,
        })
    return rows


def run_workload_realism(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> list[dict]:
    """A3: random-pair insertions vs replayed held-out real edges."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    rows = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        rng = ensure_rng(hash((seed, name, "ablation-a3")) & 0x7FFFFFFF)

        # Replay workload: remove real edges, rebuild, re-insert them.
        replay_graph = graph.copy()
        replayed = held_out_edges(replay_graph, prof.ablation_updates, rng=rng)
        for workload, g, stream in (
            ("random-pairs", graph.copy(),
             sample_edge_insertions(graph, prof.ablation_updates, rng=rng)),
            ("replayed-edges", replay_graph, replayed),
        ):
            oracle = DynamicHCL.build(g, num_landmarks=spec.num_landmarks)
            affected = []
            stats = time_updates(oracle, [])
            for u, v in stream:
                result = stats.time(oracle.insert_edge, u, v)
                affected.append(result.affected_union)
            rows.append({
                "experiment": "A3-workload-realism",
                "dataset": name,
                "workload": workload,
                "update_ms": stats.mean_ms(),
                "mean_affected": sum(affected) / len(affected) if affected else 0.0,
                "max_affected": max(affected, default=0),
            })
    return rows


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
) -> ExperimentResult:
    """Run all three ablations and render one combined report."""
    if datasets is not None:
        unknown = [n for n in datasets if n not in DATASETS]
        if unknown:
            raise BenchmarkError(f"unknown datasets: {unknown}")
    a1 = run_landmark_strategies(profile, datasets, seed)
    a2 = run_update_vs_rebuild(
        profile, datasets if datasets is not None else _DEFAULT_DATASETS, seed
    )
    a3 = run_workload_realism(profile, datasets, seed)

    sections = [
        format_table(
            ["dataset", "strategy", "label_entries", "update_ms", "query_ms"],
            a1, title="A1 — landmark selection strategies",
        ),
        format_table(
            ["dataset", "update_ms", "rebuild_ms", "speedup"],
            a2, title="A2 — IncHL+ update vs from-scratch rebuild",
        ),
        format_table(
            ["dataset", "workload", "update_ms", "mean_affected", "max_affected"],
            a3, title="A3 — random-pair vs replayed-real-edge workloads",
        ),
    ]
    return ExperimentResult(
        name="ablations", rows=a1 + a2 + a3, text="\n\n".join(sections)
    )
