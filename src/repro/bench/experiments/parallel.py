"""P — parallel per-landmark engine: serial vs parallel speedup.

A reproduction extra (no counterpart in the paper, whose C++ harness is
single-threaded): measures what the :mod:`repro.parallel` engine buys on
the three bulk operations it accelerates —

* **construction** — per-landmark BFS sweeps over a shared CSR snapshot
  (both the reference Python kernel and the numpy fast path);
* **batch insertion** — per-landmark Phase B finds of
  :func:`repro.core.batch.apply_edge_insertions_batch`;
* **decremental rebuild** — per-relevant-landmark rebuild sweeps of
  :func:`repro.core.decremental.apply_edge_deletion`.

Every row also re-verifies the engine's contract (``identical`` column):
the parallel labelling must equal the serial canonical minimal labelling.
Speedups depend on CPU count and graph size; on a single-core box the
parallel column mostly measures fork/pickle overhead, which is exactly the
crossover a deployment needs to know.
"""

from __future__ import annotations

import zlib

from repro.bench.experiments import ExperimentResult
from repro.bench.profile import bench_profile
from repro.bench.report import format_table
from repro.core.batch import apply_edge_insertions_batch
from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.decremental import apply_edge_deletion
from repro.exceptions import BenchmarkError
from repro.graph.csr import CSRGraph
from repro.landmarks.selection import top_degree_landmarks
from repro.parallel.engine import (
    LandmarkEngine,
    available_parallelism,
    resolve_workers,
)
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.updates import sample_edge_insertions

__all__ = ["run"]

_DEFAULT_DATASETS = ["flickr-s"]


def _timed(fn, *args, **kwargs):
    with Stopwatch() as sw:
        result = fn(*args, **kwargs)
    return result, sw.elapsed * 1000.0


def run(
    profile: str | None = None,
    datasets: list[str] | None = None,
    seed: int = 2021,
    workers: int | None = None,
) -> ExperimentResult:
    """Serial vs parallel timing (and equality check) per bulk operation."""
    prof = bench_profile(profile)
    names = datasets if datasets is not None else list(_DEFAULT_DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        raise BenchmarkError(f"unknown datasets: {unknown}")
    if workers is None:
        # Auto mode on a one-CPU host: still exercise the process path
        # with two workers so the report shows the true fork overhead
        # rather than a degenerate no-op.  Explicit values keep their
        # documented meaning (``1`` = serial baseline, ``0`` = all CPUs).
        num_workers = max(2, available_parallelism())
    else:
        num_workers = resolve_workers(workers)
    # The mode column reports the *engine configuration* (worker count x
    # platform): "serial-fallback" means fork is unavailable and every
    # "parallel" timing actually ran in-process.  Note that individual
    # operations with a single work item (e.g. a one-relevant-landmark
    # rebuild) run in-process even in "fork" mode.
    mode = "fork" if LandmarkEngine(num_workers).is_parallel else "serial-fallback"

    rows: list[dict] = []
    for name in names:
        spec, graph = build_dataset(name, profile=prof.name, seed=seed)
        # crc32 (not hash()) so --seed reproduces the same batch across
        # interpreter runs regardless of PYTHONHASHSEED.
        rng = ensure_rng(zlib.crc32(f"{seed}:{name}:parallel".encode()))
        landmarks = top_degree_landmarks(graph, spec.num_landmarks)
        csr = CSRGraph.from_graph(graph)

        serial_ref, t_serial = _timed(build_hcl, graph, landmarks)
        parallel_lab, t_parallel = _timed(
            build_hcl, graph, landmarks, workers=num_workers
        )
        rows.append(_row(name, "construction-python", num_workers, mode,
                         t_serial, t_parallel, parallel_lab == serial_ref))

        fast_ref, t_serial = _timed(build_hcl_fast, graph, landmarks, csr)
        fast_par, t_parallel = _timed(
            build_hcl_fast, graph, landmarks, csr, workers=num_workers
        )
        rows.append(_row(name, "construction-csr", num_workers, mode,
                         t_serial, t_parallel,
                         fast_par == fast_ref and fast_ref == serial_ref))

        batch = sample_edge_insertions(graph, prof.ablation_updates, rng=rng)
        g_serial, lab_serial = graph.copy(), serial_ref.copy()
        for u, v in batch:
            g_serial.add_edge(u, v)
        _, t_serial = _timed(
            apply_edge_insertions_batch, g_serial, lab_serial, batch
        )
        g_par, lab_par = graph.copy(), serial_ref.copy()
        for u, v in batch:
            g_par.add_edge(u, v)
        _, t_parallel = _timed(
            apply_edge_insertions_batch, g_par, lab_par, batch,
            workers=num_workers,
        )
        rows.append(_row(name, "batch-insertion", num_workers, mode,
                         t_serial, t_parallel, lab_par == lab_serial))

        # Decremental rebuild: delete one freshly inserted edge.
        u, v = batch[0]
        _, t_serial = _timed(apply_edge_deletion, g_serial, lab_serial, u, v)
        _, t_parallel = _timed(
            apply_edge_deletion, g_par, lab_par, u, v, workers=num_workers
        )
        rows.append(_row(name, "decremental-rebuild", num_workers, mode,
                         t_serial, t_parallel, lab_par == lab_serial))

    text = format_table(
        ["dataset", "operation", "workers", "mode", "serial_ms",
         "parallel_ms", "speedup", "identical"],
        rows,
        title=(f"P — serial vs parallel per-landmark engine "
               f"(host CPUs: {available_parallelism()})"),
    )
    return ExperimentResult(name="parallel", rows=rows, text=text)


def _row(dataset, operation, num_workers, mode, t_serial, t_parallel, identical):
    return {
        "experiment": "P-parallel-engine",
        "dataset": dataset,
        "operation": operation,
        "workers": num_workers,
        "mode": mode,
        "serial_ms": round(t_serial, 3),
        "parallel_ms": round(t_parallel, 3),
        "speedup": round(t_serial / t_parallel, 3) if t_parallel > 0 else None,
        "identical": identical,
    }
