"""Command-line entry point: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench table1
    python -m repro.bench figure3 --profile smoke --datasets flickr-s uk-s
    python -m repro.bench parallel --workers 4
    python -m repro.bench all --out results.txt
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.bench.experiments import ExperimentResult
from repro.bench.experiments import (
    ablations,
    cluster,
    extensions,
    figure1,
    figure2,
    figure3,
    figure4,
    incremental_fast,
    mixed,
    parallel,
    serving,
    table1,
    table2,
)
from repro.bench.profile import PROFILE_NAMES

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "ablations": ablations.run,
    "cluster": cluster.run,
    "extensions": extensions.run,
    "incremental_fast": incremental_fast.run,
    "mixed": mixed.run,
    "parallel": parallel.run,
    "serving": serving.run,
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the tables and figures of 'Efficient Maintenance of "
            "Distance Labelling for Incremental Updates in Large Dynamic "
            "Graphs' (EDBT 2021) on the synthetic stand-in datasets."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--profile",
        choices=PROFILE_NAMES,
        default=None,
        help="workload scale (default: REPRO_BENCH_PROFILE or 'default')",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict to these dataset stand-ins (default: experiment-specific)",
    )
    parser.add_argument("--seed", type=int, default=2021, help="workload seed")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the parallel engine (0 = all CPUs; "
             "honoured by experiments that take a workers argument)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report to this file",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_out",
        help="also write the structured rows as JSON "
             "({experiment: [row, ...]}; CI uploads this as an artifact)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run one experiment (or all) and print its paper-style report."""
    from repro.obs.profile import dump_if_enabled, start_if_enabled

    args = _parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # REPRO_PROFILE=1 profiles the harness itself: folded stacks land in
    # REPRO_PROFILE_OUT and the phase table in the JSON's `_profile` key
    # (bench_compare treats non-list top-level keys as metadata).
    profiler = start_if_enabled()
    reports: list[str] = []
    rows_by_experiment: dict[str, list[dict]] = {}
    for name in names:
        fn = EXPERIMENTS[name]
        kwargs = dict(profile=args.profile, datasets=args.datasets, seed=args.seed)
        if "workers" in inspect.signature(fn).parameters:
            kwargs["workers"] = args.workers
        result: ExperimentResult = fn(**kwargs)
        reports.append(result.text)
        rows_by_experiment[result.name] = result.rows
        print(result.text)
        print()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(reports) + "\n")
    if args.json_out:
        import json

        payload: dict = dict(rows_by_experiment)
        if profiler is not None:
            profiler.stop()
            payload["_profile"] = profiler.stats()
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
    dump_if_enabled()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
