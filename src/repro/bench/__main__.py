"""``python -m repro.bench`` dispatch."""

import sys

from repro.bench.cli import main

sys.exit(main())
