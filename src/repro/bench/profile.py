"""Benchmark profiles: how much work each experiment does.

The paper's raw workload sizes (1,000 insertions, 100,000 queries, up to
10,000 cumulative updates) are scaled per profile so that the pure-Python
harness finishes in sensible wall-clock time while preserving every
qualitative comparison.  Select with ``REPRO_BENCH_PROFILE`` or the CLI's
``--profile``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import knobs
from repro.exceptions import BenchmarkError

__all__ = ["BenchProfile", "bench_profile", "PROFILE_NAMES"]

PROFILE_NAMES = ("smoke", "default", "full")


@dataclass(frozen=True)
class BenchProfile:
    """Workload sizes for one profile (paper-scale values in comments)."""

    name: str
    num_updates: int  # Table 1: paper 1,000
    num_queries: int  # Table 1: paper 100,000
    figure1_updates: int  # Figure 1: paper 1,000
    figure3_updates: int  # Figure 3 per |R| value
    figure3_landmark_counts: tuple[int, ...]  # paper: 10..50
    # Figure 3 builds 2 oracles per |R| per dataset, so smaller profiles
    # sweep a representative dataset subset; None = all 12 (paper).
    figure3_datasets: tuple[str, ...] | None
    figure4_batch: int  # Figure 4: paper 500
    figure4_total: int  # Figure 4: paper 10,000
    pll_budget_s: float  # construction gate for IncPLL
    ablation_updates: int
    ablation_queries: int
    # Serving experiment (reproduction extra): closed-loop duration per
    # reader count, the reader counts swept, the update-stream length fed
    # to the writer, and how often readers BFS-verify an answer.
    serving_duration_s: float
    serving_reader_counts: tuple[int, ...]
    serving_updates: int
    serving_verify_every: int
    # Cluster experiment (reproduction extra): closed-loop read duration
    # per replica count, the replica counts swept, concurrent client
    # threads, pairs per query_many frame, how many frames get BFS-checked,
    # and the update-propagation probe (batches x events per batch).
    cluster_duration_s: float
    cluster_replica_counts: tuple[int, ...]
    cluster_clients: int
    cluster_query_batch: int
    cluster_verify_frames: int
    cluster_lag_batches: int
    cluster_lag_batch_size: int


_PROFILES = {
    "smoke": BenchProfile(
        name="smoke",
        num_updates=10,
        num_queries=60,
        figure1_updates=25,
        figure3_updates=8,
        figure3_landmark_counts=(10, 20),
        figure3_datasets=("skitter-s", "flickr-s"),
        figure4_batch=10,
        figure4_total=40,
        pll_budget_s=30.0,
        ablation_updates=8,
        ablation_queries=40,
        serving_duration_s=1.0,
        serving_reader_counts=(1, 2),
        serving_updates=24,
        serving_verify_every=8,
        cluster_duration_s=1.0,
        cluster_replica_counts=(1, 2),
        cluster_clients=2,
        cluster_query_batch=24,
        cluster_verify_frames=3,
        cluster_lag_batches=3,
        cluster_lag_batch_size=8,
    ),
    "default": BenchProfile(
        name="default",
        num_updates=120,
        num_queries=1500,
        figure1_updates=250,
        figure3_updates=40,
        figure3_landmark_counts=(10, 20, 30, 40, 50),
        figure3_datasets=(
            "skitter-s", "flickr-s", "orkut-s",
            "indochina-s", "twitter-s", "uk-s",
        ),
        figure4_batch=100,
        figure4_total=2000,
        pll_budget_s=90.0,
        ablation_updates=60,
        ablation_queries=400,
        serving_duration_s=3.0,
        serving_reader_counts=(1, 2, 4),
        serving_updates=120,
        serving_verify_every=16,
        cluster_duration_s=3.0,
        cluster_replica_counts=(1, 2, 4),
        cluster_clients=6,
        cluster_query_batch=48,
        cluster_verify_frames=6,
        cluster_lag_batches=6,
        cluster_lag_batch_size=16,
    ),
    "full": BenchProfile(
        name="full",
        num_updates=1000,
        num_queries=10000,
        figure1_updates=1000,
        figure3_updates=150,
        figure3_landmark_counts=(10, 20, 30, 40, 50),
        figure3_datasets=None,
        figure4_batch=500,
        figure4_total=10000,
        pll_budget_s=600.0,
        ablation_updates=200,
        ablation_queries=2000,
        serving_duration_s=8.0,
        serving_reader_counts=(1, 2, 4, 8),
        serving_updates=600,
        serving_verify_every=32,
        cluster_duration_s=6.0,
        cluster_replica_counts=(1, 2, 4),
        cluster_clients=8,
        cluster_query_batch=64,
        cluster_verify_frames=10,
        cluster_lag_batches=10,
        cluster_lag_batch_size=25,
    ),
}


def bench_profile(name: str | None = None) -> BenchProfile:
    """Resolve a profile by name, ``REPRO_BENCH_PROFILE``, or the default."""
    if name is None:
        name = knobs.get("REPRO_BENCH_PROFILE")
    try:
        return _PROFILES[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown bench profile {name!r}; expected one of {PROFILE_NAMES}"
        ) from None
