"""Terminal plotting: ASCII bar charts, line charts and sparklines.

The paper's Figures 1, 3 and 4 are log-scale plots; the harness is
terminal-first, so these renderers give the figure experiments a visual
output alongside the numeric series of
:func:`repro.bench.report.render_series`.  Log scaling is supported on
both chart types because nearly every quantity in the paper's evaluation
spans decades (update times from 10⁻² to 10⁴ ms).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.bench.report import format_value

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def _scale(value: float, low: float, high: float, log: bool) -> float:
    """Map ``value`` to [0, 1] linearly or logarithmically."""
    if high <= low:
        return 1.0
    if log:
        value, low, high = math.log10(value), math.log10(low), math.log10(high)
    return max(0.0, min(1.0, (value - low) / (high - low)))


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    log: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label.

    With ``log=True`` bar lengths are proportional to ``log10`` of the
    value over the data range — the right rendering for quantities that
    span decades (e.g. Figure 3's per-dataset update times).  Zero or
    negative values render as empty bars; the smallest positive value
    keeps a one-cell bar so it stays visible.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values must align: {len(labels)} vs {len(values)}"
        )
    positives = [v for v in values if v > 0]
    lines = [title]
    if not positives:
        lines.extend(f"  {label}  (no data)" for label in labels)
        return "\n".join(lines)
    low, high = min(positives), max(positives)
    label_w = max((len(lbl) for lbl in labels), default=0)
    for label, value in zip(labels, values):
        if value <= 0:
            bar = ""
        else:
            # Bars keep at least one cell so the smallest value is visible.
            frac = _scale(value, low, high, log)
            bar = "█" * max(1, round(frac * width))
        suffix = f"{format_value(value)}{(' ' + unit) if unit else ''}"
        lines.append(f"  {label.ljust(label_w)}  {bar.ljust(width)}  {suffix}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """One-line block-character rendering of a numeric series.

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    positives = [v for v in values if v > 0]
    if not positives:
        return " " * len(values)
    low, high = min(positives), max(positives)
    chars = []
    for v in values:
        if v <= 0:
            chars.append(" ")
        else:
            frac = _scale(v, low, high, log)
            chars.append(_BLOCKS[min(len(_BLOCKS) - 1, int(frac * len(_BLOCKS)))])
    return "".join(chars)


def line_chart(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series ASCII scatter/line chart on a character grid.

    Each named series gets its own marker (cycled from ``*+o x#@``); the
    y-axis can be log-scaled.  Points with non-positive y are dropped when
    ``log_y`` is set.  Intended for the Figure 4 cumulative-time curves.
    """
    markers = "*+ox#@"
    points = {
        name: [
            (float(x), float(y))
            for x, y in pts
            if not (log_y and y <= 0) and y == y  # drop log-invalid and NaN
        ]
        for name, pts in series.items()
    }
    all_points = [p for pts in points.values() for p in pts]
    if not all_points:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = round(_scale(x, x_low, x_high, False) * (width - 1))
            row = round(_scale(y, y_low, y_high, log_y) * (height - 1))
            grid[height - 1 - row][col] = marker

    y_top = format_value(y_high)
    y_bottom = format_value(y_low)
    gutter = max(len(y_top), len(y_bottom))
    lines = [title]
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(gutter)
        elif i == height - 1:
            prefix = y_bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row_cells)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = (
        f"{format_value(x_low)}{' ' * max(1, width - len(format_value(x_low)) - len(format_value(x_high)))}"
        f"{format_value(x_high)}"
    )
    lines.append(" " * (gutter + 2) + x_axis)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(points)
    )
    lines.append(f"  [{x_label} vs {y_label}{', log-y' if log_y else ''}]  {legend}")
    return "\n".join(lines)
