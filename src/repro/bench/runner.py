"""Shared experiment plumbing: build oracles, time update/query batches.

Every experiment follows the paper's protocol: instantiate a dataset,
build each method's index on it, replay the *same* update stream through
each method (timing per update), then the same query stream (timing per
query), and finally read off index sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.baselines.fd import FullDynamicOracle
from repro.baselines.incpll import IncPLL
from repro.core.dynamic import DynamicHCL
from repro.exceptions import ConstructionBudgetExceeded
from repro.graph.dynamic_graph import DynamicGraph
from repro.utils.timing import Stopwatch, TimingStats
from repro.workloads.datasets import DatasetSpec

__all__ = [
    "OracleFactory",
    "BuiltOracle",
    "build_oracles",
    "time_updates",
    "time_queries",
]


@dataclass(frozen=True)
class OracleFactory:
    """How to build one method's oracle for a dataset."""

    name: str
    build: Callable[[DynamicGraph, DatasetSpec], object]


@dataclass
class BuiltOracle:
    """A constructed oracle plus its build time; ``oracle=None`` records an
    honest construction failure (the paper's '-' cells)."""

    name: str
    oracle: object | None
    build_seconds: float
    failure: str | None = None


def _build_inchl(graph: DynamicGraph, spec: DatasetSpec) -> DynamicHCL:
    return DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)


def _build_incfd(graph: DynamicGraph, spec: DatasetSpec) -> FullDynamicOracle:
    return FullDynamicOracle(graph, num_landmarks=spec.num_landmarks)


def default_factories(pll_budget_s: float | None = None) -> list[OracleFactory]:
    """The paper's three methods, in Table 1 column order."""

    def build_incpll(graph: DynamicGraph, spec: DatasetSpec) -> IncPLL:
        """IncPLL oracle factory honouring the construction budget."""
        if not spec.pll_feasible:
            raise ConstructionBudgetExceeded(
                f"IncPLL on {spec.name} (mirrors the paper: IncPLL fails on "
                f"7 of 12 datasets)", 0.0,
            )
        return IncPLL(graph, time_budget_s=pll_budget_s)

    return [
        OracleFactory("IncHL+", _build_inchl),
        OracleFactory("IncFD", _build_incfd),
        OracleFactory("IncPLL", build_incpll),
    ]


def build_oracles(
    spec: DatasetSpec,
    graph: DynamicGraph,
    factories: list[OracleFactory],
) -> list[BuiltOracle]:
    """Build every method on its own *copy* of ``graph`` (updates must not
    leak between methods), recording build times and honest failures."""
    built = []
    for factory in factories:
        working_copy = graph.copy()
        try:
            with Stopwatch() as sw:
                oracle = factory.build(working_copy, spec)
        except ConstructionBudgetExceeded as exc:
            built.append(
                BuiltOracle(factory.name, None, 0.0, failure=str(exc))
            )
            continue
        built.append(BuiltOracle(factory.name, oracle, sw.elapsed))
    return built


def time_updates(oracle, insertions: list[tuple[int, int]]) -> TimingStats:
    """Apply the edge-insertion stream, timing each update individually."""
    stats = TimingStats()
    for u, v in insertions:
        stats.time(oracle.insert_edge, u, v)
    return stats


def time_queries(oracle, pairs: list[tuple[int, int]]) -> TimingStats:
    """Answer the query stream, timing each query individually."""
    stats = TimingStats()
    for u, v in pairs:
        stats.time(oracle.query, u, v)
    return stats


def fresh_rng(seed_parts: tuple) -> random.Random:
    """Deterministic RNG derived from hashable experiment coordinates."""
    return random.Random(hash(seed_parts) & 0x7FFFFFFF)
