"""Central registry of every ``REPRO_*`` environment knob.

Every environment variable the library reads is declared here exactly
once — name, raw default, parser, one-line doc — and read through
:func:`get` / :func:`raw`.  Two things hang off this single source:

* the ``RL006`` static-analysis rule (:mod:`repro.lint`) fails CI when
  any module reads a ``REPRO_*`` variable directly from ``os.environ``
  or through an accessor with a name this table does not declare, so a
  knob can never silently fork its spelling or default between modules;
* the README "Tuning knobs" table and the ``repro knobs`` CLI are
  rendered from :func:`render_table` / :func:`current_values`, so docs
  cannot drift from behaviour.

Values are re-read from the environment on every :func:`get` call —
knob lookups are off every hot path, and tests flip knobs with
``monkeypatch.setenv`` without rebuilding anything.

>>> get("REPRO_LOG_LEVEL", environ={})
'info'
>>> get("REPRO_SLOW_MS", environ={"REPRO_SLOW_MS": "not-a-number"})
250.0
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Knob",
    "KNOBS",
    "get",
    "raw",
    "render_table",
    "current_values",
]


def _parse_flag(value: str) -> bool:
    """Opt-in switch: only ``1/on/true/yes`` (any case) enable it."""
    return value.strip().lower() in ("1", "on", "true", "yes")


def _parse_onoff(value: str) -> bool:
    """Opt-out switch: anything but ``off/0/false/no`` keeps it on."""
    return value.strip().lower() not in ("off", "0", "false", "no")


def _parse_word(value: str) -> str:
    return value.strip().lower()


def _parse_positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise ValueError(f"must be > 0, got {number}")
    return number


def _parse_path(value: str) -> str | None:
    return value or None


def _parse_json(value: str) -> Any:
    return json.loads(value)


@dataclass(frozen=True)
class Knob:
    """One declared environment variable.

    ``default`` is the *raw* (string) default, parsed through ``parse``
    exactly like an environment value would be; ``None`` means unset.
    ``required`` knobs raise ``KeyError`` from :func:`get` when absent
    instead of returning ``None``.
    """

    name: str
    default: str | None
    parse: Callable[[str], Any]
    doc: str
    required: bool = False


#: The registry: one entry per ``REPRO_*`` variable, sorted by name.
KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            "REPRO_BENCH_PROFILE",
            "default",
            _parse_word,
            "Default bench workload scale (`smoke` / `default` / `full`) "
            "when no `--profile` flag is given.",
        ),
        Knob(
            "REPRO_LOG_LEVEL",
            "info",
            _parse_word,
            "Structured-log threshold: `debug` / `info` / `warning` / "
            "`error` / `off`; unknown names fall back to `info`.",
        ),
        Knob(
            "REPRO_OBS",
            "on",
            _parse_onoff,
            "Master switch for span recording (`off`/`0`/`false`/`no` "
            "disables — the overhead-measurement knob).",
        ),
        Knob(
            "REPRO_PROFILE",
            "",
            _parse_flag,
            "Start the sampling wall-clock profiler on server/bench "
            "startup (`1`/`on`/`true`/`yes`).",
        ),
        Knob(
            "REPRO_PROFILE_INTERVAL_MS",
            "10",
            _parse_positive_float,
            "Profiler sampling period in milliseconds (must be > 0; "
            "invalid values fall back to the default).",
        ),
        Knob(
            "REPRO_PROFILE_OUT",
            None,
            _parse_path,
            "Folded-stack output path the profiler dumps to on process "
            "shutdown (unset: no dump).",
        ),
        Knob(
            "REPRO_REPLICA_SPEC",
            None,
            _parse_json,
            "JSON `ReplicaSpec` consumed by `python -m repro.cluster."
            "replica` (cluster-internal; required there).",
            required=True,
        ),
        Knob(
            "REPRO_SLOW_MS",
            "250",
            float,
            "Slow-operation warning threshold in milliseconds shared by "
            "the slow-query and slow-batch logs.",
        ),
        Knob(
            "REPRO_SPAN_LOG",
            None,
            _parse_path,
            "NDJSON file every recorded span is mirrored to (unset: "
            "in-process ring only).",
        ),
    )
}


def raw(name: str, environ: Mapping[str, str] | None = None) -> str | None:
    """The raw string for ``name``: the environment value if set, the
    declared default otherwise.  ``KeyError`` on an undeclared name."""
    knob = KNOBS[name]
    env: Mapping[str, str] = os.environ if environ is None else environ
    value = env.get(name)
    return knob.default if value is None else value


def get(name: str, environ: Mapping[str, str] | None = None) -> Any:
    """The parsed value of ``name`` (``environ`` defaults to
    ``os.environ``).

    Optional knobs never raise on bad input: an unparseable value falls
    back to the parsed default (an unset default parses to ``None``).
    Required knobs raise ``KeyError`` when absent and let parse errors
    propagate — a malformed required value is a caller bug.
    """
    knob = KNOBS[name]
    value = raw(name, environ)
    if value is None:
        if knob.required:
            raise KeyError(f"required environment knob {name} is not set")
        return None
    if knob.required:
        return knob.parse(value)
    try:
        return knob.parse(value)
    except (ValueError, TypeError):
        if knob.default is None:
            return None
        return knob.parse(knob.default)


def current_values(environ: Mapping[str, str] | None = None) -> list[dict[str, Any]]:
    """One dict per knob — name, default, set?, effective value, doc —
    for the ``repro knobs`` CLI (required knobs report ``value: None``
    when unset rather than raising)."""
    env: Mapping[str, str] = os.environ if environ is None else environ
    out: list[dict[str, Any]] = []
    for name in sorted(KNOBS):
        knob = KNOBS[name]
        is_set = name in env
        try:
            value = get(name, env)
        except (KeyError, ValueError, TypeError):
            value = None
        out.append(
            {
                "name": name,
                "default": knob.default,
                "set": is_set,
                "value": value,
                "required": knob.required,
                "doc": knob.doc,
            }
        )
    return out


def render_table() -> str:
    """The Markdown "Tuning knobs" table (the README embeds this output
    verbatim; ``tests/lint/test_knobs.py`` keeps the two in sync)."""
    lines = [
        "| Knob | Default | Description |",
        "| --- | --- | --- |",
    ]
    for name in sorted(KNOBS):
        knob = KNOBS[name]
        if knob.default is None:
            default = "(unset)"
        elif knob.default == "":
            default = '`""`'
        else:
            default = f"`{knob.default}`"
        lines.append(f"| `{name}` | {default} | {knob.doc} |")
    return "\n".join(lines)
