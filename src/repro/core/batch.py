"""Batch edge insertion — one find/repair sweep per landmark.

The paper's model is strictly online: IncHL+ repairs the labelling after
*each* edge insertion, so a batch of ``k`` edges costs ``k`` per-landmark
sweeps.  Real update streams often arrive in bursts (the scalability test
of Figure 4 replays 10,000 insertions), and the affected regions of
nearby insertions overlap heavily.  This module generalizes Algorithms
2–3 to a *set* of inserted edges so each landmark pays one combined sweep:

* **Find** becomes a multi-seed jumped BFS driven by a bucket queue keyed
  on candidate depth.  Every inserted edge ``(x, y)`` seeds both
  orientations with ``old(x) + 1`` (kept only when ``≤ old(y)`` —
  the batch form of Lemma 4.4; the single-edge skip rule
  ``d_G(r,a) = d_G(r,b) ⇒ Λ_r = ∅`` falls out as the seed being
  discarded).  Processing buckets in increasing depth handles the
  interaction the sequential algorithm never sees: a seed's anchor
  distance may itself drop because of *another* edge in the batch, which
  the queue discovers before the stale seed is popped.
* **Repair** is unchanged: the combined affected set with exact new
  distances and recorded border distances is exactly the
  :class:`~repro.core.inchl.AffectedSearch` shape, so the batch reuses
  :func:`repro.core.inchl.repair_affected` verbatim.

The result is *identical* to applying the edges one at a time (both equal
the canonical minimal labelling of the final graph); the test-suite
asserts this, and the ablation benchmark measures the sweep-sharing win.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.inchl import AffectedSearch, UpdateStats, repair_affected
from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance
from repro.exceptions import InvariantViolationError
from repro.graph.traversal import INF
from repro.parallel.engine import LandmarkEngine
from repro.parallel.sweeps import batch_find_task

__all__ = [
    "BatchUpdateStats",
    "MixedUpdateStats",
    "find_affected_batch",
    "apply_edge_insertions_batch",
]


class BatchUpdateStats(UpdateStats):
    """Statistics of one batch update; ``edge`` holds the first edge and
    :attr:`edges` the whole batch."""

    def __init__(self, edges: Sequence[tuple[int, int]]) -> None:
        super().__init__(edge=edges[0], affected_per_landmark={})
        self.edges = list(edges)

    @property
    def batch_size(self) -> int:
        """Number of edges in this batch."""
        return len(self.edges)


class MixedUpdateStats(UpdateStats):
    """Statistics of one mixed insert/delete batch.

    ``inserts``/``deletes`` hold the batch's net edge sets;
    ``disconnected`` counts (landmark, vertex) pairs the batch cut off.
    The inherited counters aggregate the per-landmark repairs exactly as
    for pure insertion batches.
    """

    def __init__(
        self,
        inserts: Sequence[tuple[int, int]],
        deletes: Sequence[tuple[int, int]],
    ) -> None:
        self.inserts = [tuple(e) for e in inserts]
        self.deletes = [tuple(e) for e in deletes]
        edges = self.inserts or self.deletes
        super().__init__(
            edge=edges[0] if edges else (-1, -1), affected_per_landmark={}
        )
        self.disconnected = 0

    @property
    def batch_size(self) -> int:
        """Number of net events in this batch."""
        return len(self.inserts) + len(self.deletes)


def find_affected_batch(
    graph,
    labelling: HighwayCoverLabelling,
    r: int,
    seeds: Sequence[tuple[int, int, float]],
) -> AffectedSearch:
    """Multi-seed FindAffected w.r.t. landmark ``r``.

    ``seeds`` are ``(anchor, root, anchor_dist)`` triples, one per
    orientation of an inserted edge that survives the Lemma 4.4 filter
    (``anchor_dist + 1 <= old(root)``).  ``graph`` must already contain
    every inserted edge; ``labelling`` must be pristine w.r.t. ``r``.

    Returns the union affected set with exact new distances, plus the old
    distances of all scanned unaffected border vertices — the same
    contract as the single-edge :func:`repro.core.inchl.find_affected`.
    """
    adj = graph.adjacency()
    labels = labelling.labels
    highway = labelling.highway
    row = highway.row(r)
    landmark_set = highway.landmark_set

    search = AffectedSearch(landmark=r)
    new_dist = search.new_dist
    border_old = search.border_old

    def old_distance(w: int) -> float:
        # Inline landmark_distance — the batch-update hot path.
        if w == r:
            return 0.0
        if w in landmark_set:
            return row.get(w, INF)
        best = INF
        for ri, delta in labels.label(w).items():
            via = row.get(ri)
            if via is not None and via + delta < best:
                best = via + delta
        return best

    # Bucket queue keyed by candidate depth.  Unit edge weights mean a
    # popped depth never exceeds pending depths by more than one, but
    # seeds may start at arbitrary depths, so a dict-of-buckets swept in
    # increasing key order is the simplest monotone structure.
    buckets: dict[int, list[int]] = {}
    for anchor, root, anchor_dist in seeds:
        border_old.setdefault(anchor, anchor_dist)
        depth = int(anchor_dist) + 1
        buckets.setdefault(depth, []).append(root)

    while buckets:
        depth = min(buckets)
        frontier = buckets.pop(depth)
        next_depth = depth + 1
        settled: list[int] = []
        for v in frontier:
            known = new_dist.get(v)
            if known is not None and known <= depth:
                continue  # already settled at this or a smaller depth
            # A seed can still be stale: its root may have been reached
            # more cheaply through another inserted edge.  The bucket
            # order guarantees the cheaper path was settled first, so the
            # stale candidate is simply skipped above; the remaining case
            # is the Lemma 4.3 test against the old distance.
            if old_distance(v) < depth:
                border_old.setdefault(v, old_distance(v))
                continue
            new_dist[v] = depth
            settled.append(v)
        if not settled:
            continue
        bucket = buckets.setdefault(next_depth, [])
        for v in settled:
            for w in adj[v]:
                known = new_dist.get(w)
                if known is not None and known <= next_depth:
                    continue
                old = border_old.get(w)
                if old is None:
                    old = old_distance(w)
                if old >= next_depth:
                    bucket.append(w)
                else:
                    border_old.setdefault(w, old)
        if not bucket:
            del buckets[next_depth]
    # Seeds recorded as borders that later turned out affected are noise;
    # repair reads borders only for unaffected vertices, but keep the
    # invariant tight anyway.
    for v in new_dist:
        border_old.pop(v, None)
    return search


def apply_edge_insertions_batch(
    graph,
    labelling: HighwayCoverLabelling,
    edges: Iterable[tuple[int, int]],
    workers: int | None = None,
) -> BatchUpdateStats:
    """IncHL+ for a batch of edge insertions, one sweep per landmark.

    ``graph`` must already contain every edge of the batch (it is ``G'``);
    the labelling is updated in place from a valid minimal labelling of
    ``G`` to a valid minimal labelling of ``G'`` — the same postcondition
    as ``k`` sequential :func:`~repro.core.inchl.apply_edge_insertion`
    calls, at one find/repair sweep per landmark instead of ``k``.

    ``workers`` fans the per-landmark Phase B finds out across a process
    pool (``None``/``1`` serial, ``0`` all CPUs): every find reads only
    the post-insertion graph and the pristine labelling, so they are
    independent; the commuting Phase C repairs are applied on merge, in
    landmark order, making the parallel result identical to the serial one.
    """
    edge_list = [(int(a), int(b)) for a, b in edges]
    if not edge_list:
        raise InvariantViolationError("batch insertion needs at least one edge")
    for a, b in edge_list:
        if not graph.has_edge(a, b):
            raise InvariantViolationError(
                f"apply_edge_insertions_batch expects edge ({a}, {b}) to be "
                f"present in the graph (G') before the labelling update"
            )

    stats = BatchUpdateStats(edge_list)

    # Phase A: snapshot old endpoint distances per landmark on the
    # pristine labelling and keep the seed orientations that can carry a
    # new shortest path (batch Lemma 4.4).
    plans: dict[int, list[tuple[int, int, float]]] = {}
    for r in labelling.landmarks:
        seeds: list[tuple[int, int, float]] = []
        for a, b in edge_list:
            da = landmark_distance(labelling, r, a)
            db = landmark_distance(labelling, r, b)
            # A seed anchor must be reachable: inf + 1 <= inf would
            # otherwise seed components the landmark cannot reach at all.
            if da != INF and da + 1 <= db:
                seeds.append((a, b, da))
            if db != INF and db + 1 <= da:
                seeds.append((b, a, db))
        stats.affected_per_landmark[r] = 0
        if seeds:
            plans[r] = seeds

    # Phase B: all finds on the pristine labelling — independent per
    # landmark, so the engine may fan them out across worker processes
    # (the graph/labelling state is shared by fork, each AffectedSearch
    # is pickled back).
    engine = LandmarkEngine(workers)
    searches = engine.map(batch_find_task, (graph, labelling), list(plans.items()))

    # Phase C: repairs touch only r-entries, so order is irrelevant.
    union: set[int] = set()
    for search in searches:
        stats.affected_per_landmark[search.landmark] = search.num_affected
        union.update(search.new_dist)
        repair_affected(graph, labelling, search, stats)
    stats.affected_union = len(union)
    return stats
