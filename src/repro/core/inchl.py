"""IncHL+ — online incremental maintenance of a highway cover labelling.

This module implements the paper's Section 4 for an edge insertion
``G ↩→ G'``: per landmark ``r``, find the affected vertices (Algorithm 2)
and repair their labels (Algorithm 3), preserving both correctness
(Theorem 5.1) and minimality (Theorem 5.2).

Implementation notes (docs/DESIGN.md §4.3)
-------------------------------------
The paper interleaves find/repair per landmark and phrases its checks as
queries ``Q(r, w, Γ)`` against the *pre-insertion* distances.  To make the
old/new distinction airtight, the implementation stages the same algorithms
into three phases:

* **Phase A** snapshots ``d_G(r, a)``/``d_G(r, b)`` for every landmark on the
  pristine labelling (landmark queries are label-only — exact by Eq. (1) —
  so the already-mutated graph is never consulted).
* **Phase B** runs every FindAffected before any repair.  The jumped BFS
  (Lemma 4.4) starts at ``b`` with depth ``d_G(r,a) + 1`` and expands a
  neighbour ``w`` at candidate depth ``π+1`` iff ``Q(r, w, Γ) ≥ π+1``
  (Algorithm 2, line 7).  Because the affected region is closed under
  shortest-path predecessors beyond ``b``, the BFS discovers exactly
  ``Λ_r`` with exact *new* distances; the old distances of every scanned
  unaffected neighbour are recorded so that…
* **Phase C** repairs each landmark without issuing any further queries.
  It sweeps ``Λ_r`` level-by-level and evaluates the paper's *covered*
  predicate (Lemma 4.6) from shortest-path parents in ``G'``:
  a parent that is a landmark, a covered affected vertex, or an unaffected
  vertex without an ``r``-entry (minimality makes that absence a witness of
  a landmark on a shortest path) makes the vertex covered.  Covered
  landmark → highway update; covered non-landmark → entry removal;
  uncovered → entry add/modify.  Phase C touches only ``r``-entries, so
  repairs commute across landmarks.

Affected-vertex classification is robust to *any* old-distance estimate in
``[d_{G'}(r,w), d_G(r,w)]``; using the pristine labelling gives the exact
upper end of that interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance
from repro.exceptions import InvariantViolationError
from repro.graph.traversal import INF

__all__ = [
    "AffectedSearch",
    "UpdateStats",
    "find_affected",
    "repair_affected",
    "apply_edge_insertion",
]


@dataclass
class AffectedSearch:
    """Result of FindAffected for one landmark.

    ``new_dist`` maps every affected vertex to its exact post-insertion
    distance ``d_{G'}(r, v)``; ``border_old`` maps every scanned unaffected
    neighbour of the affected region to its (unchanged) distance.  Together
    they let RepairAffected run without any further labelling queries.
    """

    landmark: int
    new_dist: dict[int, int] = field(default_factory=dict)
    border_old: dict[int, float] = field(default_factory=dict)

    @property
    def affected(self) -> set[int]:
        """``Λ_r`` — the affected vertices w.r.t. this landmark."""
        return set(self.new_dist)

    @property
    def num_affected(self) -> int:
        """``|Λ_r|`` for this landmark."""
        return len(self.new_dist)


@dataclass
class UpdateStats:
    """Bookkeeping returned by :func:`apply_edge_insertion` (used by the
    Figure 1 experiment and the complexity-analysis sanity tests)."""

    edge: tuple[int, int]
    affected_per_landmark: dict[int, int]
    affected_union: int = 0
    entries_added: int = 0
    entries_modified: int = 0
    entries_removed: int = 0
    highway_updates: int = 0
    #: Per-phase wall-clock seconds (``{"find": s, "repair": s}``),
    #: populated by the vectorized engine so the serving layer and the
    #: bench reports can attribute batch cost to the find-affected sweep
    #: vs the repair sweep.  Empty on the reference dict kernels, and
    #: excluded from equality — timings are not part of the update's
    #: semantic result (the route-equivalence tests compare stats).
    phases: dict = field(default_factory=dict, compare=False)

    @property
    def total_affected(self) -> int:
        """Sum of ``|Λ_r|`` over landmarks — the quantity the complexity
        analysis ``O(|R| · m d l)`` charges (``affected_union`` holds the
        distinct count ``|Λ| = |∪_r Λ_r|`` that Figure 1 plots)."""
        return sum(self.affected_per_landmark.values())


def find_affected(
    graph,
    labelling: HighwayCoverLabelling,
    r: int,
    anchor: int,
    root: int,
    anchor_dist: float,
) -> AffectedSearch:
    """Algorithm 2 (FindAffected): jumped BFS from ``root`` w.r.t. ``r``.

    ``anchor``/``root`` are the inserted edge's endpoints oriented so that
    ``d_G(r, anchor) < d_G(r, root)`` (``anchor_dist`` is the old
    ``d_G(r, anchor)``); the BFS "jumps" to ``root`` at depth
    ``anchor_dist + 1`` (Lemma 4.4) and only expands neighbours whose old
    distance is at least the candidate depth (Lemma 4.3).

    ``graph`` must already contain the inserted edge (it is ``G'``);
    ``labelling`` must not have been repaired for any landmark yet.
    """
    adj = graph.adjacency()
    labels = labelling.labels
    highway = labelling.highway
    row = highway.row(r)
    landmark_set = highway.landmark_set

    seed_depth = anchor_dist + 1
    search = AffectedSearch(landmark=r)
    new_dist = search.new_dist
    border_old = search.border_old
    border_old[anchor] = anchor_dist
    new_dist[root] = seed_depth

    frontier = [root]
    depth = seed_depth
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for v in frontier:
            for w in adj[v]:
                if w in new_dist or w in border_old:
                    continue
                # Inline landmark_distance(labelling, r, w) — this is the
                # update hot path.
                if w == r:
                    old = 0.0
                elif w in landmark_set:
                    old = row.get(w, INF)
                else:
                    old = INF
                    for ri, delta in labels.label(w).items():
                        via = row.get(ri)
                        if via is not None and via + delta < old:
                            old = via + delta
                if old >= depth:
                    new_dist[w] = depth
                    next_frontier.append(w)
                else:
                    border_old[w] = old
        frontier = next_frontier
    return search


def repair_affected(
    graph,
    labelling: HighwayCoverLabelling,
    search: AffectedSearch,
    stats: UpdateStats | None = None,
) -> None:
    """Algorithm 3 (RepairAffected): repair ``Λ_r`` level-by-level.

    For each affected vertex, the *covered* predicate of Lemma 4.6 is
    evaluated over its shortest-path parents in ``G'`` (all of which are
    either affected with known new distance, or recorded border vertices
    with unchanged distance).  Covered landmarks update the highway; covered
    non-landmarks lose their ``r``-entry; uncovered vertices get their
    ``r``-entry set to the exact new distance — precisely the add/modify/
    remove actions of Algorithm 3, lines 8–25.
    """
    r = search.landmark
    adj = graph.adjacency()
    labels = labelling.labels
    highway = labelling.highway
    landmark_set = highway.landmark_set
    new_dist = search.new_dist
    border_old = search.border_old

    # Level-synchronous sweep: parents' covered flags are final before any
    # child consults them.
    by_level: dict[int, list[int]] = {}
    for v, d in new_dist.items():
        by_level.setdefault(d, []).append(v)

    covered: dict[int, bool] = {}
    for depth in sorted(by_level):
        parent_depth = depth - 1
        for v in by_level[depth]:
            if v in landmark_set:
                # An affected landmark is covered by itself (Lemma 4.6);
                # only the highway changes (Algorithm 3, lines 9-10).
                covered[v] = True
                if highway.distance(r, v) != depth:
                    highway.set_distance(r, v, depth)
                    if stats is not None:
                        stats.highway_updates += 1
                continue
            is_covered = False
            has_parent = False
            for u in adj[v]:
                du = new_dist.get(u)
                if du is not None:
                    if du != parent_depth:
                        continue
                    has_parent = True
                    if covered[u]:
                        is_covered = True
                        break
                    continue
                if u == r:
                    if parent_depth == 0:
                        has_parent = True
                    continue
                old = border_old.get(u)
                if old is None or old != parent_depth:
                    continue
                has_parent = True
                if u in landmark_set or not labels.has_entry(u, r):
                    # Landmark parent, or an unaffected parent whose missing
                    # r-entry witnesses a landmark on a shortest r-path.
                    is_covered = True
                    break
            if not has_parent:
                raise InvariantViolationError(
                    f"affected vertex {v} at new depth {depth} (landmark {r}) "
                    f"has no shortest-path parent — labelling out of sync "
                    f"with graph"
                )
            covered[v] = is_covered
            if is_covered:
                if labels.remove_entry(v, r) and stats is not None:
                    stats.entries_removed += 1
            else:
                if stats is not None:
                    if labels.has_entry(v, r):
                        stats.entries_modified += 1
                    else:
                        stats.entries_added += 1
                labels.set_entry(v, r, depth)


def apply_edge_insertion(
    graph,
    labelling: HighwayCoverLabelling,
    a: int,
    b: int,
) -> UpdateStats:
    """IncHL+ (Algorithm 1) for one edge insertion ``(a, b)``.

    ``graph`` must already contain the edge (i.e. it is ``G'``); the
    labelling is updated in place from a valid minimal labelling of ``G``
    to a valid minimal labelling of ``G'``.

    Returns per-landmark affected counts and entry-change statistics.
    """
    if not graph.has_edge(a, b):
        raise InvariantViolationError(
            f"apply_edge_insertion expects the edge ({a}, {b}) to be present "
            f"in the graph (G') before the labelling update"
        )

    stats = UpdateStats(edge=(a, b), affected_per_landmark={})

    # Phase A: snapshot old distances on the pristine labelling and orient
    # the edge per landmark.  Landmarks with d_G(r,a) == d_G(r,b) have
    # Λ_r = ∅ (Lemma 4.3) and are skipped.
    plans: list[tuple[int, int, int, float]] = []
    for r in labelling.landmarks:
        da = landmark_distance(labelling, r, a)
        db = landmark_distance(labelling, r, b)
        if da == db:
            stats.affected_per_landmark[r] = 0
            continue
        if da < db:
            plans.append((r, a, b, da))
        else:
            plans.append((r, b, a, db))

    # Phase B: find all affected sets before any repair mutates the labels.
    searches = [
        find_affected(graph, labelling, r, anchor, root, anchor_dist)
        for r, anchor, root, anchor_dist in plans
    ]

    # Phase C: repair; touches only r-entries per landmark, so order is
    # irrelevant.
    union: set[int] = set()
    for search in searches:
        stats.affected_per_landmark[search.landmark] = search.num_affected
        union.update(search.new_dist)
        repair_affected(graph, labelling, search, stats)
    stats.affected_union = len(union)
    return stats
