"""DecHL — fine-grained decremental maintenance of a highway cover labelling.

The paper defers decremental updates to future work (Section 7); the
repository's first extension, :mod:`repro.core.decremental`, answers with a
sound but coarse per-landmark rebuild.  This module is the fine-grained
counterpart: it confines all work to the *affected region* of a deletion,
in the spirit of IncHL+'s two-phase find/repair, and the test-suite
verifies it produces the exact minimal labelling after every deletion.

Why deletions are genuinely harder (and what this module does about it)
------------------------------------------------------------------------
For an inserted edge, distances only decrease and path sets only grow, so
a label entry can only need *removal or a smaller value*.  For a deleted
edge ``(a, b)``:

1. distances of affected vertices can **increase, stay equal, or become
   infinite** (disconnection);
2. path sets *shrink*, so a vertex that was covered by another landmark
   can become uncovered — its entry must be **added**, which is why repair
   cannot be confined to vertices whose distance changed.

Per relevant landmark ``r`` (``|d_G(r,a) − d_G(r,b)| = 1`` — the only
landmarks whose shortest-path DAG can contain the edge), three phases:

* **Find** — the affected set ``Λ_r`` = vertices with some old shortest
  path through ``(a, b)`` = descendants of ``b`` in the old shortest-path
  DAG.  A level sweep from ``b`` over old distances (queried from the
  pristine labelling, exact by Eq. 1) discovers exactly the closure, and
  records the old distance of every scanned unaffected border vertex.
* **Re-distance** — new distances over the affected region only: a
  bucket-queue relaxation seeded by ``old(u) + 1`` over unaffected border
  neighbours ``u`` (their distances are provably unchanged).  Vertices
  never settled are disconnected from ``r``.
* **Repair** — re-derive the cover flag of every affected vertex in
  increasing new-distance order with the same parent predicate as
  IncHL+'s RepairAffected (landmark parent, covered affected parent, or
  unaffected non-landmark parent whose absent ``r``-entry witnesses a
  landmark on a shortest path), then add/modify/remove entries and patch
  the highway — including dropping highway pairs that became unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance
from repro.exceptions import InvariantViolationError, LabellingError
from repro.graph.traversal import INF

__all__ = [
    "DeletionSearch",
    "DeletionStats",
    "find_affected_deletion",
    "repair_affected_deletion",
    "apply_edge_deletion_partial",
    "apply_vertex_deletion",
]


@dataclass
class DeletionSearch:
    """Result of the find + re-distance phases for one landmark.

    ``old_dist`` holds pre-deletion distances of affected vertices;
    ``new_dist`` their post-deletion distances (``inf`` when the deletion
    disconnected them from the landmark); ``border_old`` the unchanged
    distances of every scanned unaffected neighbour of the region.
    """

    landmark: int
    old_dist: dict[int, int] = field(default_factory=dict)
    new_dist: dict[int, float] = field(default_factory=dict)
    border_old: dict[int, float] = field(default_factory=dict)

    @property
    def affected(self) -> set[int]:
        """``Λ_r`` — the affected vertices w.r.t. this landmark."""
        return set(self.old_dist)

    @property
    def num_affected(self) -> int:
        """``|Λ_r|`` for this landmark."""
        return len(self.old_dist)

    @property
    def disconnected(self) -> set[int]:
        """Affected vertices the deletion cut off from the landmark."""
        return {v for v, d in self.new_dist.items() if d == INF}


@dataclass
class DeletionStats:
    """Bookkeeping returned by :func:`apply_edge_deletion_partial`."""

    edge: tuple[int, int]
    affected_per_landmark: dict[int, int]
    affected_union: int = 0
    entries_added: int = 0
    entries_modified: int = 0
    entries_removed: int = 0
    highway_updates: int = 0

    @property
    def total_affected(self) -> int:
        """Sum of ``|Λ_r|`` over landmarks."""
        return sum(self.affected_per_landmark.values())


def find_affected_deletion(
    graph,
    labelling: HighwayCoverLabelling,
    r: int,
    anchor: int,
    root: int,
    root_old: int,
) -> DeletionSearch:
    """Find ``Λ_r`` for a deleted edge oriented ``anchor → root``.

    ``anchor``/``root`` are the deleted edge's endpoints with
    ``d_G(r, root) = d_G(r, anchor) + 1 = root_old``; ``graph`` must
    already be ``G'`` (edge removed) while ``labelling`` is still the
    pristine labelling of ``G`` — old distances are queried from it.

    Affected vertices are exactly the descendants of ``root`` in the old
    shortest-path DAG of ``r`` (every old shortest path through the edge
    continues through DAG edges), discovered level-by-level; each level
    sweep also computes the new distances' border seeds.
    """
    adj = graph.adjacency()
    labels = labelling.labels
    highway = labelling.highway
    row = highway.row(r)
    landmark_set = highway.landmark_set

    search = DeletionSearch(landmark=r)
    old_dist = search.old_dist
    border_old = search.border_old
    old_dist[root] = root_old
    border_old[anchor] = root_old - 1

    def old_distance(w: int) -> float:
        # Inline landmark_distance — pristine labelling, exact by Eq. (1).
        if w == r:
            return 0.0
        if w in landmark_set:
            return row.get(w, INF)
        best = INF
        for ri, delta in labels.label(w).items():
            via = row.get(ri)
            if via is not None and via + delta < best:
                best = via + delta
        return best

    frontier = [root]
    depth = root_old
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for v in frontier:
            for w in adj[v]:
                if w in old_dist:
                    continue
                old = border_old.get(w)
                if old is None:
                    old = old_distance(w)
                if old == depth:
                    # DAG edge v → w: w inherits a shortest path through
                    # the deleted edge, so it is affected (Lemma 4.3
                    # transposed to deletions).
                    old_dist[w] = depth
                    border_old.pop(w, None)
                    next_frontier.append(w)
                else:
                    border_old.setdefault(w, old)
        frontier = next_frontier

    _compute_new_distances(adj, search)
    return search


def _compute_new_distances(adj, search: DeletionSearch) -> None:
    """Bucket-queue relaxation of new distances over the affected region.

    Seeds: ``old(u) + 1`` for each unaffected border neighbour ``u`` of an
    affected vertex (border distances are unchanged by the deletion).
    Unit edge weights make the bucket sweep monotone; affected vertices
    never settled are disconnected and keep ``inf``.
    """
    old_dist = search.old_dist
    border_old = search.border_old
    new_dist = search.new_dist

    buckets: dict[int, list[int]] = {}
    for v in old_dist:
        best = INF
        for u in adj[v]:
            if u in old_dist:
                continue
            old = border_old.get(u, INF)
            if old + 1 < best:
                best = old + 1
        new_dist[v] = INF
        if best < INF:
            buckets.setdefault(int(best), []).append(v)

    while buckets:
        depth = min(buckets)
        frontier = buckets.pop(depth)
        settled: list[int] = []
        for v in frontier:
            if new_dist[v] <= depth:
                continue  # already settled through a shorter detour
            new_dist[v] = depth
            settled.append(v)
        next_depth = depth + 1
        for v in settled:
            for w in adj[v]:
                if w in old_dist and new_dist[w] > next_depth:
                    buckets.setdefault(next_depth, []).append(w)


def repair_affected_deletion(
    graph,
    labelling: HighwayCoverLabelling,
    search: DeletionSearch,
    stats: DeletionStats | None = None,
) -> None:
    """Repair labels and highway for one landmark after a deletion.

    Sweeps the affected region in increasing *new* distance, re-deriving
    the cover flag of every vertex from its shortest-path parents in
    ``G'`` — the same predicate as IncHL+'s RepairAffected, but evaluated
    from scratch because deletions can flip it in either direction.
    """
    r = search.landmark
    adj = graph.adjacency()
    labels = labelling.labels
    highway = labelling.highway
    landmark_set = highway.landmark_set
    new_dist = search.new_dist
    border_old = search.border_old

    # Disconnected vertices lose their entry (and highway pair) outright.
    by_level: dict[int, list[int]] = {}
    for v, d in new_dist.items():
        if d == INF:
            if v in landmark_set:
                if highway.remove_distance(r, v) and stats is not None:
                    stats.highway_updates += 1
            elif labels.remove_entry(v, r) and stats is not None:
                stats.entries_removed += 1
        else:
            by_level.setdefault(int(d), []).append(v)

    covered: dict[int, bool] = {}
    for depth in sorted(by_level):
        parent_depth = depth - 1
        for v in by_level[depth]:
            if v in landmark_set:
                covered[v] = True
                if highway.distance(r, v) != depth:
                    highway.set_distance(r, v, depth)
                    if stats is not None:
                        stats.highway_updates += 1
                continue
            is_covered = False
            has_parent = False
            for u in adj[v]:
                du = new_dist.get(u)
                if du is not None:
                    if du != parent_depth:
                        continue
                    has_parent = True
                    if covered[u]:
                        is_covered = True
                        break
                    continue
                if u == r:
                    if parent_depth == 0:
                        has_parent = True
                    continue
                old = border_old.get(u)
                if old is None or old != parent_depth:
                    continue
                has_parent = True
                if u in landmark_set or not labels.has_entry(u, r):
                    is_covered = True
                    break
            if not has_parent:
                raise InvariantViolationError(
                    f"affected vertex {v} at new depth {depth} (landmark {r}) "
                    f"has no shortest-path parent after deletion — labelling "
                    f"out of sync with graph"
                )
            covered[v] = is_covered
            if is_covered:
                if labels.remove_entry(v, r) and stats is not None:
                    stats.entries_removed += 1
            else:
                if stats is not None:
                    if labels.has_entry(v, r):
                        stats.entries_modified += 1
                    else:
                        stats.entries_added += 1
                labels.set_entry(v, r, depth)


def apply_edge_deletion_partial(
    graph,
    labelling: HighwayCoverLabelling,
    a: int,
    b: int,
) -> DeletionStats:
    """DecHL for one edge deletion ``(a, b)``.

    Removes the edge from ``graph`` and repairs the labelling in place
    from a valid minimal labelling of ``G`` to a valid minimal labelling
    of ``G'``.  Work is confined to landmarks whose BFS level of ``a`` and
    ``b`` differ by one, and within those to the affected region.

    Returns per-landmark affected counts and entry-change statistics.
    """
    if not graph.has_edge(a, b):
        raise InvariantViolationError(
            f"apply_edge_deletion_partial expects edge ({a}, {b}) to be present"
        )
    stats = DeletionStats(edge=(a, b), affected_per_landmark={})

    # Phase A on the pristine labelling: orientation per landmark.  Only
    # |d(r,a) - d(r,b)| == 1 admits the edge on a shortest path.
    plans: list[tuple[int, int, int, int]] = []
    for r in labelling.landmarks:
        da = landmark_distance(labelling, r, a)
        db = landmark_distance(labelling, r, b)
        if db == INF:
            # da == db == inf: the whole component is landmark-free, so no
            # shortest r-path exists at all (inf + 1 == inf would otherwise
            # fool the level test below).  da finite with db infinite is
            # impossible while the edge exists.
            stats.affected_per_landmark[r] = 0
        elif da + 1 == db:
            plans.append((r, a, b, int(db)))
        elif db + 1 == da:
            plans.append((r, b, a, int(da)))
        else:
            stats.affected_per_landmark[r] = 0

    graph.remove_edge(a, b)

    # Phase B: all finds before any repair (labels stay pristine for the
    # old-distance queries; repairs touch only their own landmark's
    # entries, but find may consult any entry, so ordering matters).
    searches = [
        find_affected_deletion(graph, labelling, r, anchor, root, root_old)
        for r, anchor, root, root_old in plans
    ]

    union: set[int] = set()
    for search in searches:
        stats.affected_per_landmark[search.landmark] = search.num_affected
        union.update(search.old_dist)
        repair_affected_deletion(graph, labelling, search, stats)
    stats.affected_union = len(union)
    return stats


def apply_vertex_deletion(
    graph,
    labelling: HighwayCoverLabelling,
    v: int,
) -> list[DeletionStats]:
    """Vertex deletion: remove all incident edges, then the vertex.

    The mirror of the paper's vertex insertion (Section 3): decomposed
    into edge deletions, each repaired by :func:`apply_edge_deletion_partial`.
    Landmarks cannot be deleted this way — demote them first with
    :func:`repro.landmarks.maintenance.remove_landmark`.
    """
    if v in labelling.landmark_set:
        raise LabellingError(
            f"vertex {v} is a landmark; demote it with "
            f"repro.landmarks.maintenance.remove_landmark before deletion"
        )
    stats = [
        apply_edge_deletion_partial(graph, labelling, v, w)
        for w in list(graph.neighbors(v))
    ]
    graph.remove_vertex(v)
    return stats
