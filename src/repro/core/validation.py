"""Labelling invariant checkers — executable versions of the paper's theory.

Used heavily by the test suite; each checker raises
:class:`~repro.exceptions.InvariantViolationError` with a precise message on
the first violation found.

* :func:`check_cover_property` — Definition 3.2 / Eq. (1) plus highway
  exactness, against ground-truth BFS.
* :func:`check_minimality` — the entry rule behind Theorem 5.2: entry
  ``(r, ·) ∈ L(v)`` iff no shortest ``r``–``v`` path contains another
  landmark (computed over the exact shortest-path DAG).
* :func:`check_query_exactness` — ``Q(u, v, Γ) = d_G(u, v)`` on sampled or
  exhaustive pairs.
* :func:`brute_force_affected` — Lemma 4.3's definition of ``Λ_r``,
  evaluated directly with BFS on ``G'`` (ground truth for FindAffected).
"""

from __future__ import annotations

import random

from repro.core.construction import build_hcl
from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance, query_distance
from repro.exceptions import InvariantViolationError
from repro.graph.traversal import INF, bfs_distances, bfs_with_parents
from repro.utils.rng import ensure_rng

__all__ = [
    "check_cover_property",
    "check_minimality",
    "check_query_exactness",
    "check_matches_rebuild",
    "brute_force_affected",
]


def check_cover_property(graph, labelling: HighwayCoverLabelling) -> None:
    """Verify Eq. (1) and highway exactness for every landmark.

    For each landmark ``r`` and vertex ``v``:
    ``min{δ_L(r_i, v) + δ_H(r, r_i)} == d_G(r, v)`` (∞ if unreachable),
    and ``δ_H(r, r') == d_G(r, r')`` for every other landmark ``r'``.
    """
    landmark_set = labelling.landmark_set
    for r in labelling.landmarks:
        truth = bfs_distances(graph, r)
        for v in graph.vertices():
            expected = truth.get(v, INF)
            if v in landmark_set:
                actual = 0 if v == r else labelling.highway.distance(r, v)
                kind = "highway"
            else:
                actual = landmark_distance(labelling, r, v)
                kind = "cover"
            if actual != expected:
                raise InvariantViolationError(
                    f"{kind} violation: decoded d({r}, {v}) = {actual}, "
                    f"BFS says {expected}"
                )


def _covered_flags(graph, r: int, landmark_set: frozenset[int]) -> tuple[dict, dict]:
    """``(dist, covered)`` where ``covered[v]`` = some shortest ``r→v`` path
    contains a landmark other than ``r`` (possibly ``v`` itself)."""
    dist, parents = bfs_with_parents(graph, r)
    covered: dict[int, bool] = {}
    for v in sorted(dist, key=dist.__getitem__):
        if v == r:
            covered[v] = False
            continue
        flag = False
        for p in parents[v]:
            if (p != r and p in landmark_set) or covered[p]:
                flag = True
                break
        covered[v] = flag or (v in landmark_set)
    return dist, covered


def check_minimality(graph, labelling: HighwayCoverLabelling) -> None:
    """Verify the minimal-entry rule for every landmark/vertex pair.

    Entry ``(r, d)`` must be present iff ``v ∉ R``, ``v`` reachable, and no
    shortest ``r``–``v`` path contains another landmark; when present, the
    stored distance must be exact.
    """
    landmark_set = labelling.landmark_set
    labels = labelling.labels
    for r in labelling.landmarks:
        dist, covered = _covered_flags(graph, r, landmark_set)
        for v in graph.vertices():
            stored = labels.entry(v, r)
            if v in landmark_set:
                if stored is not None:
                    raise InvariantViolationError(
                        f"landmark {v} must not carry label entries, "
                        f"found ({r}, {stored})"
                    )
                continue
            if v not in dist:
                expected = None
            elif covered[v]:
                expected = None
            else:
                expected = dist[v]
            if stored != expected:
                raise InvariantViolationError(
                    f"minimality violation at vertex {v}, landmark {r}: "
                    f"stored={stored}, expected={expected} "
                    f"(reachable={v in dist}, covered={covered.get(v)})"
                )


def check_query_exactness(
    graph,
    labelling: HighwayCoverLabelling,
    num_pairs: int | None = None,
    rng: int | random.Random | None = None,
) -> None:
    """Verify ``Q(u, v, Γ) == d_G(u, v)`` on all pairs (``num_pairs=None``)
    or on a uniform sample of pairs."""
    vertices = list(graph.vertices())
    rng = ensure_rng(rng)
    if num_pairs is None:
        pairs = [(u, v) for i, u in enumerate(vertices) for v in vertices[i:]]
    else:
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(num_pairs)
        ]
    truth_cache: dict[int, dict[int, int]] = {}
    for u, v in pairs:
        if u not in truth_cache:
            truth_cache[u] = bfs_distances(graph, u)
        expected = truth_cache[u].get(v, INF)
        actual = query_distance(graph, labelling, u, v)
        if actual != expected:
            raise InvariantViolationError(
                f"query violation: Q({u}, {v}) = {actual}, BFS says {expected}"
            )


def check_matches_rebuild(graph, labelling: HighwayCoverLabelling) -> None:
    """Verify the maintained labelling equals a from-scratch rebuild.

    This is the strongest check: by order-independence the minimal
    labelling of a graph is unique for a landmark set, so IncHL+ must land
    on *exactly* the labelling ``build_hcl`` produces — entry for entry and
    highway cell for highway cell.
    """
    rebuilt = build_hcl(graph, labelling.landmarks)
    if labelling.highway != rebuilt.highway:
        ours = labelling.highway.as_dict()
        fresh = rebuilt.highway.as_dict()
        diffs = [
            (r1, r2, row.get(r2), fresh[r1].get(r2))
            for r1, row in ours.items()
            for r2 in set(row) | set(fresh[r1])
            if row.get(r2) != fresh[r1].get(r2)
        ]
        raise InvariantViolationError(f"highway differs from rebuild: {diffs[:5]}")
    if labelling.labels != rebuilt.labels:
        ours_l = labelling.labels.as_dict()
        fresh_l = rebuilt.labels.as_dict()
        for v in set(ours_l) | set(fresh_l):
            if ours_l.get(v, {}) != fresh_l.get(v, {}):
                raise InvariantViolationError(
                    f"labels differ from rebuild at vertex {v}: "
                    f"maintained={ours_l.get(v, {})}, rebuilt={fresh_l.get(v, {})}"
                )


def brute_force_affected(new_graph, r: int, a: int, b: int) -> set[int]:
    """``Λ_r`` per Lemma 4.3, computed directly on ``G'`` with BFS.

    ``v`` is affected iff some shortest ``r``–``v`` path in ``G'`` passes
    through the inserted edge ``(a, b)`` in either direction, i.e.
    ``d'(r,a) + 1 + d'(b,v) == d'(r,v)`` or
    ``d'(r,b) + 1 + d'(a,v) == d'(r,v)``.
    """
    from_r = bfs_distances(new_graph, r)
    from_a = bfs_distances(new_graph, a)
    from_b = bfs_distances(new_graph, b)
    affected = set()
    ra = from_r.get(a, INF)
    rb = from_r.get(b, INF)
    for v in new_graph.vertices():
        rv = from_r.get(v, INF)
        if rv == INF:
            continue
        via_ab = ra + 1 + from_b.get(v, INF)
        via_ba = rb + 1 + from_a.get(v, INF)
        if via_ab == rv or via_ba == rv:
            affected.add(v)
    return affected
