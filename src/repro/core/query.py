"""Exact distance queries over a highway cover labelling (Section 3).

``Q(u, v, Γ)`` combines two ingredients:

1. the upper bound ``d⊤`` of Eq. (2): join ``L(u)`` and ``L(v)`` through the
   highway;
2. a distance-bounded bidirectional BFS over the sparsified graph
   ``G[V \\ R]`` — every shortest path either meets a landmark (case covered
   exactly by ``d⊤``, via the cover property) or avoids all landmarks (found
   by the sparsified search).

Queries where an endpoint *is* a landmark are answered from the labelling
alone: Definition 3.2 makes ``min{δ_L(r_i, v) + δ_H(r, r_i)}`` exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labelling import HighwayCoverLabelling
from repro.exceptions import VertexNotFoundError
from repro.graph.traversal import INF, bidirectional_bfs

__all__ = [
    "landmark_distance",
    "upper_bound",
    "query_distance",
    "query_distances_many",
    "QueryProbe",
    "query_distance_probed",
]


def landmark_distance(labelling: HighwayCoverLabelling, r: int, v: int) -> float:
    """Exact ``d_G(r, v)`` for landmark ``r`` — Eq. (1), no graph search.

    This is the ``Q(r, ·, Γ)`` used throughout Algorithms 2–3.
    """
    if v == r:
        return 0
    highway = labelling.highway
    if v in highway.landmark_set:
        return highway.distance(r, v)
    row = highway.row(r)
    best = INF
    for ri, delta in labelling.labels.label(v).items():
        via = row.get(ri)
        if via is not None:
            candidate = via + delta
            if candidate < best:
                best = candidate
    return best


def upper_bound(labelling: HighwayCoverLabelling, u: int, v: int) -> float:
    """``d⊤_uv`` of Eq. (2): best landmark-passing path length.

    Exact for every vertex pair whose shortest path meets a landmark;
    an upper bound otherwise.  ``u`` and ``v`` must be non-landmarks
    (landmark endpoints short-circuit in :func:`query_distance`).
    """
    labels = labelling.labels
    highway = labelling.highway
    label_u = labels.label(u)
    label_v = labels.label(v)
    if not label_u or not label_v:
        return INF
    best = INF
    for ri, du in label_u.items():
        row = highway.row(ri)
        for rj, dv in label_v.items():
            via = row.get(rj)
            if via is not None:
                candidate = du + via + dv
                if candidate < best:
                    best = candidate
    return best


def query_distance(graph, labelling: HighwayCoverLabelling, u: int, v: int) -> float:
    """``Q(u, v, Γ)`` — the exact distance ``d_G(u, v)`` (inf if disconnected).

    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.construction import build_hcl
    >>> g = grid_graph(3, 3)
    >>> gamma = build_hcl(g, [4])
    >>> query_distance(g, gamma, 0, 8)
    4
    """
    if not graph.has_vertex(u):
        raise VertexNotFoundError(u)
    if not graph.has_vertex(v):
        raise VertexNotFoundError(v)
    if u == v:
        return 0
    landmark_set = labelling.landmark_set
    if u in landmark_set:
        return landmark_distance(labelling, u, v)
    if v in landmark_set:
        return landmark_distance(labelling, v, u)
    bound = upper_bound(labelling, u, v)
    sparsified = bidirectional_bfs(graph, u, v, bound=bound, skip=landmark_set)
    return sparsified if sparsified <= bound else bound


def query_distances_many(
    graph, labelling: HighwayCoverLabelling, pairs
) -> list[float]:
    """``Q(u, v, Γ)`` for a whole batch of pairs, answers in input order.

    Identical results to mapping :func:`query_distance` over ``pairs``, but
    the per-call lookups (landmark set, label store, adjacency check) are
    hoisted out of the loop — this is the amortized entry point behind
    :meth:`repro.core.dynamic.DynamicHCL.query_many` and the serving hot
    path.

    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.construction import build_hcl
    >>> g = grid_graph(3, 3)
    >>> gamma = build_hcl(g, [4])
    >>> query_distances_many(g, gamma, [(0, 8), (0, 0), (3, 5)])
    [4, 0, 2]
    """
    landmark_set = labelling.landmark_set
    labels = labelling.labels
    has_vertex = graph.has_vertex
    out: list[float] = []
    append = out.append
    for u, v in pairs:
        if not has_vertex(u):
            raise VertexNotFoundError(u)
        if not has_vertex(v):
            raise VertexNotFoundError(v)
        if u == v:
            append(0)
            continue
        if u in landmark_set:
            append(landmark_distance(labelling, u, v))
            continue
        if v in landmark_set:
            append(landmark_distance(labelling, v, u))
            continue
        if not labels.label(u) or not labels.label(v):
            bound = INF
        else:
            bound = upper_bound(labelling, u, v)
        sparsified = bidirectional_bfs(graph, u, v, bound=bound, skip=landmark_set)
        append(sparsified if sparsified <= bound else bound)
    return out


@dataclass(frozen=True)
class QueryProbe:
    """Cost decomposition of one ``Q(u, v, Γ)`` evaluation.

    The paper attributes query time to labelling size (Section 6.1.3);
    this probe splits one query into its two ingredients so that claim
    can be measured: the label-join work behind ``d⊤`` and whether the
    bounded sparsified search improved on the bound.
    """

    distance: float
    bound: float
    label_join_ops: int
    landmark_endpoint: bool
    search_won: bool

    @property
    def bound_was_exact(self) -> bool:
        """Whether ``d⊤`` alone already equalled the answer — i.e. some
        shortest path met a landmark (the highway-cover case)."""
        return self.distance == self.bound


def query_distance_probed(
    graph, labelling: HighwayCoverLabelling, u: int, v: int
) -> QueryProbe:
    """``Q(u, v, Γ)`` with a cost decomposition (same answer as
    :func:`query_distance`; used by the query-cost analysis)."""
    if not graph.has_vertex(u):
        raise VertexNotFoundError(u)
    if not graph.has_vertex(v):
        raise VertexNotFoundError(v)
    landmark_set = labelling.landmark_set
    if u == v:
        return QueryProbe(0, 0, 0, False, False)
    if u in landmark_set or v in landmark_set:
        if u in landmark_set:
            distance = landmark_distance(labelling, u, v)
            join_ops = labelling.labels.label_size(v) or 1
        else:
            distance = landmark_distance(labelling, v, u)
            join_ops = labelling.labels.label_size(u) or 1
        return QueryProbe(distance, distance, join_ops, True, False)
    join_ops = (
        labelling.labels.label_size(u) * labelling.labels.label_size(v)
    )
    bound = upper_bound(labelling, u, v)
    sparsified = bidirectional_bfs(graph, u, v, bound=bound, skip=landmark_set)
    distance = sparsified if sparsified <= bound else bound
    return QueryProbe(
        distance=distance,
        bound=bound,
        label_join_ops=join_ops,
        landmark_endpoint=False,
        search_won=sparsified < bound,
    )
