"""Vectorized construction of a minimal highway cover labelling.

Semantically identical to :func:`repro.core.construction.build_hcl` — the
test-suite asserts exact equality of the produced labelling — but the
per-landmark BFS with cover flags runs on a
:class:`~repro.graph.csr.CSRGraph` snapshot with numpy level sweeps.  This
is the construction counterpart of the CSR fast path: the paper's C++
implementation builds billion-edge labellings offline, and this module is
what lets the Python reproduction build its scaled stand-ins (tens of
thousands of vertices, |R| up to 60) in seconds rather than minutes.

The numpy kernel lives in :func:`repro.parallel.sweeps.csr_landmark_sweep`
(cover flags propagate as a scatter over the frontier adjacency); because
the CSR snapshot is immutable, the per-landmark sweeps are embarrassingly
parallel, and ``workers=`` fans them out across a process pool through the
:class:`~repro.parallel.engine.LandmarkEngine` — numpy releases the GIL
but pure-Python level bookkeeping does not, so processes (not threads) are
what buys wall-clock here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.csr import CSRGraph
from repro.parallel.engine import LandmarkEngine
from repro.parallel.sweeps import csr_construction_task, merge_sweep

__all__ = ["build_hcl_fast"]


def build_hcl_fast(
    graph,
    landmarks: Sequence[int] | Iterable[int],
    csr: CSRGraph | None = None,
    workers: int | None = None,
) -> HighwayCoverLabelling:
    """Build the minimal highway cover labelling on the CSR fast path.

    Produces a labelling equal (entry-for-entry and cell-for-cell) to
    :func:`repro.core.construction.build_hcl` on the same inputs.  Pass a
    pre-built ``csr`` snapshot to amortize snapshotting across calls; it
    must describe the same graph.  ``workers`` fans the per-landmark numpy
    sweeps out across a process pool (``None``/``1`` serial, ``0`` all
    CPUs) without changing the result.

    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.construction import build_hcl
    >>> g = grid_graph(4, 4)
    >>> build_hcl_fast(g, [0, 15]) == build_hcl(g, [0, 15])
    True
    >>> build_hcl_fast(g, [0, 15], workers=2) == build_hcl(g, [0, 15])
    True
    """
    landmark_list = list(landmarks)
    if not landmark_list:
        raise GraphError("at least one landmark is required")
    for r in landmark_list:
        if not graph.has_vertex(r):
            raise VertexNotFoundError(r)

    if csr is None:
        csr = CSRGraph.from_graph(graph)
    highway = Highway(landmark_list)
    labels = LabelStore()

    is_landmark = np.zeros(csr.num_vertices, dtype=bool)
    for r in landmark_list:
        is_landmark[csr.index(r)] = True

    engine = LandmarkEngine(workers)
    engine.map_unordered_merge(
        csr_construction_task,
        (csr.indptr, csr.indices, csr.ids, is_landmark),
        [(csr.index(r), r) for r in landmark_list],
        lambda sweep: merge_sweep(highway, labels, sweep),
    )
    return HighwayCoverLabelling(highway, labels)
