"""Vectorized construction of a minimal highway cover labelling.

Semantically identical to :func:`repro.core.construction.build_hcl` — the
test-suite asserts exact equality of the produced labelling — but the
per-landmark BFS with cover flags runs on a
:class:`~repro.graph.csr.CSRGraph` snapshot with numpy level sweeps.  This
is the construction counterpart of the CSR fast path: the paper's C++
implementation builds billion-edge labellings offline, and this module is
what lets the Python reproduction build its scaled stand-ins (tens of
thousands of vertices, |R| up to 60) in seconds rather than minutes.

The cover flag of the reference construction ("some shortest path from the
root contains another landmark") propagates as a scatter-max: at every BFS
level, each newly discovered vertex takes the OR of its shortest-path
parents' flags, which is exactly ``np.maximum.at`` over the flattened
frontier adjacency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.csr import CSRGraph, _gather_neighbors

__all__ = ["build_hcl_fast"]


def build_hcl_fast(
    graph,
    landmarks: Sequence[int] | Iterable[int],
    csr: CSRGraph | None = None,
) -> HighwayCoverLabelling:
    """Build the minimal highway cover labelling on the CSR fast path.

    Produces a labelling equal (entry-for-entry and cell-for-cell) to
    :func:`repro.core.construction.build_hcl` on the same inputs.  Pass a
    pre-built ``csr`` snapshot to amortize snapshotting across calls; it
    must describe the same graph.

    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.construction import build_hcl
    >>> g = grid_graph(4, 4)
    >>> build_hcl_fast(g, [0, 15]) == build_hcl(g, [0, 15])
    True
    """
    landmark_list = list(landmarks)
    if not landmark_list:
        raise GraphError("at least one landmark is required")
    for r in landmark_list:
        if not graph.has_vertex(r):
            raise VertexNotFoundError(r)

    if csr is None:
        csr = CSRGraph.from_graph(graph)
    highway = Highway(landmark_list)
    labels = LabelStore()

    num_vertices = csr.num_vertices
    ids = csr.ids
    is_landmark = np.zeros(num_vertices, dtype=bool)
    for r in landmark_list:
        is_landmark[csr.index(r)] = True

    for r in landmark_list:
        _labelling_bfs_csr(csr, csr.index(r), r, is_landmark, ids, highway, labels)
    return HighwayCoverLabelling(highway, labels)


def _labelling_bfs_csr(
    csr: CSRGraph,
    root_index: int,
    root_id: int,
    is_landmark: np.ndarray,
    ids: np.ndarray,
    highway: Highway,
    labels: LabelStore,
) -> None:
    """One landmark BFS with vectorized cover-flag propagation.

    ``flag[v] = 1`` means "some shortest root→v path contains a landmark
    other than the root (possibly v itself)".  Per level: gather all
    frontier→unseen edges, scatter-max parent flags onto the new level,
    then force flags of landmark vertices (recording their highway
    distance) and emit label entries for flag-free non-landmarks.
    """
    indptr = csr.indptr
    indices = csr.indices
    dist = np.full(csr.num_vertices, -1, dtype=np.int32)
    flag = np.zeros(csr.num_vertices, dtype=np.uint8)
    member = np.zeros(csr.num_vertices, dtype=bool)
    dist[root_index] = 0
    frontier = np.array([root_index], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        sources, neighbours = _gather_neighbors(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        unseen = dist[neighbours] < 0
        sources = sources[unseen]
        neighbours = neighbours[unseen]
        if neighbours.size == 0:
            break
        # Mask-scatter dedup (cheaper than np.unique on heavy levels);
        # nonzero returns the level sorted, matching the reference order.
        member[neighbours] = True
        new_level = np.nonzero(member)[0]
        member[new_level] = False
        dist[new_level] = depth
        # OR of parent flags over every shortest-path (frontier → new
        # level) edge: scatter 1 to every neighbour reached from a flagged
        # parent (duplicate targets write the same value, so plain fancy
        # assignment is the OR).
        flag[neighbours[flag[sources] != 0]] = 1

        level_landmarks = new_level[is_landmark[new_level]]
        for v in ids[level_landmarks].tolist():
            highway.set_distance(root_id, v, depth)
        flag[level_landmarks] = 1

        uncovered = new_level[(flag[new_level] == 0) & ~is_landmark[new_level]]
        labels.bulk_set_new(root_id, ids[uncovered].tolist(), depth)
        frontier = new_level
