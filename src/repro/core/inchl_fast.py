"""IncHL+ fast path: vectorized find/repair over a dynamic CSR overlay.

The pure-Python implementation of Section 4 (:mod:`repro.core.inchl`,
:mod:`repro.core.batch`) recomputes every "old distance" it needs through
label queries — ``O(l)`` dict work per scanned vertex — and walks
adjacency one Python iteration per edge.  This module is the update-path
counterpart of :mod:`repro.core.construction_fast`: the same three-phase
algorithm, but

* the graph is read through a :class:`~repro.graph.dyncsr.DynCSR` overlay
  that stays valid across insertions (no per-update re-snapshot);
* old distances come from **dense per-landmark distance rows** maintained
  incrementally — by Eq. (1) a landmark query against a valid minimal
  labelling *is* the exact distance ``d_G(r, v)``, so seeding the rows
  with one CSR BFS per landmark and overwriting exactly the affected
  entries after each repair keeps them equal to what the dict kernels
  would derive from labels, at ``O(1)`` per lookup;
* find and repair run as the numpy level kernels
  :func:`~repro.parallel.sweeps.csr_find_affected` /
  :func:`~repro.parallel.sweeps.csr_repair_affected`, with per-landmark
  batch finds fanned out through the
  :class:`~repro.parallel.engine.LandmarkEngine`.

The produced labelling is byte-identical to the sequential Phase A/B/C
implementation — same affected sets, same new distances, same covered
verdicts, same entry/highway mutations (``docs/DESIGN.md`` §8; asserted
exhaustively by ``tests/proptest``).

The engine is *fully dynamic*: :meth:`FastUpdateEngine.remove_edge` /
:meth:`FastUpdateEngine.apply_mixed` absorb deletions and mixed
insert/delete batches through the BatchHL-style unified kernel
(:func:`~repro.parallel.sweeps.csr_find_affected_mixed`,
``docs/DESIGN.md`` §10), keeping the dense rows exact across every event
kind; since the minimal labelling is a canonical function of the graph
and landmark set, the result equals the sequential
insert-then-:mod:`~repro.core.dechl` reference byte for byte.  Only
landmark maintenance and vertex removal still invalidate the engine; the
owning :class:`~repro.core.dynamic.DynamicHCL` drops it and rebuilds on
the next fast update.
"""

from __future__ import annotations

from collections.abc import Iterable
from time import perf_counter

import numpy as np

from repro.core.batch import BatchUpdateStats, MixedUpdateStats
from repro.core.inchl import UpdateStats
from repro.exceptions import InvariantViolationError
from repro.graph.dyncsr import UNREACH, DynCSR
from repro.parallel.engine import LandmarkEngine
from repro.parallel.sweeps import (
    csr_batch_repair_mixed,
    csr_batch_sweep,
    csr_find_affected,
    csr_mixed_sweep,
    csr_repair_affected,
)

__all__ = ["FastUpdateEngine"]


class FastUpdateEngine:
    """Per-oracle state of the vectorized update path.

    Owns the :class:`DynCSR` overlay, the dense ``|R| x n`` old-distance
    matrix and the reusable scratch buffers.  Create it from a graph and
    labelling that are *in sync* (the labelling is valid and minimal for
    the graph); apply every subsequent insertion through
    :meth:`insert_edge` / :meth:`insert_edges_batch` — the caller mutates
    the owning :class:`~repro.graph.dynamic_graph.DynamicGraph` first,
    the engine mirrors the edge into its overlay and repairs the
    labelling.  Any other mutation desynchronizes the engine: drop it and
    build a fresh one (see :meth:`matches`).

    >>> from repro.core.construction import build_hcl
    >>> from repro.core.inchl import apply_edge_insertion
    >>> from repro.graph.generators import grid_graph
    >>> g_fast, g_ref = grid_graph(3, 3), grid_graph(3, 3)
    >>> hcl_fast = build_hcl(g_fast, [0, 8])
    >>> hcl_ref = build_hcl(g_ref, [0, 8])
    >>> engine = FastUpdateEngine(g_fast, hcl_fast)
    >>> g_fast.add_edge(0, 8); g_ref.add_edge(0, 8)
    >>> _ = engine.insert_edge(0, 8)
    >>> _ = apply_edge_insertion(g_ref, hcl_ref, 0, 8)
    >>> hcl_fast == hcl_ref
    True
    """

    __slots__ = (
        "_labelling",
        "_landmarks",
        "_full",
        "_dyn",
        "_dist",
        "_is_landmark",
        "_has_entry",
        "_new_dist",
        "_covered",
        "_row_views",
        "_scratch_views",
        "workers",
    )

    def __init__(
        self,
        graph,
        labelling,
        workers: int | None = None,
        owned: Iterable[int] | None = None,
    ) -> None:
        self._labelling = labelling
        self._full = list(labelling.landmarks)
        if owned is None:
            self._landmarks = self._full
        else:
            # Landmark-sharded mode: maintain only the owned landmarks'
            # label rows and highway cells.  ``labelling`` must be the
            # matching restricted labelling
            # (:func:`repro.core.sharding.restrict_labelling`) — the
            # kernels read/write exactly the owned rows, while the
            # sparsifying ``is_landmark`` mask below still covers the
            # FULL landmark set so repairs see the same pruned searches
            # as the unsharded engine.
            self._landmarks = list(owned)
            full_set = set(self._full)
            for r in self._landmarks:
                if r not in full_set:
                    raise InvariantViolationError(
                        f"owned landmark {r} not in the labelling's landmarks"
                    )
        self._dyn = DynCSR.from_graph(graph)
        #: Default worker count for batch Phase B fan-out.
        self.workers = workers
        dyn = self._dyn
        capacity = dyn.capacity
        self._dist = np.full(
            (len(self._landmarks), capacity), UNREACH, dtype=np.int32
        )
        for k, r in enumerate(self._landmarks):
            self._dist[k, : dyn.num_vertices] = dyn.bfs_compact(dyn.index(r))
        self._is_landmark = np.zeros(capacity, dtype=bool)
        for r in self._full:
            self._is_landmark[dyn.index(r)] = True
        # Dense label-membership rows (has_entry[k][i] == 1 iff the k-th
        # landmark has an entry on vertex ids[i]); seeded from the label
        # store once, then kept true by the repair kernel.
        self._has_entry = np.zeros((len(self._landmarks), capacity), dtype=np.uint8)
        position = {r: k for k, r in enumerate(self._landmarks)}
        columns: list[list[int]] = [[] for _ in self._landmarks]
        index_of = dyn.index
        for v, label in labelling.labels.items():
            vi = index_of(v)
            for r in label:
                columns[position[r]].append(vi)
        for k, column in enumerate(columns):
            if column:
                self._has_entry[k, column] = 1
        self._new_dist = np.full(capacity, -1, dtype=np.int32)
        self._covered = np.zeros(capacity, dtype=np.uint8)
        self._rebuild_views()

    def _rebuild_views(self) -> None:
        """Cache the memoryviews the scalar kernel paths read.

        ``_row_views[k]`` is ``(dist_row_mv, has_entry_row_mv)``;
        ``_scratch_views`` is ``(new_dist_mv, covered_mv, landmark_mv)``.
        Rebuilt whenever the backing arrays are re-allocated
        (:meth:`_ensure_capacity`).
        """
        self._row_views = [
            (memoryview(self._dist[k]), memoryview(self._has_entry[k]))
            for k in range(len(self._landmarks))
        ]
        self._scratch_views = (
            memoryview(self._new_dist),
            memoryview(self._covered),
            memoryview(self._is_landmark),
        )

    # ------------------------------------------------------------------
    # Sync
    # ------------------------------------------------------------------
    def matches(self, graph, labelling) -> bool:
        """Whether this engine still mirrors ``graph``/``labelling``.

        Cheap counters-only check: every mutation routed around the fast
        path (deletions, landmark maintenance, direct graph edits) changes
        the edge count, shrinks the vertex count, or changes the landmark
        list, so the owning oracle consults this before reusing a cached
        engine.  The graph may have *more* vertices than the overlay:
        vertices registered directly (the serving writer pre-registers
        endpoints with ``add_vertex``) are necessarily isolated — every
        edge mutation flows through the oracle — and the overlay picks
        them up on their first incident insertion.
        """
        return (
            labelling is self._labelling
            and self._dyn.num_edges == graph.num_edges
            and self._dyn.num_vertices <= graph.num_vertices
            and self._full == labelling.landmarks
        )

    @property
    def owned_landmarks(self) -> list[int]:
        """The landmarks whose rows this engine maintains (all of them
        outside sharded mode)."""
        return list(self._landmarks)

    def freeze_shard_rows(self) -> tuple[np.ndarray, dict[int, int]]:
        """Pinned copy of the dense rows for shard-local queries.

        Returns ``(dist, index_of)``: an ``(num_owned, num_vertices)``
        int32 copy of the per-landmark distance rows and a copy of the
        id -> column map.  Kernels mutate the live rows in place, so a
        published snapshot must carry its own copy
        (:meth:`repro.serving.snapshot.OracleSnapshot.capture`).
        """
        n = self._dyn.num_vertices
        return self._dist[:, :n].copy(), self._dyn.index_map()

    @property
    def dyn(self) -> DynCSR:
        """The CSR overlay (read-only use)."""
        return self._dyn

    def old_distance(self, r: int, v: int) -> float:
        """``d_G(r, v)`` from the dense rows (``inf`` when unreachable).

        Exposed for tests/validation; the kernels read the rows directly.
        """
        d = self._dist[self._landmarks.index(r), self._dyn.index(v)]
        return float("inf") if d == UNREACH else int(d)

    def _ensure_capacity(self) -> None:
        """Grow the distance matrix and scratch to the overlay's capacity."""
        capacity = self._dyn.capacity
        if self._dist.shape[1] >= capacity:
            return
        dist = np.full((len(self._landmarks), capacity), UNREACH, dtype=np.int32)
        dist[:, : self._dist.shape[1]] = self._dist
        self._dist = dist
        has_entry = np.zeros((len(self._landmarks), capacity), dtype=np.uint8)
        has_entry[:, : self._has_entry.shape[1]] = self._has_entry
        self._has_entry = has_entry
        is_landmark = np.zeros(capacity, dtype=bool)
        is_landmark[: len(self._is_landmark)] = self._is_landmark
        self._is_landmark = is_landmark
        new_dist = np.full(capacity, -1, dtype=np.int32)
        new_dist[: len(self._new_dist)] = self._new_dist
        self._new_dist = new_dist
        covered = np.zeros(capacity, dtype=np.uint8)
        covered[: len(self._covered)] = self._covered
        self._covered = covered
        self._rebuild_views()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _repair_and_fold(self, k: int, r: int, levels, stats, union) -> int:
        """Phase C for one landmark: repair, refresh the dense row, reset
        scratch.  Returns ``|Λ_r|``."""
        row = self._dist[k]
        new_dist = self._new_dist
        covered = self._covered
        row_mv, has_mv = self._row_views[k]
        new_mv, covered_mv, landmark_mv = self._scratch_views
        csr_repair_affected(
            self._dyn,
            self._labelling,
            r,
            levels,
            row,
            new_dist,
            self._is_landmark,
            covered,
            self._has_entry[k],
            stats,
            views=(row_mv, new_mv, landmark_mv, covered_mv, has_mv),
        )
        affected = 0
        for depth, verts in levels:
            if isinstance(verts, list):
                affected += len(verts)
                union.update(verts)
                for v in verts:
                    row_mv[v] = depth
                    new_mv[v] = -1
                    covered_mv[v] = 0
            else:
                affected += verts.size
                union.update(verts.tolist())
                row[verts] = depth
                new_dist[verts] = -1
                covered[verts] = 0
        return affected

    def insert_edge(self, u: int, v: int) -> UpdateStats:
        """IncHL+ for one insertion ``(u, v)`` — the kernel Phase A/B/C.

        The owning graph must already contain the edge; the engine's
        overlay must not (the caller inserts through the oracle, which
        keeps the two in lockstep).
        """
        dyn = self._dyn
        self._dyn.insert_edge(u, v)
        self._ensure_capacity()
        ui, vi = dyn.index(u), dyn.index(v)

        stats = UpdateStats(edge=(u, v), affected_per_landmark={})
        union: set[int] = set()
        # Phase A on the dense rows (identical values to the pristine
        # labelling queries), then find+repair per landmark in landmark
        # order.  Interleaving is safe here — unlike the dict kernels, the
        # find reads no labels, and repairs touch only r-entries — and the
        # repair order equals the sequential Phase C order.
        row_views = self._row_views
        new_mv = self._scratch_views[0]
        find_s = 0.0
        repair_s = 0.0
        for k, r in enumerate(self._landmarks):
            row_mv = row_views[k][0]
            da = row_mv[ui]
            db = row_mv[vi]
            if da == db:
                stats.affected_per_landmark[r] = 0
                continue
            seeds = [(vi, da + 1)] if da < db else [(ui, db + 1)]
            t0 = perf_counter()
            levels = csr_find_affected(
                dyn,
                self._dist[k],
                seeds,
                self._new_dist,
                views=(row_mv, new_mv),
            )
            t1 = perf_counter()
            stats.affected_per_landmark[r] = self._repair_and_fold(
                k, r, levels, stats, union
            )
            find_s += t1 - t0
            repair_s += perf_counter() - t1
        stats.affected_union = len(union)
        stats.phases = {"find": find_s, "repair": repair_s}
        return stats

    # ------------------------------------------------------------------
    # Mixed updates (deletions, insert/delete batches)
    # ------------------------------------------------------------------
    def remove_edge(self, u: int, v: int) -> MixedUpdateStats:
        """Fast-path deletion of ``(u, v)`` — a mixed batch of one event.

        The owning graph must already have the edge removed; the engine's
        overlay must still contain it.
        """
        return self.apply_mixed([], [(u, v)])

    def remove_edges_batch(
        self, edges: Iterable[tuple[int, int]], workers: int | None = None
    ) -> MixedUpdateStats:
        """Fast-path deletion of a burst of edges in one combined sweep."""
        return self.apply_mixed([], edges, workers=workers)

    def apply_mixed(
        self,
        inserts: Iterable[tuple[int, int]],
        deletes: Iterable[tuple[int, int]],
        workers: int | None = None,
    ) -> MixedUpdateStats:
        """BatchHL-style repair for a combined insert/delete batch.

        The owning graph must already reflect the whole batch (inserts
        present, deletes gone); the two edge sets must be disjoint and
        *net* — the caller (:meth:`repro.core.dynamic.DynamicHCL.
        apply_events_batch`) collapses insert-then-delete churn before
        calling in.  Phase A resolves the deletion orientations per
        landmark from the dense rows (``|old(a) - old(b)| == 1`` is the
        only shape the old shortest-path DAG admits; insertion
        orientations are deletion-region-dependent and resolve inside the
        kernel); Phase B fans the unified finds out across the
        :class:`LandmarkEngine`; Phase C repairs in landmark order and
        folds the new distances — including :data:`UNREACH` for
        disconnected vertices — back into the dense rows.
        """
        ins_list = [(int(a), int(b)) for a, b in inserts]
        del_list = [(int(a), int(b)) for a, b in deletes]
        if not ins_list and not del_list:
            raise InvariantViolationError("mixed batch needs at least one event")
        if not del_list:
            # Pure insertion burst: the specialized batch path is the same
            # algorithm with the deletion stages compiled out.
            batch = self.insert_edges_batch(ins_list, workers=workers)
            stats = MixedUpdateStats(ins_list, [])
            stats.affected_per_landmark = batch.affected_per_landmark
            stats.affected_union = batch.affected_union
            stats.entries_added = batch.entries_added
            stats.entries_modified = batch.entries_modified
            stats.entries_removed = batch.entries_removed
            stats.highway_updates = batch.highway_updates
            stats.phases = batch.phases
            return stats
        find_start = perf_counter()
        dyn = self._dyn
        if ins_list:
            dyn.insert_edges_batch(ins_list)
        dyn.remove_edges_batch(del_list)
        self._ensure_capacity()
        ins_idx = [(dyn.index(a), dyn.index(b)) for a, b in ins_list]
        del_idx = [(dyn.index(a), dyn.index(b)) for a, b in del_list]

        stats = MixedUpdateStats(ins_list, del_list)
        unreachable = int(UNREACH)
        plans: list[tuple[int, list, list]] = []
        for k, r in enumerate(self._landmarks):
            row_mv = self._row_views[k][0]
            del_seeds: list[tuple[int, int]] = []
            for ai, bi in del_idx:
                da = row_mv[ai]
                db = row_mv[bi]
                # |old(a) - old(b)| == 1 is the only orientation the old
                # SP DAG admits; both-unreachable fails it because UNREACH
                # + 1 != UNREACH (unlike inf + 1 == inf, see dechl).
                if da + 1 == db:
                    del_seeds.append((bi, db))
                elif db + 1 == da:
                    del_seeds.append((ai, da))
            stats.affected_per_landmark[r] = 0
            if del_seeds:
                plans.append((k, ins_idx, del_seeds))
                continue
            for ai, bi in ins_idx:
                da = row_mv[ai]
                db = row_mv[bi]
                if (da != unreachable and da + 1 <= db) or (
                    db != unreachable and db + 1 <= da
                ):
                    plans.append((k, ins_idx, []))
                    break

        engine = LandmarkEngine(self.workers if workers is None else workers)
        results = engine.map(csr_mixed_sweep, (dyn, self._dist), plans)
        repair_start = perf_counter()

        union: set[int] = set()
        new_dist = self._new_dist
        new_mv = self._scratch_views[0]
        for k, levels, removed in results:
            r = self._landmarks[k]
            for depth, verts in levels:
                if isinstance(verts, list):
                    for v in verts:
                        new_mv[v] = depth
                else:
                    new_dist[verts] = depth
            stats.disconnected += len(removed)
            stats.affected_per_landmark[r] = self._repair_and_fold_mixed(
                k, r, levels, removed, stats, union
            )
        stats.affected_union = len(union)
        stats.phases = {
            "find": repair_start - find_start,
            "repair": perf_counter() - repair_start,
        }
        return stats

    def _repair_and_fold_mixed(
        self, k: int, r: int, levels, removed, stats, union
    ) -> int:
        """Phase C for one landmark of a mixed batch.  Returns ``|Λ_r|``
        (settled + disconnected)."""
        row = self._dist[k]
        new_dist = self._new_dist
        covered = self._covered
        row_mv, has_mv = self._row_views[k]
        new_mv, covered_mv, landmark_mv = self._scratch_views
        csr_batch_repair_mixed(
            self._dyn,
            self._labelling,
            r,
            levels,
            removed,
            row,
            new_dist,
            self._is_landmark,
            covered,
            self._has_entry[k],
            stats,
            views=(row_mv, new_mv, landmark_mv, covered_mv, has_mv),
        )
        affected = len(removed)
        union.update(removed)
        for depth, verts in levels:
            if isinstance(verts, list):
                affected += len(verts)
                union.update(verts)
                for v in verts:
                    row_mv[v] = depth
                    new_mv[v] = -1
                    covered_mv[v] = 0
            else:
                affected += verts.size
                union.update(verts.tolist())
                row[verts] = depth
                new_dist[verts] = -1
                covered[verts] = 0
        return affected

    def insert_edges_batch(
        self, edges: Iterable[tuple[int, int]], workers: int | None = None
    ) -> BatchUpdateStats:
        """Batch IncHL+ — one kernel sweep per landmark for the burst.

        Mirrors :func:`repro.core.batch.apply_edge_insertions_batch`:
        Phase A keeps the seed orientations that can carry a new shortest
        path, Phase B runs the multi-seed finds (fanned out across the
        :class:`LandmarkEngine` when ``workers`` asks for it), Phase C
        repairs in landmark order.  The owning graph must already contain
        every edge of the batch.
        """
        edge_list = [(int(a), int(b)) for a, b in edges]
        if not edge_list:
            raise InvariantViolationError("batch insertion needs at least one edge")
        find_start = perf_counter()
        dyn = self._dyn
        dyn.insert_edges_batch(edge_list)
        self._ensure_capacity()
        endpoints = [(dyn.index(a), dyn.index(b)) for a, b in edge_list]

        stats = BatchUpdateStats(edge_list)
        unreachable = int(UNREACH)
        plans: list[tuple[int, list[tuple[int, int]]]] = []
        for k, r in enumerate(self._landmarks):
            row_mv = self._row_views[k][0]
            seeds: list[tuple[int, int]] = []
            for ai, bi in endpoints:
                da = row_mv[ai]
                db = row_mv[bi]
                if da != unreachable and da + 1 <= db:
                    seeds.append((bi, da + 1))
                if db != unreachable and db + 1 <= da:
                    seeds.append((ai, db + 1))
            stats.affected_per_landmark[r] = 0
            if seeds:
                plans.append((k, seeds))

        engine = LandmarkEngine(self.workers if workers is None else workers)
        results = engine.map(csr_batch_sweep, (dyn, self._dist), plans)
        repair_start = perf_counter()

        union: set[int] = set()
        new_dist = self._new_dist
        new_mv = self._scratch_views[0]
        for k, levels in results:
            r = self._landmarks[k]
            # Parallel finds come back as bare levels; scatter them into
            # the shared scratch the repair kernel reads.
            for depth, verts in levels:
                if isinstance(verts, list):
                    for v in verts:
                        new_mv[v] = depth
                else:
                    new_dist[verts] = depth
            stats.affected_per_landmark[r] = self._repair_and_fold(
                k, r, levels, stats, union
            )
        stats.affected_union = len(union)
        stats.phases = {
            "find": repair_start - find_start,
            "repair": perf_counter() - repair_start,
        }
        return stats
