"""Shortest-path *extraction* on top of the distance oracle.

The paper's oracle answers distance values only; many of the motivating
applications (context-aware search, network management — Section 1) need
the actual path.  This module recovers one shortest path using nothing
but distance queries, so it stays exact under IncHL+/DecHL maintenance
and needs no extra index state:

starting from ``u``, greedily step to any neighbour ``w`` with
``Q(w, v) = Q(u, v) − 1`` — such a neighbour always exists on a shortest
path, and each step costs one neighbourhood of distance queries.

Cost: ``O(d(u,v) · avg_deg · query)``.  For a cheaper but inexact
alternative, :func:`approximate_path_via_landmarks` concatenates the two
label-optimal landmark legs of Eq. (2), whose length equals the upper
bound ``d⊤`` (exact whenever some shortest path meets a landmark).
"""

from __future__ import annotations

from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance, query_distance, upper_bound
from repro.exceptions import InvariantViolationError
from repro.graph.traversal import INF, bfs_distances_bounded

__all__ = ["shortest_path", "approximate_path_via_landmarks"]


def shortest_path(
    graph, labelling: HighwayCoverLabelling, u: int, v: int
) -> list[int] | None:
    """One exact shortest path from ``u`` to ``v``; ``None`` if disconnected.

    >>> from repro.graph.generators import grid_graph
    >>> from repro.core.construction import build_hcl
    >>> g = grid_graph(3, 3)
    >>> gamma = build_hcl(g, [4])
    >>> path = shortest_path(g, gamma, 0, 8)
    >>> len(path) - 1 == query_distance(g, gamma, 0, 8)
    True
    >>> path[0], path[-1]
    (0, 8)
    """
    total = query_distance(graph, labelling, u, v)
    if total == INF:
        return None
    path = [u]
    current = u
    remaining = int(total)
    while remaining > 0:
        for w in graph.neighbors(current):
            if w == v:
                step_found = True
                next_vertex = w
                break
            if query_distance(graph, labelling, w, v) == remaining - 1:
                step_found = True
                next_vertex = w
                break
        else:
            step_found = False
        if not step_found:
            raise InvariantViolationError(
                f"no neighbour of {current} advances towards {v} "
                f"(remaining={remaining}) — labelling out of sync with graph"
            )
        path.append(next_vertex)
        current = next_vertex
        remaining -= 1
    return path


def approximate_path_via_landmarks(
    graph, labelling: HighwayCoverLabelling, u: int, v: int
) -> list[int] | None:
    """A walk of length ``d⊤`` (Eq. 2) through the best label pair.

    Exact (and a simple path) whenever some shortest ``u``–``v`` path
    meets a landmark — the highway-cover case; otherwise an upper-bound
    *witness walk* that may revisit vertices where the three legs
    overlap.  Returns ``None`` when the labels give no finite bound
    (e.g. different components with no common landmark).

    The witness is assembled from three legs — ``u`` to its label
    landmark ``r_i``, the highway leg ``r_i`` to ``r_j``, and ``r_j`` down
    to ``v`` — each recovered by a bounded BFS between consecutive
    endpoints.
    """
    landmark_set = labelling.landmark_set
    if u == v:
        return [u]
    if u in landmark_set or v in landmark_set:
        # Degenerate legs: landmark endpoints make Eq. (1) exact already.
        total = (
            landmark_distance(labelling, u, v)
            if u in landmark_set
            else landmark_distance(labelling, v, u)
        )
        if total == INF:
            return None
        return _bfs_leg(graph, u, v, int(total))

    best: tuple[float, int, int] | None = None
    labels = labelling.labels
    highway = labelling.highway
    for ri, du in labels.label(u).items():
        row = highway.row(ri)
        for rj, dv in labels.label(v).items():
            via = row.get(rj)
            if via is None:
                continue
            candidate = du + via + dv
            if best is None or candidate < best[0]:
                best = (candidate, ri, rj)
    if best is None:
        return None
    bound, ri, rj = best
    if bound != upper_bound(labelling, u, v):  # pragma: no cover - sanity
        raise InvariantViolationError("label join disagrees with upper_bound")

    first = _bfs_leg(graph, u, ri, labels.label(u)[ri])
    middle = _bfs_leg(graph, ri, rj, int(highway.distance(ri, rj)))
    last = _bfs_leg(graph, rj, v, labels.label(v)[rj])
    return first + middle[1:] + last[1:]


def _bfs_leg(graph, start: int, goal: int, length: int) -> list[int]:
    """A path of exactly ``length`` edges from ``start`` to ``goal``."""
    if length == 0:
        return [start]
    dist = bfs_distances_bounded(graph, goal, bound=length)
    if dist.get(start) != length:
        raise InvariantViolationError(
            f"expected d({start}, {goal}) = {length}, labelling out of sync"
        )
    path = [start]
    current = start
    for remaining in range(length - 1, -1, -1):
        for w in graph.neighbors(current):
            if dist.get(w) == remaining:
                path.append(w)
                current = w
                break
    return path
