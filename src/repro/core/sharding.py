"""Landmark-sharded labellings: restriction, reassembly, shard queries.

The paper's per-landmark independence (§4: every insertion/deletion
repair is a union of per-landmark jobs) does not only parallelise
maintenance — it *partitions* the labelling itself.  Split the landmark
list ``R`` into disjoint owned subsets ``R_s``; each shard keeps only

- the label entries ``(v, r, d)`` with ``r`` in ``R_s``, and
- the highway cells ``δ(r1, r2)`` with at least one endpoint in ``R_s``
  (the full landmark *list* is retained so positions, highway symmetry
  and serialization stay globally consistent),

plus the full graph (edges are tiny next to labels at scale).  Because a
query is a min over landmarks, a shard can answer *exactly for its own
landmarks* and a scatter-gather min over shards equals the unsharded
answer:

    d(u, v) = min_s  min( m_s ,  sparsified_bfs(u, v, bound=m_s) )

where ``m_s = min_{r in R_s} d(r, u) + d(r, v)`` from the shard's dense
distance rows, and the sparsified BFS skips *every* landmark in ``R``
(interior vertices only — endpoints are always admitted, matching
:func:`~repro.graph.traversal.bidirectional_bfs`).  Any shortest path
through some landmark ``r`` is covered by ``m_s`` of the shard owning
``r``; any landmark-free path is found by the BFS of every shard.

Restriction and reassembly are exact inverses: the union of per-shard
label files reproduces the unsharded :func:`save_labelling` output
byte-for-byte (canonical row and highway-cell order), which is how the
cluster tier proves a sharded deployment maintains the same labelling
as a single process.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import ReproError, VertexNotFoundError
from repro.graph.dyncsr import UNREACH
from repro.graph.traversal import INF, bfs_with_parents, bidirectional_bfs

__all__ = [
    "restrict_labelling",
    "reassemble_labellings",
    "shard_min_distance",
    "shard_query_distance",
    "shard_query_distances_many",
    "bfs_shortest_path",
]


def restrict_labelling(
    labelling: HighwayCoverLabelling, owned: Iterable[int]
) -> HighwayCoverLabelling:
    """The shard-local view of ``labelling`` for owned landmarks ``owned``.

    Keeps the *full* landmark list (so highway symmetry, serialization
    order, and ``landmark_set`` semantics are identical to the unsharded
    labelling) but drops every label entry whose landmark is not owned
    and every highway cell with no owned endpoint.  Idempotent: applying
    the same restriction twice is a no-op.
    """
    owned_set = frozenset(owned)
    unknown = owned_set - labelling.landmark_set
    if unknown:
        raise ReproError(f"owned landmarks not in labelling: {sorted(unknown)}")
    highway = Highway(labelling.landmarks)
    for r, row in labelling.highway.as_dict().items():
        for r2, d in row.items():
            if r < r2 and (r in owned_set or r2 in owned_set):
                highway.set_distance(r, r2, d)
    # r < r2 misses nothing: set_distance writes both rows, and the
    # diagonal is seeded by the Highway constructor.
    labels = LabelStore()
    for v, label in labelling.labels.items():
        for r, d in label.items():
            if r in owned_set:
                labels.set_entry(v, r, d)
    return HighwayCoverLabelling(highway, labels)


def reassemble_labellings(
    parts: Sequence[HighwayCoverLabelling],
) -> HighwayCoverLabelling:
    """Union per-shard restricted labellings back into one labelling.

    Inverse of :func:`restrict_labelling` over a disjoint landmark
    partition.  Highway cells with endpoints on two different shards are
    stored by both owners; the union checks they agree — a mismatch
    means the shards diverged and is an error, not something to paper
    over with a min.
    """
    if not parts:
        raise ReproError("reassemble_labellings: no parts")
    landmarks = parts[0].landmarks
    for part in parts[1:]:
        if part.landmarks != landmarks:
            raise ReproError(
                "reassemble_labellings: parts disagree on the landmark list"
            )
    highway = Highway(landmarks)
    for part in parts:
        for r, row in part.highway.as_dict().items():
            for r2, d in row.items():
                if r >= r2:
                    continue
                existing = highway.distance(r, r2)
                if existing != INF and existing != d:
                    raise ReproError(
                        f"reassemble_labellings: shards disagree on "
                        f"highway cell ({r}, {r2}): {existing} != {d}"
                    )
                highway.set_distance(r, r2, d)
    labels = LabelStore()
    for part in parts:
        for v, label in part.labels.items():
            for r, d in label.items():
                existing = labels.entry(v, r)
                if existing is not None and existing != d:
                    raise ReproError(
                        f"reassemble_labellings: shards disagree on "
                        f"label ({v}, {r}): {existing} != {d}"
                    )
                labels.set_entry(v, r, d)
    return HighwayCoverLabelling(highway, labels)


def shard_min_distance(
    dist: np.ndarray, index_of: dict[int, int], u: int, v: int
) -> float:
    """``min_k dist[k][u] + dist[k][v]`` over the shard's dense landmark
    rows — the shard's exact upper bound through its owned landmarks.

    ``dist`` is the engine's ``(num_owned, num_vertices)`` int32 matrix
    (``UNREACH`` for unreachable); ``index_of`` maps vertex ids to its
    columns.  Vertices the shard has never seen contribute ``INF``.
    Sums are taken in int64: two ``UNREACH`` sentinels overflow int32.
    """
    iu = index_of.get(u)
    iv = index_of.get(v)
    if iu is None or iv is None or not len(dist):
        return INF
    du = dist[:, iu].astype(np.int64)
    dv = dist[:, iv].astype(np.int64)
    total = du + dv
    total[(du >= UNREACH) | (dv >= UNREACH)] = np.iinfo(np.int64).max
    best = int(total.min())
    return INF if best >= UNREACH else best


def shard_query_distance(
    graph,
    landmark_set: frozenset[int],
    dist: np.ndarray,
    index_of: dict[int, int],
    u: int,
    v: int,
) -> float:
    """Shard-local distance: exact through owned landmarks, exact for
    landmark-free paths, an overestimate otherwise.

    The element-wise min over all shards of this value equals the
    unsharded :func:`~repro.core.query.query_distance` (see module
    docstring for the argument).  ``landmark_set`` must be the FULL
    landmark set — every shard sparsifies identically.
    """
    if not graph.has_vertex(u):
        raise VertexNotFoundError(u)
    if not graph.has_vertex(v):
        raise VertexNotFoundError(v)
    if u == v:
        return 0
    bound = shard_min_distance(dist, index_of, u, v)
    sparsified = bidirectional_bfs(graph, u, v, bound=bound, skip=landmark_set)
    return sparsified if sparsified <= bound else bound


def shard_query_distances_many(
    graph,
    landmark_set: frozenset[int],
    dist: np.ndarray,
    index_of: dict[int, int],
    pairs: Iterable[tuple[int, int]],
) -> list[float]:
    """Batched :func:`shard_query_distance` (one row lookup per pair)."""
    return [
        shard_query_distance(graph, landmark_set, dist, index_of, u, v)
        for u, v in pairs
    ]


def bfs_shortest_path(graph, u: int, v: int) -> list[int] | None:
    """One exact shortest path by plain BFS on the full graph.

    Shards keep the whole graph but only a slice of the labels, so the
    greedy label-walk of :func:`repro.core.paths.shortest_path` is not
    available to them; path queries fall back to this direct search.
    """
    if not graph.has_vertex(u) or not graph.has_vertex(v):
        return None
    if u == v:
        return [u]
    dist, parents = bfs_with_parents(graph, u)
    if v not in dist:
        return None
    path = [v]
    node = v
    while node != u:
        node = parents[node][0]
        path.append(node)
    path.reverse()
    return path
