"""DynamicHCL — the user-facing dynamic distance oracle.

Couples a :class:`~repro.graph.dynamic_graph.DynamicGraph` with a
:class:`~repro.core.labelling.HighwayCoverLabelling` and keeps the two in
sync through the paper's update operations plus this repository's
extensions:

* :meth:`DynamicHCL.insert_edge` — IncHL+ edge insertion (Section 4);
* :meth:`DynamicHCL.insert_vertex` — vertex insertion, decomposed into edge
  insertions (Section 3);
* :meth:`DynamicHCL.insert_edges_batch` — one find/repair sweep per
  landmark for a whole burst of insertions (:mod:`repro.core.batch`);
* :meth:`DynamicHCL.remove_edge` / :meth:`DynamicHCL.remove_vertex` — the
  decremental extension (paper's future work), either fine-grained DecHL
  (:mod:`repro.core.dechl`) or the coarse per-landmark rebuild
  (:mod:`repro.core.decremental`);
* :meth:`DynamicHCL.remove_edges_batch` / :meth:`DynamicHCL.apply_events_batch`
  — fully-dynamic mixed insert/delete batches, one BatchHL-style combined
  sweep per landmark on the fast route (``docs/DESIGN.md`` §10);
* :meth:`DynamicHCL.add_landmark` / :meth:`DynamicHCL.remove_landmark` —
  online landmark-set resizing (:mod:`repro.landmarks.maintenance`);
* :meth:`DynamicHCL.shortest_path` — path extraction on top of the
  distance oracle (:mod:`repro.core.paths`).

Queries are answered exactly at any point between updates.

The ``workers`` knob routes every bulk operation — construction, batch
insertion, coarse decremental rebuild — through the parallel per-landmark
engine (:mod:`repro.parallel`); results are identical for any worker
count.

The ``fast`` knob (per call, or ``fast_updates=`` as the oracle default —
mirroring the ``construction`` knob) routes :meth:`insert_edge` /
:meth:`insert_edges_batch` / :meth:`remove_edge` /
:meth:`remove_edges_batch` / :meth:`apply_events_batch` through the
vectorized CSR update engine of :mod:`repro.core.inchl_fast`; the
labelling it produces is byte-identical to the sequential
implementation's for every event kind.  The engine is cached across fast
updates — including deletions — and transparently rebuilt after any
other mutation (landmark maintenance, vertex removal, rebuild-strategy
deletions).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.core.construction import build_hcl
from repro.core.inchl import UpdateStats, apply_edge_insertion
from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import (
    landmark_distance,
    query_distance,
    query_distances_many,
    upper_bound,
)
from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.landmarks.selection import select_landmarks

__all__ = ["DynamicHCL"]


class DynamicHCL:
    """A dynamic graph with an incrementally maintained distance labelling.

    >>> from repro.graph.generators import grid_graph
    >>> oracle = DynamicHCL.build(grid_graph(3, 3), num_landmarks=2)
    >>> oracle.query(0, 8)
    4
    >>> _ = oracle.insert_edge(0, 8)
    >>> oracle.query(0, 8)
    1

    ``workers=N`` (``0`` = all CPUs) parallelizes bulk operations without
    changing any result:

    >>> fast = DynamicHCL.build(grid_graph(3, 3), landmarks=[0, 8], workers=2)
    >>> ref = DynamicHCL.build(grid_graph(3, 3), landmarks=[0, 8])
    >>> fast.labelling == ref.labelling
    True
    """

    def __init__(
        self,
        graph: DynamicGraph,
        labelling: HighwayCoverLabelling,
        workers: int | None = None,
        fast_updates: bool = False,
        owned_landmarks: Sequence[int] | None = None,
    ) -> None:
        self._graph = graph
        self._labelling = labelling
        #: Default worker count for bulk operations (``None``/``1`` serial,
        #: ``0`` all CPUs); per-call ``workers=`` arguments override it.
        self.workers = workers
        #: Default route for :meth:`insert_edge`/:meth:`insert_edges_batch`
        #: (the vectorized CSR engine vs the reference dict kernels);
        #: per-call ``fast=`` arguments override it.
        self.fast_updates = fast_updates
        #: Landmark-sharded mode (``repro.core.sharding``): this oracle
        #: owns only these landmarks' label rows; ``labelling`` must be
        #: the matching restricted labelling.  Queries become
        #: shard-local (exact through owned landmarks, scatter-gather
        #: min over all shards is globally exact) and every update runs
        #: on the vectorized engine restricted to the owned rows.
        self._owned = list(owned_landmarks) if owned_landmarks is not None else None
        if self._owned is not None:
            self.fast_updates = True
        self._version = 0
        self._snapshot_cache = None
        self._shard_rows_cache = None
        self._fast_engine = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DynamicGraph,
        num_landmarks: int = 20,
        strategy: str = "degree",
        landmarks: Sequence[int] | None = None,
        rng: int | random.Random | None = None,
        construction: str = "python",
        workers: int | None = None,
        fast_updates: bool = False,
    ) -> "DynamicHCL":
        """Build the labelling for ``graph`` and wrap both in an oracle.

        Either pass explicit ``landmarks`` or let the named selection
        ``strategy`` pick ``num_landmarks`` of them (paper default: the 20
        highest-degree vertices).  The graph is used *by reference*: updates
        through the oracle mutate it.

        ``construction`` selects the builder: ``"python"`` (reference) or
        ``"csr"`` (the numpy fast path of
        :func:`repro.core.construction_fast.build_hcl_fast`; same labelling,
        much faster on large graphs).

        ``workers`` fans the per-landmark construction sweeps out across a
        process pool and becomes the oracle's default for later bulk
        operations (``None``/``1`` serial, ``0`` all CPUs); the labelling
        is identical for any worker count.

        ``fast_updates`` becomes the oracle's default update route: when
        true, :meth:`insert_edge` / :meth:`insert_edges_batch` run on the
        vectorized CSR engine (:mod:`repro.core.inchl_fast`) — identical
        labelling, much faster on large update streams.
        """
        if landmarks is None:
            landmarks = select_landmarks(graph, num_landmarks, strategy, rng=rng)
        if construction == "python":
            labelling = build_hcl(graph, landmarks, workers=workers)
        elif construction == "csr":
            from repro.core.construction_fast import build_hcl_fast

            labelling = build_hcl_fast(graph, landmarks, workers=workers)
        else:
            raise ValueError(
                f"unknown construction {construction!r}; use 'python' or 'csr'"
            )
        return cls(graph, labelling, workers=workers, fast_updates=fast_updates)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph (mutate only through the oracle)."""
        return self._graph

    @property
    def labelling(self) -> HighwayCoverLabelling:
        """The maintained labelling ``Γ = (H, L)``."""
        return self._labelling

    @property
    def landmarks(self) -> list[int]:
        """Landmarks ``R`` in selection order."""
        return self._labelling.landmarks

    @property
    def owned_landmarks(self) -> list[int] | None:
        """The landmark subset this oracle maintains, or ``None`` when it
        is an ordinary unsharded oracle owning all of them."""
        return list(self._owned) if self._owned is not None else None

    @property
    def label_entries(self) -> int:
        """``size(L)`` — the paper's labelling-size metric."""
        return self._labelling.label_entries

    def size_bytes(self) -> int:
        """Logical labelling footprint in bytes (Table 1 accounting)."""
        return self._labelling.size_bytes()

    @property
    def version(self) -> int:
        """Monotonic update epoch: bumped once per mutating operation.

        A snapshot taken at epoch ``e`` answers queries against the graph
        exactly as it stood at ``e``; ``oracle.version > snap.epoch`` means
        the snapshot is stale (but still perfectly consistent).
        """
        return self._version

    def snapshot(self):
        """An immutable point-in-time read view of this oracle.

        Returns an :class:`repro.serving.snapshot.OracleSnapshot` pinned to
        the current :attr:`version`.  Snapshots are cheap (pointer-level
        copy-on-write, see :meth:`HighwayCoverLabelling.freeze`) and never
        block or observe later updates — the serving layer's readers query
        snapshots while the single writer mutates the oracle.  Repeated
        calls between updates return the same cached snapshot object.
        """
        from repro.serving.snapshot import OracleSnapshot

        cached = self._snapshot_cache
        if cached is not None and cached.epoch == self._version:
            return cached
        snap = OracleSnapshot.capture(self)
        self._snapshot_cache = snap
        return snap

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, path, meta: dict | None = None) -> None:
        """Persist graph + labelling to ``path`` (a ``save_oracle`` file).

        ``meta`` rides along in the file — the cluster layer stamps the
        update-log position the checkpoint covers (``{"log_seq": N}``) so
        a replica can warm-start from the checkpoint and replay only the
        log suffix (:mod:`repro.cluster`).
        """
        from repro.utils.serialization import save_oracle

        save_oracle(self, path, meta=meta)

    @classmethod
    def restore(cls, path) -> tuple["DynamicHCL", dict]:
        """Load a :meth:`checkpoint` file; returns ``(oracle, meta)``.

        ``meta`` is ``{}`` for files saved without one (plain
        ``save_oracle`` output warm-starts the same way).
        """
        from repro.utils.serialization import load_oracle_with_meta

        return load_oracle_with_meta(path)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Exact distance ``d_G(u, v)``; ``inf`` when disconnected.

        On a landmark shard the answer is *shard-local*: exact whenever
        some shortest path meets an owned landmark or no landmark at
        all, an overestimate otherwise — the element-wise min across all
        shards of a partition is the exact global distance
        (:mod:`repro.core.sharding`).
        """
        if self._owned is not None:
            from repro.core.sharding import shard_query_distance

            dist, index_of = self.shard_rows()
            return shard_query_distance(
                self._graph, self._labelling.landmark_set, dist, index_of, u, v
            )
        return query_distance(self._graph, self._labelling, u, v)

    def query_many(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Exact distances for a batch of ``(u, v)`` pairs.

        Same answers as calling :meth:`query` per pair but with the
        per-call attribute lookups hoisted once — the serving hot path
        (:mod:`repro.serving`) answers its bulk requests through this.
        """
        if self._owned is not None:
            from repro.core.sharding import shard_query_distances_many

            dist, index_of = self.shard_rows()
            return shard_query_distances_many(
                self._graph, self._labelling.landmark_set, dist, index_of, pairs
            )
        return query_distances_many(self._graph, self._labelling, pairs)

    def shard_rows(self):
        """Frozen ``(dist, index_of)`` shard-query state at this version.

        ``dist`` is the owned landmarks' dense distance matrix (one int32
        row per owned landmark, :data:`~repro.graph.dyncsr.UNREACH` for
        unreachable) and ``index_of`` maps vertex ids to its columns.
        The copy is cached per :attr:`version`, so snapshots and repeated
        queries between updates share one frozen state.  Only available
        in landmark-sharded mode.
        """
        if self._owned is None:
            raise GraphError("shard_rows() requires a landmark-sharded oracle")
        cached = self._shard_rows_cache
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        engine = self._resolve_fast_engine()
        dist, index_of = engine.freeze_shard_rows()
        self._shard_rows_cache = (self._version, dist, index_of)
        return dist, index_of

    def distance_bound(self, u: int, v: int) -> float:
        """The label-only upper bound ``d⊤`` (Eq. 2) — useful on its own as
        a fast approximate distance."""
        landmark_set = self._labelling.landmark_set
        if u == v:
            return 0
        if u in landmark_set:
            return landmark_distance(self._labelling, u, v)
        if v in landmark_set:
            return landmark_distance(self._labelling, v, u)
        return upper_bound(self._labelling, u, v)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _resolve_fast_engine(self):
        """The cached vectorized update engine, (re)built when stale.

        Must be called *before* the graph mutation: the engine snapshots
        the pre-insertion graph to seed its dense old-distance rows.
        """
        from repro.core.inchl_fast import FastUpdateEngine

        engine = self._fast_engine
        if engine is None or not engine.matches(self._graph, self._labelling):
            engine = FastUpdateEngine(
                self._graph,
                self._labelling,
                workers=self.workers,
                owned=self._owned,
            )
            self._fast_engine = engine
        return engine

    def _invalidate_fast(self) -> None:
        """Drop the cached fast engine (its overlay/rows are now stale)."""
        self._fast_engine = None

    def _route_fast(self, fast: bool | None) -> bool:
        """Resolve a per-call ``fast`` argument against the oracle default.

        Landmark shards have no reference route — the dict kernels
        iterate the full landmark list — so sharded oracles always take
        the restricted vectorized engine.
        """
        if self._owned is not None:
            return True
        return self.fast_updates if fast is None else fast

    def _require_unsharded(self, operation: str) -> None:
        if self._owned is not None:
            raise GraphError(
                f"{operation} is not supported on a landmark shard; apply it "
                f"to the unsharded oracle and re-shard"
            )

    def insert_edge(self, u: int, v: int, fast: bool | None = None) -> UpdateStats:
        """Insert edge ``(u, v)`` and repair the labelling (IncHL+).

        ``fast`` selects the update route (default: the oracle's
        ``fast_updates``): the reference dict kernels of
        :mod:`repro.core.inchl`, or the vectorized CSR engine of
        :mod:`repro.core.inchl_fast` — byte-identical labellings either
        way.  Returns the update statistics (affected counts per
        landmark).
        """
        fast = self._route_fast(fast)
        if fast:
            engine = self._resolve_fast_engine()
            self._graph.add_edge(u, v)
            self._version += 1
            return engine.insert_edge(u, v)
        self._invalidate_fast()
        self._graph.add_edge(u, v)
        self._version += 1
        return apply_edge_insertion(self._graph, self._labelling, u, v)

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> list[UpdateStats]:
        """The paper's vertex insertion: new vertex ``v`` plus edges to
        existing vertices, processed as a sequence of edge insertions."""
        self._require_unsharded("insert_vertex")
        neighbor_list = list(neighbors)
        self._invalidate_fast()
        self._graph.insert_vertex(v, [])
        self._version += 1
        stats = []
        for w in neighbor_list:
            self._graph.add_edge(v, w)
            self._version += 1
            stats.append(apply_edge_insertion(self._graph, self._labelling, v, w))
        return stats

    def insert_edges(
        self, edges: Iterable[tuple[int, int]], fast: bool | None = None
    ) -> list[UpdateStats]:
        """Batch convenience: apply a stream of edge insertions in order.

        The paper's model is strictly online (one repair per change), so
        this simply loops :meth:`insert_edge`; it exists so workloads can be
        replayed in one call.  For one *combined* sweep per landmark use
        :meth:`insert_edges_batch` instead.
        """
        return [self.insert_edge(u, v, fast=fast) for u, v in edges]

    def insert_edges_batch(
        self,
        edges: Iterable[tuple[int, int]],
        workers: int | None = None,
        fast: bool | None = None,
    ) -> UpdateStats:
        """Insert a burst of edges with one find/repair sweep per landmark.

        Semantically identical to :meth:`insert_edges` (both end on the
        canonical minimal labelling of the final graph) but the affected
        regions of the whole batch are discovered and repaired together —
        see :mod:`repro.core.batch` for the algorithm and the ablation
        benchmark for the crossover.  ``workers`` overrides the oracle's
        default worker count for the per-landmark find phase; ``fast``
        selects the dict kernels or the vectorized CSR engine (default:
        the oracle's ``fast_updates``).
        """
        fast = self._route_fast(fast)
        edge_list = list(edges)
        if fast:
            engine = self._resolve_fast_engine()
            for u, v in edge_list:
                self._graph.add_edge(u, v)
            self._version += len(edge_list)
            return engine.insert_edges_batch(
                edge_list, workers=self.workers if workers is None else workers
            )
        from repro.core.batch import apply_edge_insertions_batch

        self._invalidate_fast()
        for u, v in edge_list:
            self._graph.add_edge(u, v)
        self._version += len(edge_list)
        return apply_edge_insertions_batch(
            self._graph,
            self._labelling,
            edge_list,
            workers=self.workers if workers is None else workers,
        )

    def remove_edge(
        self,
        u: int,
        v: int,
        strategy: str = "partial",
        workers: int | None = None,
        fast: bool | None = None,
    ):
        """Decremental update (the paper's stated future work).

        ``fast`` selects the update route (default: the oracle's
        ``fast_updates``): when true (and ``strategy`` is the default
        ``"partial"``) the deletion runs on the vectorized mixed-batch
        engine (:meth:`repro.core.inchl_fast.FastUpdateEngine.remove_edge`)
        — byte-identical labelling, dense rows kept valid, no engine
        invalidation.  Otherwise ``strategy="partial"`` runs the
        fine-grained DecHL of :mod:`repro.core.dechl`, confining work to
        the affected region, and ``strategy="rebuild"`` runs the coarse
        per-relevant-landmark rebuild of :mod:`repro.core.decremental`,
        whose rebuild sweeps ``workers`` (default: the oracle's worker
        count) fan out across a process pool.  All routes preserve exact
        minimality; they differ only in cost profile.
        """
        fast = self._route_fast(fast)
        if self._owned is not None:
            strategy = "partial"  # shards have no rebuild route
        if strategy == "partial":
            if fast:
                engine = self._resolve_fast_engine()
                self._graph.remove_edge(u, v)
                self._version += 1
                return engine.remove_edge(u, v)
            from repro.core.dechl import apply_edge_deletion_partial

            self._invalidate_fast()

            self._version += 1
            return apply_edge_deletion_partial(self._graph, self._labelling, u, v)
        if strategy == "rebuild":
            from repro.core.decremental import apply_edge_deletion

            self._invalidate_fast()

            self._version += 1
            return apply_edge_deletion(
                self._graph,
                self._labelling,
                u,
                v,
                workers=self.workers if workers is None else workers,
            )
        raise GraphError(
            f"unknown deletion strategy {strategy!r}; use 'partial' or 'rebuild'"
        )

    def remove_edges_batch(
        self,
        edges: Iterable[tuple[int, int]],
        workers: int | None = None,
        fast: bool | None = None,
    ):
        """Delete a burst of edges with one combined sweep per landmark.

        The decremental counterpart of :meth:`insert_edges_batch`: on the
        fast route the whole burst is absorbed by one BatchHL-style
        find/repair pass per landmark
        (:meth:`~repro.core.inchl_fast.FastUpdateEngine.remove_edges_batch`);
        on the reference route the edges are deleted one at a time through
        DecHL.  Both end on the canonical minimal labelling of the final
        graph.  Returns a :class:`~repro.core.batch.MixedUpdateStats`.
        """
        return self.apply_events_batch(
            [("delete", (u, v)) for u, v in edges], workers=workers, fast=fast
        )

    def apply_events_batch(
        self,
        events,
        workers: int | None = None,
        fast: bool | None = None,
    ):
        """Apply a mixed insert/delete event batch in one combined repair.

        ``events`` is a sequence of
        :class:`~repro.workloads.streams.UpdateEvent` (or plain
        ``(kind, (u, v))`` pairs) applied *as if sequentially*: every
        event is validated against the graph state its predecessors
        produce, and :attr:`version` advances by ``len(events)`` — the
        same epochs a one-at-a-time replay would stamp.  Invalid
        transitions (inserting a present edge, deleting an absent one,
        self-loops, unknown endpoints) raise :class:`GraphError` before
        anything is mutated.

        On the fast route the batch is first collapsed to its *net* edge
        sets — an insert-then-delete (or delete-then-reinsert) pair
        cancels outright — and handed to the mixed-batch engine as one
        BatchHL-style sweep per landmark.  The reference route replays
        the events one at a time (IncHL+ / DecHL).  Both end on the
        canonical minimal labelling of the final graph, byte for byte.
        Returns a :class:`~repro.core.batch.MixedUpdateStats`.
        """
        from repro.core.batch import MixedUpdateStats

        fast = self._route_fast(fast)
        graph = self._graph
        normalized: list[tuple[str, int, int]] = []
        state: dict[tuple[int, int], bool] = {}
        for event in events:
            kind, edge = (
                (event.kind, event.edge) if hasattr(event, "kind") else event
            )
            u, v = int(edge[0]), int(edge[1])
            key = (u, v) if u <= v else (v, u)
            present = state.get(key)
            if present is None:
                present = graph.has_edge(u, v) if u in graph and v in graph else False
            if kind == "insert":
                if u == v:
                    raise GraphError(f"self-loop insert ({u}, {v}) in event batch")
                if u not in graph or v not in graph:
                    raise GraphError(
                        f"insert ({u}, {v}) references an unknown vertex"
                    )
                if present:
                    raise GraphError(f"insert of already-present edge ({u}, {v})")
                state[key] = True
            elif kind == "delete":
                if not present:
                    raise GraphError(f"delete of absent edge ({u}, {v})")
                state[key] = False
            else:
                raise GraphError(f"unknown event kind {kind!r}")
            normalized.append((kind, u, v))
        if fast:
            net_inserts: list[tuple[int, int]] = []
            net_deletes: list[tuple[int, int]] = []
            for key, final in state.items():
                if final != graph.has_edge(*key):
                    (net_inserts if final else net_deletes).append(key)
            self._version += len(normalized)
            if not net_inserts and not net_deletes:
                return MixedUpdateStats([], [])
            engine = self._resolve_fast_engine()
            for u, v in net_inserts:
                graph.add_edge(u, v)
            for u, v in net_deletes:
                graph.remove_edge(u, v)
            return engine.apply_mixed(
                net_inserts,
                net_deletes,
                workers=self.workers if workers is None else workers,
            )
        from repro.core.dechl import apply_edge_deletion_partial

        self._invalidate_fast()
        inserts = [(u, v) for kind, u, v in normalized if kind == "insert"]
        deletes = [(u, v) for kind, u, v in normalized if kind == "delete"]
        stats = MixedUpdateStats(inserts, deletes)
        union_total = 0
        for kind, u, v in normalized:
            if kind == "insert":
                graph.add_edge(u, v)
                step = apply_edge_insertion(graph, self._labelling, u, v)
            else:
                step = apply_edge_deletion_partial(graph, self._labelling, u, v)
            for r, count in step.affected_per_landmark.items():
                stats.affected_per_landmark[r] = (
                    stats.affected_per_landmark.get(r, 0) + count
                )
            union_total += step.affected_union
            stats.entries_added += step.entries_added
            stats.entries_modified += step.entries_modified
            stats.entries_removed += step.entries_removed
            stats.highway_updates += step.highway_updates
        stats.affected_union = union_total
        self._version += len(normalized)
        return stats

    def remove_vertex(self, v: int) -> None:
        """Remove a vertex and all incident edges (decremental extension).

        Landmarks must be demoted first (:meth:`remove_landmark`).
        """
        self._require_unsharded("remove_vertex")
        from repro.core.dechl import apply_vertex_deletion

        self._invalidate_fast()
        self._version += 1
        apply_vertex_deletion(self._graph, self._labelling, v)

    # ------------------------------------------------------------------
    # Landmark maintenance
    # ------------------------------------------------------------------
    def add_landmark(self, v: int) -> int:
        """Promote ``v`` to a landmark online (extension).

        Returns the number of now-covered entries removed; see
        :mod:`repro.landmarks.maintenance`.
        """
        self._require_unsharded("add_landmark")
        from repro.landmarks.maintenance import add_landmark

        self._invalidate_fast()
        self._version += 1
        return add_landmark(self._graph, self._labelling, v)

    def remove_landmark(self, v: int) -> list[int]:
        """Demote landmark ``v`` online (extension).

        Returns the landmarks whose labellings were rebuilt.
        """
        self._require_unsharded("remove_landmark")
        from repro.landmarks.maintenance import remove_landmark

        self._invalidate_fast()
        self._version += 1
        return remove_landmark(self._graph, self._labelling, v)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def shortest_path(self, u: int, v: int) -> list[int] | None:
        """One exact shortest path (``None`` when disconnected).

        A landmark shard keeps the full graph but only a slice of the
        labels, so the greedy label walk is unavailable there; shards
        answer by plain BFS instead.
        """
        if self._owned is not None:
            from repro.core.sharding import bfs_shortest_path

            return bfs_shortest_path(self._graph, u, v)
        from repro.core.paths import shortest_path

        return shortest_path(self._graph, self._labelling, u, v)

    def approximate_path(self, u: int, v: int) -> list[int] | None:
        """A landmark-routed path of length ``d⊤`` (Eq. 2) — cheap, exact
        whenever some shortest path meets a landmark."""
        from repro.core.paths import approximate_path_via_landmarks

        return approximate_path_via_landmarks(self._graph, self._labelling, u, v)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicHCL(|V|={self._graph.num_vertices}, "
            f"|E|={self._graph.num_edges}, |R|={len(self.landmarks)}, "
            f"size(L)={self.label_entries})"
        )
