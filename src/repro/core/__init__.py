"""Core: highway cover labelling and its incremental maintenance (IncHL+).

Public surface:

* :class:`~repro.core.labelling.HighwayCoverLabelling` — the (H, L) pair.
* :func:`~repro.core.construction.build_hcl` — static construction.
* :func:`~repro.core.query.query_distance` — exact distance queries (Q).
* :class:`~repro.core.dynamic.DynamicHCL` — the maintained graph+labelling
  facade implementing the paper's IncHL+ (and the decremental extension).
"""

from repro.core.highway import Highway
from repro.core.labels import LabelStore
from repro.core.labelling import HighwayCoverLabelling
from repro.core.construction import build_hcl
from repro.core.query import query_distance, landmark_distance, upper_bound
from repro.core.inchl import apply_edge_insertion, find_affected, repair_affected
from repro.core.inchl_fast import FastUpdateEngine
from repro.core.dynamic import DynamicHCL
from repro.core.decremental import apply_edge_deletion
from repro.core.directed import DirectedHCL
from repro.core.weighted_hcl import WeightedHCL

__all__ = [
    "Highway",
    "LabelStore",
    "HighwayCoverLabelling",
    "build_hcl",
    "query_distance",
    "landmark_distance",
    "upper_bound",
    "apply_edge_insertion",
    "find_affected",
    "repair_affected",
    "FastUpdateEngine",
    "apply_edge_deletion",
    "DynamicHCL",
    "DirectedHCL",
    "WeightedHCL",
]
