"""The highway cover labelling ``Γ = (H, L)`` (Definition 3.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.highway import Highway
from repro.core.labels import LabelStore

__all__ = ["HighwayCoverLabelling"]


@dataclass
class HighwayCoverLabelling:
    """A highway plus a distance labelling, as one value.

    Instances are produced by :func:`repro.core.construction.build_hcl` and
    mutated in place by :mod:`repro.core.inchl` (IncHL+) and
    :mod:`repro.core.decremental`.
    """

    highway: Highway
    labels: LabelStore

    @property
    def landmarks(self) -> list[int]:
        """Landmarks ``R`` in selection order."""
        return self.highway.landmarks

    @property
    def landmark_set(self) -> frozenset[int]:
        """Frozen landmark set for membership tests."""
        return self.highway.landmark_set

    @property
    def label_entries(self) -> int:
        """``size(L)`` — the paper's labelling-size metric."""
        return self.labels.total_entries

    def size_bytes(self) -> int:
        """Logical byte footprint of labels + highway (Table 1 accounting)."""
        return self.labels.size_bytes() + self.highway.size_bytes()

    def average_label_size(self, num_vertices: int) -> float:
        """``l = size(L) / |V|`` from the paper's complexity analysis."""
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        return self.labels.total_entries / num_vertices

    def copy(self) -> "HighwayCoverLabelling":
        """Independent deep copy (used by tests and what-if analyses)."""
        return HighwayCoverLabelling(self.highway.copy(), self.labels.copy())

    def freeze(self):
        """Freeze hook for :mod:`repro.serving.snapshot`.

        Marks every highway row and label row copy-on-write and returns
        ``(landmarks, landmark_set, highway_rows, label_rows, entries)`` —
        shallow-copied state that later in-place updates can never tear.
        Readers wrap it in the immutable views of
        :mod:`repro.serving.snapshot`; the cost is a pointer-level copy of
        the two outer dicts, not a deep copy of the labelling.
        """
        landmarks, landmark_set, highway_rows = self.highway.snapshot_state()
        label_rows, entries = self.labels.snapshot_rows()
        return landmarks, landmark_set, highway_rows, label_rows, entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HighwayCoverLabelling):
            return NotImplemented
        return self.highway == other.highway and self.labels == other.labels
