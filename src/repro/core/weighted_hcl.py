"""Weighted highway cover labelling — the paper's Section 5 extension.

"Our method can also be easily extended to handling weighted graphs by
using Dijkstra's algorithm instead of BFSs."  Concretely, every BFS in the
static construction, the query engine and IncHL+ becomes a Dijkstra pass:

* construction: one full Dijkstra per landmark; the landmark-on-a-shortest-
  path flags propagate over the weighted shortest-path DAG (``u`` is a
  parent of ``v`` iff ``dist[u] + w(u, v) == dist[v]``), which is safe to
  evaluate in settle order because positive weights make parents settle
  strictly earlier;
* queries: label join + bounded bidirectional Dijkstra on ``G[V \\ R]``;
* insertion of a weighted edge: a "jumped Dijkstra" finds the affected set
  (seeded at the far endpoint with ``d(r, near) + w``), and the repair
  sweeps affected vertices in increasing new distance with the same covered
  predicate as the unweighted case.

Exact float equality is used to recognise shortest-path parents, so edge
weights should be exactly representable in binary floating point (integers
or dyadic rationals) — the natural setting for the paper's ``N+``-valued
distances.  Arbitrary floats still give exact *queries*; only maintained
minimality could be perturbed by rounding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from heapq import heappop, heappush

from repro.core.highway import Highway
from repro.core.labels import LabelStore
from repro.exceptions import (
    GraphError,
    InvariantViolationError,
    VertexNotFoundError,
)
from repro.graph.traversal import INF, bidirectional_dijkstra
from repro.graph.weighted import WeightedGraph

__all__ = ["WeightedHCL"]


class WeightedHCL:
    """Dynamic weighted distance oracle with highway cover labelling.

    >>> g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 2.0)])
    >>> oracle = WeightedHCL(g, landmarks=[0])
    >>> oracle.query(0, 2)
    4.0
    >>> _ = oracle.insert_edge(0, 2, 1.0)
    >>> oracle.query(0, 2)
    1.0
    """

    def __init__(
        self,
        graph: WeightedGraph,
        landmarks: Sequence[int] | None = None,
        num_landmarks: int = 20,
    ) -> None:
        self._graph = graph
        if landmarks is None:
            ranked = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
            landmarks = ranked[: min(num_landmarks, graph.num_vertices)]
        else:
            landmarks = list(landmarks)
            for r in landmarks:
                if not graph.has_vertex(r):
                    raise VertexNotFoundError(r)
        if not landmarks:
            raise GraphError("at least one landmark is required")
        self._highway = Highway(landmarks)
        self._labels = LabelStore()
        for r in landmarks:
            self._labelling_dijkstra(r)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _labelling_dijkstra(self, r: int) -> None:
        """Full Dijkstra from ``r`` plus flag propagation in settle order."""
        adj = self._graph.adjacency()
        landmark_set = self._highway.landmark_set
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, r)]
        order: list[int] = []
        while heap:
            d, v = heappop(heap)
            if v in dist:
                continue
            dist[v] = d
            order.append(v)
            for w, weight in adj[v]:
                if w not in dist:
                    heappush(heap, (d + weight, w))
        has_lm: dict[int, bool] = {}
        for v in order:
            if v == r:
                has_lm[v] = False
                continue
            dv = dist[v]
            flag = False
            for u, weight in adj[v]:
                du = dist.get(u)
                if du is not None and du + weight == dv and has_lm[u]:
                    flag = True
                    break
            if v in landmark_set:
                self._highway.set_distance(r, v, dv)
                has_lm[v] = True
            else:
                has_lm[v] = flag
                if not flag:
                    self._labels.set_entry(v, r, dv)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> WeightedGraph:
        """The underlying weighted graph (mutate only through the oracle)."""
        return self._graph

    @property
    def landmarks(self) -> list[int]:
        """Landmarks in selection order."""
        return self._highway.landmarks

    @property
    def highway(self) -> Highway:
        """The highway ``H`` over the landmarks."""
        return self._highway

    @property
    def labels(self) -> LabelStore:
        """The distance labelling ``L``."""
        return self._labels

    @property
    def label_entries(self) -> int:
        """``size(L)`` — the paper's labelling-size metric."""
        return self._labels.total_entries

    def size_bytes(self) -> int:
        """Logical labelling footprint in bytes (Table 1 accounting)."""
        return self._labels.size_bytes() + self._highway.size_bytes()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _landmark_distance(self, r: int, v: int) -> float:
        if v == r:
            return 0.0
        if v in self._highway.landmark_set:
            return self._highway.distance(r, v)
        row = self._highway.row(r)
        best = INF
        for ri, delta in self._labels.label(v).items():
            via = row.get(ri)
            if via is not None and via + delta < best:
                best = via + delta
        return best

    def upper_bound(self, u: int, v: int) -> float:
        """``d⊤`` of Eq. (2), weighted."""
        best = INF
        label_u = self._labels.label(u)
        label_v = self._labels.label(v)
        for ri, du in label_u.items():
            row = self._highway.row(ri)
            for rj, dv in label_v.items():
                via = row.get(rj)
                if via is not None:
                    candidate = du + via + dv
                    if candidate < best:
                        best = candidate
        return best

    def query(self, u: int, v: int) -> float:
        """Exact weighted distance ``d(u, v)``; inf when disconnected."""
        if not self._graph.has_vertex(u):
            raise VertexNotFoundError(u)
        if not self._graph.has_vertex(v):
            raise VertexNotFoundError(v)
        if u == v:
            return 0.0
        landmark_set = self._highway.landmark_set
        if u in landmark_set:
            return self._landmark_distance(u, v)
        if v in landmark_set:
            return self._landmark_distance(v, u)
        bound = self.upper_bound(u, v)
        sparsified = bidirectional_dijkstra(
            self._graph, u, v, bound=bound, skip=landmark_set
        )
        return sparsified if sparsified <= bound else bound

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int, weight: float) -> dict[int, int]:
        """Insert weighted edge ``(a, b)`` and repair the labelling.

        Returns the affected count per landmark.
        """
        self._graph.add_edge(a, b, weight)
        weight = self._graph.weight(a, b)  # normalised float

        # Phase A: snapshot + orientation on the pristine labelling.
        plans: list[tuple[int, int, int, float]] = []
        affected_counts: dict[int, int] = {}
        for r in self.landmarks:
            da = self._landmark_distance(r, a)
            db = self._landmark_distance(r, b)
            if da == db:
                affected_counts[r] = 0
                continue
            anchor, root, anchor_dist, other = (
                (a, b, da, db) if da < db else (b, a, db, da)
            )
            if anchor_dist + weight > other:
                # The new edge is too long to lie on any shortest path.
                affected_counts[r] = 0
                continue
            plans.append((r, anchor, root, anchor_dist))

        # Phase B: jumped Dijkstra per landmark, before any repair.
        searches = []
        for r, anchor, root, anchor_dist in plans:
            searches.append(self._find_affected(r, anchor, root, anchor_dist, weight))

        # Phase C: repairs (only r-entries each; order irrelevant).
        for r, new_dist, border_old in searches:
            affected_counts[r] = len(new_dist)
            self._repair(r, new_dist, border_old)
        return affected_counts

    def insert_vertex(
        self, v: int, neighbors: Iterable[tuple[int, float]]
    ) -> list[dict[int, int]]:
        """Vertex insertion: new vertex plus weighted edges."""
        pairs = list(neighbors)
        self._graph.add_vertex(v)
        return [self.insert_edge(v, w, weight) for w, weight in pairs]

    def remove_edge(self, a: int, b: int) -> list[int]:
        """Delete weighted edge ``(a, b)`` (decremental extension).

        A landmark is relevant iff the edge can sit on one of its shortest
        paths: ``d(r,a) + w == d(r,b)`` or vice versa.  Relevant landmarks
        are rebuilt with one fresh labelling Dijkstra each (the same
        strategy as :mod:`repro.core.decremental`).
        """
        weight = self._graph.weight(a, b)
        relevant = []
        for r in self.landmarks:
            da = self._landmark_distance(r, a)
            db = self._landmark_distance(r, b)
            if da == db:
                continue
            if da + weight == db or db + weight == da:
                relevant.append(r)
        self._graph.remove_edge(a, b)
        for r in relevant:
            self._labels.clear_landmark(r)
            self._highway.clear_row(r)
            self._labelling_dijkstra(r)
        return relevant

    def _find_affected(
        self, r: int, anchor: int, root: int, anchor_dist: float, weight: float
    ):
        """Jumped Dijkstra (Algorithm 2 with a heap instead of a queue)."""
        adj = self._graph.adjacency()
        new_dist: dict[int, float] = {}
        border_old: dict[int, float] = {anchor: anchor_dist}
        heap: list[tuple[float, int]] = [(anchor_dist + weight, root)]
        while heap:
            d, v = heappop(heap)
            if v in new_dist or v in border_old:
                continue
            old = self._landmark_distance(r, v) if v != root else INF
            # the root is affected by construction (anchor_dist + weight
            # <= old distance was checked in Phase A)
            if v == root or old >= d:
                new_dist[v] = d
                for w, edge_weight in adj[v]:
                    if w not in new_dist and w not in border_old:
                        heappush(heap, (d + edge_weight, w))
            else:
                border_old[v] = old
        return r, new_dist, border_old

    def _repair(self, r: int, new_dist: dict[int, float], border_old) -> None:
        """Algorithm 3 with a distance-ordered sweep (weights > 0 make all
        shortest-path parents settle strictly earlier)."""
        adj = self._graph.adjacency()
        labels = self._labels
        highway = self._highway
        landmark_set = highway.landmark_set
        covered: dict[int, bool] = {}
        for v in sorted(new_dist, key=new_dist.__getitem__):
            dv = new_dist[v]
            if v in landmark_set:
                covered[v] = True
                if highway.distance(r, v) != dv:
                    highway.set_distance(r, v, dv)
                continue
            is_covered = False
            has_parent = False
            for u, weight in adj[v]:
                du = new_dist.get(u)
                if du is not None:
                    if du + weight != dv:
                        continue
                    has_parent = True
                    if covered[u]:
                        is_covered = True
                        break
                    continue
                if u == r:
                    if weight == dv:
                        has_parent = True
                    continue
                old = border_old.get(u)
                if old is None or old + weight != dv:
                    continue
                has_parent = True
                if u in landmark_set or not labels.has_entry(u, r):
                    is_covered = True
                    break
            if not has_parent:
                raise InvariantViolationError(
                    f"weighted repair: affected vertex {v} at distance {dv} "
                    f"(landmark {r}) has no shortest-path parent"
                )
            covered[v] = is_covered
            if is_covered:
                labels.remove_entry(v, r)
            else:
                labels.set_entry(v, r, dv)
