"""Directed highway cover labelling — the paper's Section 5 extension.

"For directed graphs, we can store sets of forward and backward labels,
namely ``L_f(v)`` and ``L_b(v)``, for each vertex ``v`` which contain pairs
``(r_i, δ_{r_i v})`` from forward and backward BFSs w.r.t. each landmark.
Accordingly, we can store forward and backward highways ``H_f`` and ``H_b``.
Then, we conduct two BFSs to update these labels and highways: one in the
forward direction and the other in the backward direction."

Concretely:

* ``L_f(v)`` holds ``(r, d(r → v))`` — minimal rule: kept iff no shortest
  ``r → v`` path contains another landmark;
* ``L_b(v)`` holds ``(r, d(v → r))`` — the mirror statement on reversed
  edges;
* one directed highway matrix ``δ_H(r1, r2) = d(r1 → r2)`` plays the role
  of both ``H_f`` and ``H_b`` (they are transposes of each other);
* ``Q(u, v)``: join ``L_b(u)`` with ``L_f(v)`` through the highway, then a
  bounded bidirectional *directed* search on the landmark-free subgraph;
* an inserted arc ``a → b`` triggers a *forward* IncHL+ pass (distances
  from landmarks, expanding out-edges from ``b``) and a *backward* pass
  (distances to landmarks, expanding in-edges from ``a``).

Both passes reuse one generic implementation parameterised by the
expansion direction; the undirected module's three-phase structure and
covered-predicate reasoning (docs/DESIGN.md §4.3) carry over verbatim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.labels import LabelStore
from repro.exceptions import (
    GraphError,
    InvariantViolationError,
    NotALandmarkError,
    VertexNotFoundError,
)
from repro.graph.digraph import DynamicDiGraph
from repro.graph.traversal import INF

__all__ = ["DirectedHighway", "DirectedHCL"]


class DirectedHighway:
    """Asymmetric landmark distance table: ``δ_H(r1, r2) = d(r1 → r2)``."""

    __slots__ = ("_landmarks", "_landmark_set", "_rows")

    def __init__(self, landmarks: Iterable[int]) -> None:
        self._landmarks = list(landmarks)
        self._landmark_set = frozenset(self._landmarks)
        if len(self._landmark_set) != len(self._landmarks):
            raise ValueError("duplicate landmarks")
        self._rows: dict[int, dict[int, float]] = {r: {r: 0} for r in self._landmarks}

    @property
    def landmarks(self) -> list[int]:
        """Landmarks in selection order.  Must not be mutated."""
        return self._landmarks

    @property
    def landmark_set(self) -> frozenset[int]:
        """Frozen landmark set for membership tests."""
        return self._landmark_set

    def distance(self, r1: int, r2: int) -> float:
        """``d(r1 → r2)``; infinity when unreachable."""
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        try:
            return self._rows[r1].get(r2, INF)
        except KeyError:
            raise NotALandmarkError(r1) from None

    def set_distance(self, r1: int, r2: int, distance: float) -> None:
        """Set the one-way distance ``δ_H(r1 → r2)``."""
        if r1 not in self._landmark_set:
            raise NotALandmarkError(r1)
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        if r1 == r2:
            if distance != 0:
                raise ValueError("diagonal must stay 0")
            return
        self._rows[r1][r2] = distance

    def row(self, r: int) -> dict[int, float]:
        """Forward row of ``r`` (distances from ``r`` to other landmarks)."""
        try:
            return self._rows[r]
        except KeyError:
            raise NotALandmarkError(r) from None

    def clear_row(self, r: int) -> None:
        """Drop all distances *from* ``r`` (decremental forward rebuild)."""
        if r not in self._landmark_set:
            raise NotALandmarkError(r)
        self._rows[r] = {r: 0}

    def clear_column(self, r: int) -> None:
        """Drop all distances *to* ``r`` (decremental backward rebuild)."""
        if r not in self._landmark_set:
            raise NotALandmarkError(r)
        for other, row in self._rows.items():
            if other != r:
                row.pop(r, None)

    def column(self, r: int) -> dict[int, float]:
        """Backward view: distances from each landmark *to* ``r``."""
        if r not in self._landmark_set:
            raise NotALandmarkError(r)
        return {
            other: row[r] for other, row in self._rows.items() if r in row
        }

    def as_dict(self) -> dict[int, dict[int, float]]:
        """Deep-copied plain-dict snapshot of the forward rows."""
        return {r: dict(row) for r, row in self._rows.items()}


class DirectedHCL:
    """Dynamic directed distance oracle with highway cover labelling.

    >>> g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
    >>> oracle = DirectedHCL(g, landmarks=[0])
    >>> oracle.query(1, 0)
    2
    >>> _ = oracle.insert_edge(1, 0)
    >>> oracle.query(1, 0)
    1
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        landmarks: Sequence[int] | None = None,
        num_landmarks: int = 20,
    ) -> None:
        self._graph = graph
        if landmarks is None:
            ranked = sorted(
                graph.vertices(),
                key=lambda v: (-(graph.out_degree(v) + graph.in_degree(v)), v),
            )
            landmarks = ranked[: min(num_landmarks, graph.num_vertices)]
        else:
            landmarks = list(landmarks)
            for r in landmarks:
                if not graph.has_vertex(r):
                    raise VertexNotFoundError(r)
        if not landmarks:
            raise GraphError("at least one landmark is required")
        self._highway = DirectedHighway(landmarks)
        self._forward = LabelStore()   # (r, d(r -> v)) at v
        self._backward = LabelStore()  # (r, d(v -> r)) at v
        for r in landmarks:
            self._labelling_bfs(r, forward=True)
            self._labelling_bfs(r, forward=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _labelling_bfs(self, r: int, forward: bool) -> None:
        """Directed analogue of the undirected flag-carrying full BFS."""
        adj = self._graph.out_adjacency() if forward else self._graph.in_adjacency()
        labels = self._forward if forward else self._backward
        landmark_set = self._highway.landmark_set
        dist: dict[int, int] = {r: 0}
        has_lm: dict[int, bool] = {r: False}
        frontier = [r]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: list[int] = []
            for v in frontier:
                flag = has_lm[v]
                for w in adj[v]:
                    seen = dist.get(w)
                    if seen is None:
                        dist[w] = depth
                        has_lm[w] = flag
                        next_frontier.append(w)
                    elif seen == depth and flag and not has_lm[w]:
                        has_lm[w] = True
            for w in next_frontier:
                if w in landmark_set:
                    if forward:
                        self._highway.set_distance(r, w, depth)
                    else:
                        self._highway.set_distance(w, r, depth)
                    has_lm[w] = True
                elif not has_lm[w]:
                    labels.set_entry(w, r, depth)
            frontier = next_frontier

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicDiGraph:
        """The underlying digraph (mutate only through the oracle)."""
        return self._graph

    @property
    def landmarks(self) -> list[int]:
        """Landmarks in selection order.  Must not be mutated."""
        return self._highway.landmarks

    @property
    def highway(self) -> DirectedHighway:
        """The directed highway ``H`` (forward distances)."""
        return self._highway

    @property
    def forward_labels(self) -> LabelStore:
        """Labels from landmarks: entries ``(r, d(r → v))`` at ``v``."""
        return self._forward

    @property
    def backward_labels(self) -> LabelStore:
        """Labels to landmarks: entries ``(r, d(v → r))`` at ``v``."""
        return self._backward

    @property
    def label_entries(self) -> int:
        """``size(L_f) + size(L_b)``."""
        return self._forward.total_entries + self._backward.total_entries

    def size_bytes(self) -> int:
        """Logical labelling footprint in bytes (Table 1 accounting)."""
        n = len(self._highway.landmarks)
        return (
            self._forward.size_bytes()
            + self._backward.size_bytes()
            + n * n * 4
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _from_landmark(self, r: int, v: int) -> float:
        """Exact ``d(r → v)`` from the forward labelling."""
        if v == r:
            return 0
        if v in self._highway.landmark_set:
            return self._highway.distance(r, v)
        row = self._highway.row(r)
        best = INF
        for ri, delta in self._forward.label(v).items():
            via = row.get(ri)
            if via is not None and via + delta < best:
                best = via + delta
        return best

    def _to_landmark(self, v: int, r: int) -> float:
        """Exact ``d(v → r)`` from the backward labelling."""
        if v == r:
            return 0
        if v in self._highway.landmark_set:
            return self._highway.distance(v, r)
        best = INF
        for ri, delta in self._backward.label(v).items():
            via = self._highway.distance(ri, r)
            if delta + via < best:
                best = delta + via
        return best

    def upper_bound(self, u: int, v: int) -> float:
        """``d⊤``: best ``u → r_i → r_j → v`` through the highway."""
        best = INF
        label_u = self._backward.label(u)
        label_v = self._forward.label(v)
        for ri, du in label_u.items():
            row = self._highway.row(ri)
            for rj, dv in label_v.items():
                via = row.get(rj)
                if via is not None:
                    candidate = du + via + dv
                    if candidate < best:
                        best = candidate
        return best

    def query(self, u: int, v: int) -> float:
        """Exact directed distance ``d(u → v)``; inf when unreachable."""
        if not self._graph.has_vertex(u):
            raise VertexNotFoundError(u)
        if not self._graph.has_vertex(v):
            raise VertexNotFoundError(v)
        if u == v:
            return 0
        landmark_set = self._highway.landmark_set
        if u in landmark_set:
            return self._from_landmark(u, v)
        if v in landmark_set:
            return self._to_landmark(u, v)
        bound = self.upper_bound(u, v)
        sparsified = self._bounded_directed_search(u, v, bound)
        return sparsified if sparsified <= bound else bound

    def _bounded_directed_search(self, u: int, v: int, bound: float) -> float:
        """Bounded bidirectional directed BFS skipping landmark interiors."""
        skip = self._highway.landmark_set
        out_adj = self._graph.out_adjacency()
        in_adj = self._graph.in_adjacency()
        if bound < 1:
            return INF
        dist_f: dict[int, int] = {u: 0}
        dist_b: dict[int, int] = {v: 0}
        frontier_f = [u]
        frontier_b = [v]
        radius_f = radius_b = 0
        best = INF
        while frontier_f and frontier_b and radius_f + radius_b < min(best, bound):
            if len(frontier_f) <= len(frontier_b):
                frontier, adj = frontier_f, out_adj
                dist_own, dist_other = dist_f, dist_b
            else:
                frontier, adj = frontier_b, in_adj
                dist_own, dist_other = dist_b, dist_f
            next_frontier: list[int] = []
            for x in frontier:
                base = dist_own[x] + 1
                for w in adj[x]:
                    other = dist_other.get(w)
                    if other is not None and base + other < best:
                        best = base + other
                    if w not in dist_own and w not in skip:
                        dist_own[w] = base
                        next_frontier.append(w)
            if dist_own is dist_f:
                frontier_f = next_frontier
                radius_f += 1
            else:
                frontier_b = next_frontier
                radius_b += 1
        return best if best <= bound else INF

    # ------------------------------------------------------------------
    # Updates (Section 5: one forward and one backward pass)
    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int) -> dict[str, int]:
        """Insert arc ``a → b`` and repair both labelling directions.

        Returns per-direction affected counts.
        """
        self._graph.add_edge(a, b)
        forward_affected = self._update_direction(a, b, forward=True)
        backward_affected = self._update_direction(b, a, forward=False)
        return {"forward": forward_affected, "backward": backward_affected}

    def insert_vertex(self, v: int, out_neighbors: Iterable[int],
                      in_neighbors: Iterable[int] = ()) -> list[dict[str, int]]:
        """Vertex insertion: new vertex plus out- and in-arcs."""
        outs = list(out_neighbors)
        ins = list(in_neighbors)
        self._graph.add_vertex(v)
        stats = []
        for w in outs:
            stats.append(self.insert_edge(v, w))
        for w in ins:
            stats.append(self.insert_edge(w, v))
        return stats

    def shortest_path(self, u: int, v: int) -> list[int] | None:
        """One exact directed shortest path ``u → v``; ``None`` if unreachable.

        Greedy descent over distance queries (the directed analogue of
        :func:`repro.core.paths.shortest_path`): from the current vertex,
        step to any out-neighbour one unit closer to ``v`` — such a
        neighbour exists on every shortest path.
        """
        from repro.exceptions import InvariantViolationError
        from repro.graph.traversal import INF

        total = self.query(u, v)
        if total == INF:
            return None
        path = [u]
        current = u
        remaining = int(total)
        while remaining > 0:
            for w in self._graph.out_neighbors(current):
                if w == v or self.query(w, v) == remaining - 1:
                    path.append(w)
                    current = w
                    remaining -= 1
                    break
            else:
                raise InvariantViolationError(
                    f"no out-neighbour of {current} advances towards {v} "
                    f"(remaining={remaining}) — labelling out of sync"
                )
        return path

    def remove_edge(self, a: int, b: int) -> dict[str, list[int]]:
        """Delete arc ``a → b`` (decremental extension, cf.
        :mod:`repro.core.decremental`).

        A landmark's forward labelling can only change if the arc sat on its
        forward shortest-path DAG (``d(r→a) + 1 == d(r→b)``); symmetrically
        for backward (``d(b→r) + 1 == d(a→r)``).  Relevant directions are
        rebuilt with one fresh labelling BFS each.
        """
        forward_relevant = []
        backward_relevant = []
        for r in self.landmarks:
            fa, fb = self._from_landmark(r, a), self._from_landmark(r, b)
            if fa != fb and fa + 1 == fb:  # != guards the INF == INF case
                forward_relevant.append(r)
            ba, bb = self._to_landmark(b, r), self._to_landmark(a, r)
            if ba != bb and ba + 1 == bb:
                backward_relevant.append(r)
        self._graph.remove_edge(a, b)
        for r in forward_relevant:
            self._forward.clear_landmark(r)
            self._highway.clear_row(r)
            self._labelling_bfs(r, forward=True)
        for r in backward_relevant:
            self._backward.clear_landmark(r)
            self._highway.clear_column(r)
            self._labelling_bfs(r, forward=False)
        return {"forward": forward_relevant, "backward": backward_relevant}

    def _update_direction(self, anchor_end: int, root_end: int, forward: bool) -> int:
        """One IncHL+ pass.  ``forward``: distances *from* landmarks change
        downstream of ``b`` (expand out-edges); backward: distances *to*
        landmarks change upstream of ``a`` (expand in-edges)."""
        if forward:
            expand_adj = self._graph.out_adjacency()
            parent_adj = self._graph.in_adjacency()
            labels = self._forward
            old_dist = self._from_landmark
        else:
            expand_adj = self._graph.in_adjacency()
            parent_adj = self._graph.out_adjacency()
            labels = self._backward
            old_dist = lambda r, x: self._to_landmark(x, r)  # noqa: E731

        landmark_set = self._highway.landmark_set
        plans = []
        for r in self.landmarks:
            da = old_dist(r, anchor_end)
            db = old_dist(r, root_end)
            # Directed arcs are traversed one way only: the pass repairs
            # distances through anchor -> root, so there is no orientation
            # swap — the landmark is skipped unless the arc strictly
            # shortens or duplicates a path (d(anchor) + 1 <= d(root)).
            if not da < db:
                continue
            plans.append((r, anchor_end, root_end, da))

        searches = []
        for r, anchor, root, anchor_dist in plans:
            new_dist: dict[int, float] = {root: anchor_dist + 1}
            border_old: dict[int, float] = {anchor: anchor_dist}
            # Prospective shortest-path parents: the repair consults
            # *opposite-direction* neighbours, which the expansion never
            # classifies.  They are recorded separately — folding them into
            # ``border_old`` would block the expansion from later marking
            # them affected.  Values are pristine (finds precede repairs).
            parent_old: dict[int, float] = {}
            frontier = [root]
            depth = anchor_dist + 1
            while frontier:
                depth += 1
                next_frontier = []
                for x in frontier:
                    for w in expand_adj[x]:
                        if w in new_dist or w in border_old:
                            continue
                        old = old_dist(r, w)
                        if old >= depth:
                            new_dist[w] = depth
                            next_frontier.append(w)
                        else:
                            border_old[w] = old
                    for u in parent_adj[x]:
                        if u not in new_dist and u not in parent_old:
                            parent_old[u] = old_dist(r, u)
                frontier = next_frontier
            # Merge for the repair: expansion-rejected values and parent
            # recordings agree wherever they overlap (both are exact old
            # distances); affected vertices are looked up in new_dist first.
            border_old.update(parent_old)
            searches.append((r, new_dist, border_old))

        total_affected = 0
        for r, new_dist, border_old in searches:
            total_affected += len(new_dist)
            self._repair_direction(
                r, new_dist, border_old, parent_adj, labels, landmark_set, forward
            )
        return total_affected

    def _repair_direction(
        self, r, new_dist, border_old, parent_adj, labels, landmark_set, forward
    ) -> None:
        by_level: dict[float, list[int]] = {}
        for v, d in new_dist.items():
            by_level.setdefault(d, []).append(v)
        covered: dict[int, bool] = {}
        for depth in sorted(by_level):
            parent_depth = depth - 1
            for v in by_level[depth]:
                if v in landmark_set:
                    covered[v] = True
                    if forward:
                        self._highway.set_distance(r, v, depth)
                    else:
                        self._highway.set_distance(v, r, depth)
                    continue
                is_covered = False
                has_parent = False
                for u in parent_adj[v]:
                    du = new_dist.get(u)
                    if du is not None:
                        if du != parent_depth:
                            continue
                        has_parent = True
                        if covered[u]:
                            is_covered = True
                            break
                        continue
                    if u == r:
                        if parent_depth == 0:
                            has_parent = True
                        continue
                    old = border_old.get(u)
                    if old is None or old != parent_depth:
                        continue
                    has_parent = True
                    if u in landmark_set or not labels.has_entry(u, r):
                        is_covered = True
                        break
                if not has_parent:
                    raise InvariantViolationError(
                        f"directed repair: affected vertex {v} at depth "
                        f"{depth} (landmark {r}, forward={forward}) has no "
                        f"shortest-path parent"
                    )
                covered[v] = is_covered
                if is_covered:
                    labels.remove_entry(v, r)
                else:
                    labels.set_entry(v, r, int(depth))
