"""Static construction of a minimal highway cover labelling.

Implements the construction of Farhan et al. (EDBT 2019) that the paper
builds on, in the formulation used by Theorem 5.2's minimality argument:

    the entry ``(r, d_G(r, v))`` belongs to ``L(v)`` **iff** ``v ∉ R`` and
    no shortest path between ``r`` and ``v`` contains a landmark other
    than ``r``.

One *full* BFS per landmark carries a boolean "some shortest path to here
passes through another landmark" flag across the shortest-path DAG; a vertex
is labelled iff its flag stays false.  A full (unpruned) BFS keeps every
landmark-pair distance exact, so the highway needs no separate pass.  Total
cost ``O(|R| (n + m))``; independent of landmark order (the flag of a vertex
depends only on the DAG, not on processing order) — matching the labelling's
order-independence property.

The per-landmark BFS kernel itself lives in
:func:`repro.parallel.sweeps.landmark_sweep`; landmark independence means
the sweeps can fan out across processes, which ``workers=`` enables via
the :class:`~repro.parallel.engine.LandmarkEngine` (serial and parallel
executions produce byte-identical labellings).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import GraphError, VertexNotFoundError
from repro.parallel.engine import LandmarkEngine
from repro.parallel.sweeps import construction_task, landmark_sweep, merge_sweep

__all__ = ["build_hcl"]


def build_hcl(
    graph,
    landmarks: Sequence[int] | Iterable[int],
    workers: int | None = None,
) -> HighwayCoverLabelling:
    """Build the minimal highway cover labelling of ``graph`` for ``landmarks``.

    ``workers`` fans the per-landmark BFS sweeps out across a process pool
    (``None``/``1`` serial, ``0`` all CPUs, ``n`` exactly ``n``); the
    result is identical regardless of worker count.

    >>> from repro.graph.generators import ring_of_cliques
    >>> g = ring_of_cliques(3, 4)
    >>> gamma = build_hcl(g, [0, 4])
    >>> gamma.highway.distance(0, 4)
    2
    >>> build_hcl(g, [0, 4], workers=2) == gamma
    True
    """
    landmark_list = list(landmarks)
    if not landmark_list:
        raise GraphError("at least one landmark is required")
    for r in landmark_list:
        if not graph.has_vertex(r):
            raise VertexNotFoundError(r)

    highway = Highway(landmark_list)
    labels = LabelStore()
    landmark_set = highway.landmark_set
    adj = graph.adjacency()

    engine = LandmarkEngine(workers)
    engine.map_unordered_merge(
        construction_task,
        (adj, landmark_set),
        landmark_list,
        lambda sweep: merge_sweep(highway, labels, sweep),
    )
    return HighwayCoverLabelling(highway, labels)


def _labelling_bfs(
    adj: dict[int, list[int]],
    r: int,
    landmark_set: frozenset[int],
    highway: Highway,
    labels: LabelStore,
) -> None:
    """One in-place labelling BFS from landmark ``r`` (single-landmark form).

    Thin wrapper over the pure kernel for callers that rebuild one
    landmark at a time into live stores (decremental rebuilds, landmark
    maintenance).  Precondition: ``r`` currently has no label entries —
    a fresh landmark, or one whose row/entries were just cleared.
    """
    merge_sweep(highway, labels, landmark_sweep(adj, r, landmark_set))
