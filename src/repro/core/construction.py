"""Static construction of a minimal highway cover labelling.

Implements the construction of Farhan et al. (EDBT 2019) that the paper
builds on, in the formulation used by Theorem 5.2's minimality argument:

    the entry ``(r, d_G(r, v))`` belongs to ``L(v)`` **iff** ``v ∉ R`` and
    no shortest path between ``r`` and ``v`` contains a landmark other
    than ``r``.

One *full* BFS per landmark carries a boolean "some shortest path to here
passes through another landmark" flag across the shortest-path DAG; a vertex
is labelled iff its flag stays false.  A full (unpruned) BFS keeps every
landmark-pair distance exact, so the highway needs no separate pass.  Total
cost ``O(|R| (n + m))``; independent of landmark order (the flag of a vertex
depends only on the DAG, not on processing order) — matching the labelling's
order-independence property.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import GraphError, VertexNotFoundError

__all__ = ["build_hcl"]


def build_hcl(graph, landmarks: Sequence[int] | Iterable[int]) -> HighwayCoverLabelling:
    """Build the minimal highway cover labelling of ``graph`` for ``landmarks``.

    >>> from repro.graph.generators import ring_of_cliques
    >>> g = ring_of_cliques(3, 4)
    >>> gamma = build_hcl(g, [0, 4])
    >>> gamma.highway.distance(0, 4)
    2
    """
    landmark_list = list(landmarks)
    if not landmark_list:
        raise GraphError("at least one landmark is required")
    for r in landmark_list:
        if not graph.has_vertex(r):
            raise VertexNotFoundError(r)

    highway = Highway(landmark_list)
    labels = LabelStore()
    landmark_set = highway.landmark_set
    adj = graph.adjacency()

    for r in landmark_list:
        _labelling_bfs(adj, r, landmark_set, highway, labels)
    return HighwayCoverLabelling(highway, labels)


def _labelling_bfs(
    adj: dict[int, list[int]],
    r: int,
    landmark_set: frozenset[int],
    highway: Highway,
    labels: LabelStore,
) -> None:
    """Full BFS from landmark ``r`` with landmark-on-a-shortest-path flags.

    ``has_lm[v]`` = "some shortest path from ``r`` to ``v`` contains a
    landmark in ``R \\ {r}`` (possibly ``v`` itself)".  The flag of a level-d
    vertex is final once all level-(d-1) parents have been expanded, which a
    level-synchronous sweep guarantees.
    """
    dist: dict[int, int] = {r: 0}
    has_lm: dict[int, bool] = {r: False}
    frontier = [r]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for v in frontier:
            flag = has_lm[v]
            for w in adj[v]:
                seen = dist.get(w)
                if seen is None:
                    dist[w] = depth
                    has_lm[w] = flag
                    next_frontier.append(w)
                elif seen == depth and flag and not has_lm[w]:
                    # Another shortest-path parent contributes a landmark.
                    has_lm[w] = True
        # Levels are complete here: record highway rows, force flags of
        # landmark vertices (paths *through* them are covered), emit labels.
        for w in next_frontier:
            if w in landmark_set:
                highway.set_distance(r, w, depth)
                has_lm[w] = True
            elif not has_lm[w]:
                labels.set_entry(w, r, depth)
        frontier = next_frontier
