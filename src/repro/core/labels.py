"""The distance labelling ``L``: per-vertex landmark distance entries.

Section 3: the label of a vertex ``v`` is a set of distance entries
``L(v) = {(r_1, δ_L(r_1, v)), ...}`` with ``δ_L(r_i, v) = d_G(r_i, v)``.
``size(L) = Σ_v |L(v)|`` is the quantity the paper's Table 1 reports (as
bytes, at 8 bytes per entry in the authors' C++ layout: 32-bit landmark id +
32-bit distance).
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["LabelStore"]

_EMPTY: dict[int, int] = {}


class LabelStore:
    """Mutable mapping ``vertex -> {landmark: distance}``.

    Vertices without entries take no storage; reads of unknown vertices
    return an empty label, which is the correct semantics for freshly
    inserted (isolated) vertices.

    >>> store = LabelStore()
    >>> store.set_entry(5, 0, 3)
    >>> store.label(5)
    {0: 3}
    >>> store.total_entries
    1
    """

    __slots__ = ("_labels", "_total", "_shared")

    def __init__(self) -> None:
        self._labels: dict[int, dict[int, int]] = {}
        self._total = 0
        # Vertices whose label dicts are shared with live snapshots (see
        # :meth:`snapshot_rows`); ``None`` until the first snapshot, so the
        # non-serving hot paths pay a single attribute test.
        self._shared: set[int] | None = None

    def _cow(self, v: int) -> None:
        """Detach ``L(v)`` from any live snapshot before mutating it."""
        shared = self._shared
        if shared is not None and v in shared:
            self._labels[v] = dict(self._labels[v])
            shared.discard(v)

    def snapshot_rows(self) -> tuple[dict[int, dict[int, int]], int]:
        """Freeze hook for :mod:`repro.serving.snapshot`.

        Returns ``(rows, total_entries)`` where ``rows`` is a *shallow* copy
        of the vertex map: the per-vertex label dicts are shared with this
        store, and every subsequent in-place mutation copies the affected
        row first (copy-on-write at label-row granularity).  The returned
        mapping is therefore a stable point-in-time view that later writes
        can never tear, at pointer-copy cost instead of a deep copy.
        """
        self._shared = set(self._labels)
        return dict(self._labels), self._total

    def label(self, v: int) -> dict[int, int]:
        """The label of ``v`` as ``{landmark: distance}``.

        The returned mapping is the live internal dict when ``v`` has
        entries (treat as read-only) and a shared empty dict otherwise.
        """
        return self._labels.get(v, _EMPTY)

    def entry(self, v: int, r: int) -> int | None:
        """``δ_L(r, v)`` or ``None`` when ``(r, ·) ∉ L(v)``."""
        return self._labels.get(v, _EMPTY).get(r)

    def has_entry(self, v: int, r: int) -> bool:
        """Whether ``(r, ·) ∈ L(v)``."""
        return r in self._labels.get(v, _EMPTY)

    def set_entry(self, v: int, r: int, distance: int) -> None:
        """Add or modify the entry of landmark ``r`` in ``L(v)``."""
        if distance < 0:
            raise ValueError(f"distances must be non-negative, got {distance!r}")
        self._cow(v)
        label = self._labels.get(v)
        if label is None:
            self._labels[v] = {r: distance}
            self._total += 1
        elif r not in label:
            label[r] = distance
            self._total += 1
        else:
            label[r] = distance

    def bulk_set_new(self, r: int, vertices: list[int], distance: int) -> None:
        """Add the entry ``(r, distance)`` to every vertex in ``vertices``.

        Construction fast path: the caller guarantees no listed vertex
        already has an ``r``-entry (a BFS emits each vertex at most once),
        which lets the entry count advance by ``len(vertices)`` without
        per-vertex branching.  Violating the precondition corrupts
        :attr:`total_entries`; use :meth:`set_entry` when unsure.
        """
        if distance < 0:
            raise ValueError(f"distances must be non-negative, got {distance!r}")
        labels = self._labels
        shared = self._shared
        for v in vertices:
            label = labels.get(v)
            if label is None:
                labels[v] = {r: distance}
            elif shared is not None and v in shared:
                label = dict(label)
                label[r] = distance
                labels[v] = label
                shared.discard(v)
            else:
                label[r] = distance
        self._total += len(vertices)

    def bulk_set(self, r: int, vertices: list[int], distance: int) -> tuple[int, int]:
        """Add or modify the entry ``(r, distance)`` on every vertex.

        The update-path counterpart of :meth:`bulk_set_new`: vertices may
        or may not already carry an ``r``-entry (RepairAffected both adds
        and modifies), so the loop counts ``(added, modified)`` — one dict
        probe per vertex instead of the ``has_entry`` + ``set_entry``
        double lookup.  Copy-on-write safe.
        """
        if distance < 0:
            raise ValueError(f"distances must be non-negative, got {distance!r}")
        labels = self._labels
        shared = self._shared
        added = 0
        for v in vertices:
            label = labels.get(v)
            if label is None:
                labels[v] = {r: distance}
                added += 1
                continue
            if shared is not None and v in shared:
                label = dict(label)
                labels[v] = label
                shared.discard(v)
            if r not in label:
                added += 1
            label[r] = distance
        self._total += added
        return added, len(vertices) - added

    def bulk_remove(self, r: int, vertices: list[int]) -> int:
        """Remove the ``r``-entry from every listed vertex that has one.

        Returns the number of entries actually removed (RepairAffected
        feeds it every *covered* vertex; some never carried an entry).
        Copy-on-write safe.
        """
        labels = self._labels
        shared = self._shared
        removed = 0
        for v in vertices:
            label = labels.get(v)
            if label is None or r not in label:
                continue
            if shared is not None and v in shared:
                label = dict(label)
                labels[v] = label
                shared.discard(v)
            del label[r]
            removed += 1
            if not label:
                del labels[v]
        self._total -= removed
        return removed

    def remove_entry(self, v: int, r: int) -> bool:
        """Remove the entry of landmark ``r`` from ``L(v)`` if present.

        Returns whether an entry was removed.  This is the operation that
        distinguishes IncHL+ from IncPLL: stale entries are deleted, keeping
        the labelling minimal (Theorem 5.2).
        """
        label = self._labels.get(v)
        if label is None or r not in label:
            return False
        self._cow(v)
        label = self._labels[v]
        del label[r]
        self._total -= 1
        if not label:
            del self._labels[v]
        return True

    def clear_landmark(self, r: int) -> int:
        """Remove the entry of landmark ``r`` from every label.

        Returns the number of entries removed.  Used by the decremental
        extension, which rebuilds one landmark's labelling from scratch.
        """
        removed = 0
        empty: list[int] = []
        shared = self._shared
        for v, label in self._labels.items():
            if r in label:
                if shared is not None and v in shared:
                    label = dict(label)
                    self._labels[v] = label
                    shared.discard(v)
                del label[r]
                removed += 1
                if not label:
                    empty.append(v)
        for v in empty:
            del self._labels[v]
        self._total -= removed
        return removed

    def label_size(self, v: int) -> int:
        """``|L(v)|``."""
        return len(self._labels.get(v, _EMPTY))

    @property
    def total_entries(self) -> int:
        """``size(L) = Σ_v |L(v)|``."""
        return self._total

    def size_bytes(self, bytes_per_entry: int = 8) -> int:
        """Logical storage footprint (Table 1 accounting)."""
        return self._total * bytes_per_entry

    def vertices_with_labels(self) -> Iterator[int]:
        """Vertices that currently have at least one entry."""
        return iter(self._labels)

    def items(self) -> Iterator[tuple[int, dict[int, int]]]:
        """Iterate ``(vertex, label)`` pairs for vertices with entries."""
        return iter(self._labels.items())

    def copy(self) -> "LabelStore":
        """Independent deep copy of the store."""
        clone = LabelStore()
        clone._labels = {v: dict(lbl) for v, lbl in self._labels.items()}
        clone._total = self._total
        return clone

    def as_dict(self) -> dict[int, dict[int, int]]:
        """Deep-copied plain-dict snapshot (for validation/serialization)."""
        return {v: dict(lbl) for v, lbl in self._labels.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelStore):
            return NotImplemented
        return self._labels == other._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelStore(vertices={len(self._labels)}, entries={self._total})"
