"""Decremental updates — the paper's stated future work, as an extension.

Section 7: "In future, we plan to further investigate the effects of
decremental updates on graphs since they are also commonly used in
practice."  This module provides a *correct* decremental maintenance so the
library supports fully dynamic graphs; it deliberately favours simplicity
over the per-vertex surgery an IncHL+-style decrement would need.

Strategy
--------
Deleting edge ``(a, b)`` can only change the labelling w.r.t. a landmark
``r`` if some *old* shortest path from ``r`` ran through the edge, which
requires ``|d_G(r,a) - d_G(r,b)| == 1`` (consecutive BFS levels).  For each
such *relevant* landmark the labelling is recomputed by one fresh labelling
BFS (clearing the old row/entries first); irrelevant landmarks keep their
rows and entries untouched — their shortest-path sets are provably
unchanged.  Cost: ``O(|R_relevant| (n + m))`` per deletion, against
``O(|R| (n + m))`` for a full rebuild.

Note the subtlety that makes decremental updates genuinely harder than
incremental ones (and why the paper deferred them): a deletion can force
entries to be *added* — destroying the only shortest path that passed
through another landmark un-covers a vertex — so repairing cannot be
confined to vertices whose distance changed.  The per-landmark rebuild
sidesteps that case soundly, and the test-suite verifies equality with a
from-scratch rebuild after random deletion sequences.
"""

from __future__ import annotations

from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import landmark_distance
from repro.exceptions import InvariantViolationError
from repro.parallel.engine import LandmarkEngine
from repro.parallel.sweeps import construction_task, merge_sweep

__all__ = ["apply_edge_deletion", "relevant_landmarks_for_deletion"]


def relevant_landmarks_for_deletion(
    labelling: HighwayCoverLabelling, a: int, b: int
) -> list[int]:
    """Landmarks whose shortest-path DAG may contain the edge ``(a, b)``.

    Evaluated on the *pre-deletion* labelling: landmark queries are exact
    (Eq. 1), and only landmarks with ``|d(r,a) - d(r,b)| == 1`` can route a
    shortest path through the edge.
    """
    relevant = []
    for r in labelling.landmarks:
        da = landmark_distance(labelling, r, a)
        db = landmark_distance(labelling, r, b)
        if da == db:
            # Equal (including both unreachable): BFS levels coincide, so no
            # shortest path can traverse the edge.
            continue
        if da + 1 == db or db + 1 == da:
            relevant.append(r)
    return relevant


def apply_edge_deletion(
    graph,
    labelling: HighwayCoverLabelling,
    a: int,
    b: int,
    workers: int | None = None,
) -> list[int]:
    """Remove edge ``(a, b)`` from ``graph`` and repair the labelling.

    The edge must be present; returns the landmarks that were recomputed.
    ``workers`` fans the per-landmark rebuild sweeps out across a process
    pool (``None``/``1`` serial, ``0`` all CPUs).  Rebuild sweeps read
    only the post-deletion adjacency, so they are independent; all
    relevant rows are cleared up front, then the partial labellings merge
    back in landmark order — any highway cell both rebuilds touch is
    written with the same exact distance, so the merged result equals the
    serial one.
    """
    if not graph.has_edge(a, b):
        raise InvariantViolationError(
            f"apply_edge_deletion expects edge ({a}, {b}) to be present"
        )
    relevant = relevant_landmarks_for_deletion(labelling, a, b)
    graph.remove_edge(a, b)
    if not relevant:
        return relevant
    adj = graph.adjacency()
    landmark_set = labelling.landmark_set
    highway = labelling.highway
    labels = labelling.labels
    for r in relevant:
        labels.clear_landmark(r)
        highway.clear_row(r)
    engine = LandmarkEngine(workers)
    engine.map_unordered_merge(
        construction_task,
        (adj, landmark_set),
        relevant,
        lambda sweep: merge_sweep(highway, labels, sweep),
    )
    return relevant
