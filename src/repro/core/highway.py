"""The highway ``H = (R, δ_H)``: landmarks plus exact pairwise distances.

Section 3 of the paper: a highway consists of a set ``R`` of landmarks and a
distance decoding function ``δ_H : R × R → N+`` with
``δ_H(r1, r2) = d_G(r1, r2)`` for *all* landmark pairs.  Distances are kept
symmetric; unreachable pairs decode to infinity.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import NotALandmarkError
from repro.graph.traversal import INF

__all__ = ["Highway"]


class Highway:
    """Symmetric landmark-to-landmark distance table.

    >>> h = Highway([3, 7])
    >>> h.set_distance(3, 7, 2)
    >>> h.distance(7, 3)
    2
    >>> h.distance(3, 3)
    0
    """

    __slots__ = ("_landmarks", "_landmark_set", "_dist", "_shared")

    def __init__(self, landmarks: Iterable[int]) -> None:
        self._landmarks = list(landmarks)
        self._landmark_set = frozenset(self._landmarks)
        if len(self._landmark_set) != len(self._landmarks):
            raise ValueError("duplicate landmarks")
        # dict-of-dicts keyed by landmark id; missing entry = unreachable.
        self._dist: dict[int, dict[int, float]] = {
            r: {r: 0} for r in self._landmarks
        }
        # Rows shared with live snapshots (see :meth:`snapshot_state`);
        # ``None`` until the first snapshot is taken.
        self._shared: set[int] | None = None

    def _cow(self, r: int) -> None:
        """Detach the row of ``r`` from any live snapshot before mutating."""
        shared = self._shared
        if shared is not None and r in shared:
            self._dist[r] = dict(self._dist[r])
            shared.discard(r)

    def snapshot_state(
        self,
    ) -> tuple[list[int], frozenset[int], dict[int, dict[int, float]]]:
        """Freeze hook for :mod:`repro.serving.snapshot`.

        Returns ``(landmarks, landmark_set, rows)``: a copy of the landmark
        order, the (immutable) landmark set, and a *shallow* copy of the
        distance table whose rows are shared copy-on-write — any later
        in-place mutation copies the affected row first, so the returned
        state is a stable point-in-time view.
        """
        self._shared = set(self._dist)
        return list(self._landmarks), self._landmark_set, dict(self._dist)

    @property
    def landmarks(self) -> list[int]:
        """Landmarks in selection order.  Must not be mutated."""
        return self._landmarks

    @property
    def landmark_set(self) -> frozenset[int]:
        """Frozen set of landmarks for O(1) membership tests."""
        return self._landmark_set

    def __contains__(self, r: int) -> bool:
        return r in self._landmark_set

    def __len__(self) -> int:
        return len(self._landmarks)

    def distance(self, r1: int, r2: int) -> float:
        """``δ_H(r1, r2)``; infinity when unreachable."""
        try:
            row = self._dist[r1]
        except KeyError:
            raise NotALandmarkError(r1) from None
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        return row.get(r2, INF)

    def set_distance(self, r1: int, r2: int, distance: float) -> None:
        """Set ``δ_H(r1, r2)`` (and symmetrically ``δ_H(r2, r1)``)."""
        if r1 not in self._landmark_set:
            raise NotALandmarkError(r1)
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        if r1 == r2:
            if distance != 0:
                raise ValueError(f"diagonal must stay 0, got {distance!r}")
            return
        if not distance > 0:
            # >= 1 on unweighted graphs; weighted highways may go below 1.
            raise ValueError(f"landmark distances must be positive, got {distance!r}")
        self._cow(r1)
        self._cow(r2)
        self._dist[r1][r2] = distance
        self._dist[r2][r1] = distance

    def clear_row(self, r: int) -> None:
        """Drop every distance involving ``r`` (except the 0 diagonal).

        Used by the decremental extension before recomputing the row; a
        dropped pair decodes as unreachable until re-set.
        """
        if r not in self._landmark_set:
            raise NotALandmarkError(r)
        self._cow(r)
        for other in list(self._dist[r]):
            if other != r:
                self._cow(other)
                del self._dist[r][other]
                del self._dist[other][r]

    def remove_distance(self, r1: int, r2: int) -> bool:
        """Mark the pair ``(r1, r2)`` unreachable (drop its distance).

        Used by the fine-grained decremental algorithm when a deletion
        disconnects two landmarks.  Returns whether a distance was stored.
        """
        if r1 not in self._landmark_set:
            raise NotALandmarkError(r1)
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        if r1 == r2:
            raise ValueError("the 0 diagonal cannot be removed")
        if r2 not in self._dist[r1]:
            return False
        self._cow(r1)
        self._cow(r2)
        del self._dist[r1][r2]
        del self._dist[r2][r1]
        return True

    def add_landmark(self, r: int) -> None:
        """Extend ``R`` with a new landmark (no distances yet).

        Used by :mod:`repro.landmarks.maintenance`; the caller is
        responsible for filling the new row and repairing the labels.
        """
        if r in self._landmark_set:
            raise ValueError(f"{r} is already a landmark")
        self._landmarks.append(r)
        self._landmark_set = frozenset(self._landmarks)
        self._dist[r] = {r: 0}

    def remove_landmark(self, r: int) -> None:
        """Drop ``r`` from ``R`` together with all its distances."""
        if r not in self._landmark_set:
            raise NotALandmarkError(r)
        if len(self._landmarks) == 1:
            raise ValueError("cannot remove the last landmark")
        self.clear_row(r)
        del self._dist[r]
        self._landmarks.remove(r)
        self._landmark_set = frozenset(self._landmarks)

    def row(self, r: int) -> dict[int, float]:
        """The distance row of ``r`` (read-only; missing keys = unreachable).

        Exposed for the query hot path, which joins label entries against
        one highway row at a time.
        """
        try:
            return self._dist[r]
        except KeyError:
            raise NotALandmarkError(r) from None

    def copy(self) -> "Highway":
        """Independent deep copy of the highway."""
        clone = Highway(self._landmarks)
        clone._dist = {r: dict(row) for r, row in self._dist.items()}
        return clone

    def as_dict(self) -> dict[int, dict[int, float]]:
        """Deep-copied plain-dict snapshot (for validation/serialization)."""
        return {r: dict(row) for r, row in self._dist.items()}

    def size_bytes(self, bytes_per_distance: int = 4) -> int:
        """Logical storage footprint: a dense |R| x |R| half-matrix.

        Mirrors how the paper's C++ implementation accounts the highway
        (32-bit distances); used by the Table 1 "Labelling Size" column.
        """
        n = len(self._landmarks)
        return n * (n - 1) // 2 * bytes_per_distance

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Highway):
            return NotImplemented
        return (
            self._landmark_set == other._landmark_set
            and self.as_dict() == other.as_dict()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Highway(|R|={len(self._landmarks)})"
