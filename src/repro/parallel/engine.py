"""The per-landmark execution engine: fork-based fan-out with serial fallback.

Every bulk operation on a highway cover labelling — construction, batch
find sweeps, decremental rebuilds — decomposes into *independent*
per-landmark units of work over a read-only view of the graph (see
``docs/DESIGN.md`` §6).  :class:`LandmarkEngine` exploits that independence:
it maps a picklable task function over the per-landmark work items on a
``fork``-context process pool, handing each worker the shared read-only
state **by inheritance** (copy-on-write fork memory) rather than by
pickling, so a multi-gigabyte graph snapshot is never serialized.

Degradation is always safe: ``workers=None``/``1``, platforms without
``fork`` (e.g. Windows), or a pool that fails to start all fall back to an
in-process serial loop that produces bit-for-bit the same results — results
are returned in work-item order in both modes.

>>> engine = LandmarkEngine(workers=None)          # serial: any callable works
>>> engine.map(lambda state, item: state * item, 10, [1, 2, 3])
[10, 20, 30]
>>> engine.is_parallel
False

Parallel mode needs a module-level (picklable) task:

>>> engine = LandmarkEngine(workers=2)
>>> engine.map(_scale_task, 10, [1, 2, 3])         # runs on 2 processes
[10, 20, 30]
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

__all__ = [
    "LandmarkEngine",
    "available_parallelism",
    "fork_available",
    "resolve_workers",
]

#: Shared read-only state, published in the parent immediately before the
#: pool forks so that workers inherit it through copy-on-write memory.
_FORK_STATE: Any = None

#: Serializes parallel maps within one process: the publish-then-fork
#: handshake above is a process-wide global, so two threads fanning out at
#: once could fork each other's state.
_FORK_LOCK = threading.Lock()


def available_parallelism() -> int:
    """Number of CPUs usable by *this* process (``workers=0`` resolves here).

    Respects CPU affinity masks (cpusets) where the platform exposes
    them.  CFS-quota limits (``docker run --cpus=N``) are not visible
    through the affinity mask; under such quotas pass an explicit
    ``workers=N`` instead of ``0`` to avoid oversubscription.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method.

    The engine relies on fork's copy-on-write memory to share the graph
    snapshot with workers for free; without it (Windows, some macOS
    configurations) the engine stays serial.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` knob to a concrete positive worker count.

    ``None`` and ``1`` mean serial, ``0`` means "all CPUs", any other
    positive integer is taken literally.

    >>> resolve_workers(None), resolve_workers(4)
    (1, 4)
    >>> resolve_workers(0) == available_parallelism()
    True
    """
    if workers is None:
        return 1
    count = int(workers)
    if count < 0:
        raise ValueError(f"workers must be >= 0, got {workers!r}")
    if count == 0:
        return available_parallelism()
    return count


def _scale_task(state, item):
    """Module-level demo/test task: ``state * item`` (picklable)."""
    return state * item


def _invoke(payload: tuple[Callable[[Any, Any], Any], Any]):
    """Worker-side trampoline: run ``task(inherited_state, item)``."""
    task, item = payload
    return task(_FORK_STATE, item)


class LandmarkEngine:
    """Map per-landmark tasks over a process pool (or inline, serially).

    Parameters
    ----------
    workers:
        ``None``/``1`` — serial; ``0`` — one worker per CPU; ``n > 1`` —
        exactly ``n`` workers.  See :func:`resolve_workers`.

    The engine is stateless between :meth:`map` calls and therefore
    reusable; each parallel ``map`` forks a fresh pool *after* publishing
    the shared state, which is what lets workers read the current graph
    snapshot without any serialization.  The publish-then-fork handshake
    is process-wide, so concurrent parallel maps from different threads
    serialize on an internal lock (serial maps never take it).
    """

    __slots__ = ("workers",)

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    @property
    def is_parallel(self) -> bool:
        """Whether :meth:`map` will attempt process fan-out."""
        return self.workers > 1 and fork_available()

    def _uses_pool(self, num_items: int) -> bool:
        """The one serial-vs-parallel gate both map methods consult."""
        return min(self.workers, num_items) > 1 and fork_available()

    def map(
        self,
        task: Callable[[Any, Any], Any],
        state: Any,
        items: Iterable[Any],
    ) -> list[Any]:
        """``[task(state, item) for item in items]``, possibly on a pool.

        ``task`` must be a module-level function when the engine is
        parallel (workers pickle it by reference); ``state`` is shared
        with workers via fork inheritance and is never pickled; each
        ``item`` and each result is pickled, so keep them compact.
        Results preserve ``items`` order.  Any failure to *run the pool*
        (fork refused, workers killed) falls back to the serial loop; task
        exceptions propagate unchanged in both modes.
        """
        work = list(items)

        def run_serial() -> list[Any]:
            return [task(state, item) for item in work]

        if not self._uses_pool(len(work)):
            return run_serial()
        pool_size = min(self.workers, len(work))

        with _FORK_LOCK:
            return self._map_pooled(task, state, work, pool_size, run_serial)

    def _map_pooled(self, task, state, work, pool_size, run_serial):
        """The pool path of :meth:`map`; caller holds ``_FORK_LOCK``."""
        global _FORK_STATE
        _FORK_STATE = state
        try:
            try:
                context = multiprocessing.get_context("fork")
                pool = ProcessPoolExecutor(max_workers=pool_size, mp_context=context)
            except OSError:
                # Pool could not be created (resource limits): degrade to
                # the serial path rather than failing the operation.
                return run_serial()
            # ~4 chunks per worker keeps stragglers bounded while
            # amortizing the per-item pickle round-trip.
            chunksize = max(1, len(work) // (4 * pool_size))
            try:
                try:
                    # Submission is eager and workers fork lazily inside
                    # it, so a fork refusal (EAGAIN, cgroup pid limits)
                    # raises OSError from *this* call; task exceptions
                    # only surface while consuming the result iterator.
                    result_iter = pool.map(
                        _invoke,
                        [(task, item) for item in work],
                        chunksize=chunksize,
                    )
                except (OSError, BrokenProcessPool):
                    return run_serial()
                try:
                    return list(result_iter)
                except BrokenProcessPool:
                    # Workers died mid-run (OOM-killed): rerun serially.
                    # Task exceptions are NOT caught — they re-raise from
                    # the iterator with their original type.
                    return run_serial()
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        finally:
            _FORK_STATE = None

    def map_unordered_merge(
        self,
        task: Callable[[Any, Any], Any],
        state: Any,
        items: Sequence[Any],
        merge: Callable[[Any], None],
    ) -> int:
        """Run :meth:`map` and feed every result through ``merge``.

        Convenience for the "fan out, then fold partial labellings into
        the shared stores" pattern; merging happens in ``items`` order in
        the calling process (repairs commute across landmarks, but a
        deterministic order keeps serial and parallel byte-identical).
        In serial mode each result is merged as soon as it is produced
        (one partial result in flight at a time — the footprint of the
        classic per-landmark loop); parallel mode buffers the pickled
        results before merging, the price of the safe serial fallback.
        Returns the number of merged results.
        """
        work = list(items)
        if not self._uses_pool(len(work)):
            for item in work:
                merge(task(state, item))
            return len(work)
        results = self.map(task, state, work)
        for result in results:
            merge(result)
        return len(results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "parallel" if self.is_parallel else "serial"
        return f"LandmarkEngine(workers={self.workers}, mode={mode})"
