"""Per-landmark sweep kernels and their process-pool task adapters.

A *sweep* is the unit of work the :class:`~repro.parallel.engine.LandmarkEngine`
fans out: everything one landmark contributes to a highway cover labelling,
computed from read-only inputs and returned as a compact
:class:`LandmarkSweep` value.  Keeping sweeps **pure** (no mutation of the
shared :class:`~repro.core.highway.Highway` / label store) is what makes
them safe to run on worker processes; the caller folds the partial results
back in with :func:`merge_sweep`, in landmark order, so serial and parallel
executions produce byte-identical labellings (``docs/DESIGN.md`` §6).

Two interchangeable kernels produce identical sweeps:

* :func:`landmark_sweep` — the reference pure-Python level-synchronous BFS
  with cover flags (Theorem 5.2's minimality characterization);
* :func:`csr_landmark_sweep` — the numpy formulation over a
  :class:`~repro.graph.csr.CSRGraph` snapshot.

>>> adj = {0: [1], 1: [0, 2], 2: [1]}          # path 0 - 1 - 2
>>> sweep = landmark_sweep(adj, 0, frozenset({0, 2}))
>>> sweep.highway_cells                        # other landmarks reached
[(2, 2)]
>>> sweep.levels                               # uncovered vertices by depth
[(1, [1])]
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "LandmarkSweep",
    "landmark_sweep",
    "csr_landmark_sweep",
    "merge_sweep",
    "construction_task",
    "csr_construction_task",
    "batch_find_task",
    "csr_find_affected",
    "csr_find_affected_mixed",
    "csr_repair_affected",
    "csr_batch_repair_mixed",
    "csr_batch_sweep",
    "csr_mixed_sweep",
]

#: Frontier size below which the update kernels drop to scalar loops: a
#: handful of numpy calls costs more than a few dict-free Python
#: iterations, and single-edge insertions mostly touch tiny regions.
_SCALAR_CUTOFF = 32


class LandmarkSweep(NamedTuple):
    """Everything landmark ``root`` contributes to the labelling.

    ``highway_cells`` are ``(other_landmark, distance)`` pairs for the
    highway row of ``root``; ``levels`` are ``(depth, vertices)`` groups of
    the label entries ``(root, depth) ∈ L(v)``, in BFS level order.  Both
    are plain ints/lists so a sweep pickles cheaply on its way back from a
    worker process.
    """

    root: int
    highway_cells: list[tuple[int, int]]
    levels: list[tuple[int, list[int]]]

    @property
    def num_entries(self) -> int:
        """Label entries this sweep emits (``Σ_level |vertices|``)."""
        return sum(len(vertices) for _, vertices in self.levels)


def landmark_sweep(
    adj: dict[int, list[int]], root: int, landmark_set: frozenset[int]
) -> LandmarkSweep:
    """Full BFS from ``root`` with landmark-on-a-shortest-path flags.

    ``has_lm[v]`` = "some shortest path from ``root`` to ``v`` contains a
    landmark in ``R \\ {root}`` (possibly ``v`` itself)".  The flag of a
    level-``d`` vertex is final once all level-``d-1`` parents have been
    expanded, which the level-synchronous sweep guarantees; a vertex is
    labelled iff its flag stays false (the minimality characterization of
    Theorem 5.2).  Pure: reads ``adj`` only, returns the partial result.
    """
    dist: dict[int, int] = {root: 0}
    has_lm: dict[int, bool] = {root: False}
    cells: list[tuple[int, int]] = []
    levels: list[tuple[int, list[int]]] = []
    frontier = [root]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for v in frontier:
            flag = has_lm[v]
            for w in adj[v]:
                seen = dist.get(w)
                if seen is None:
                    dist[w] = depth
                    has_lm[w] = flag
                    next_frontier.append(w)
                elif seen == depth and flag and not has_lm[w]:
                    # Another shortest-path parent contributes a landmark.
                    has_lm[w] = True
        # Levels are complete here: record highway cells, force flags of
        # landmark vertices (paths *through* them are covered), collect
        # label entries of flag-free non-landmarks.
        labelled: list[int] = []
        for w in next_frontier:
            if w in landmark_set:
                cells.append((w, depth))
                has_lm[w] = True
            elif not has_lm[w]:
                labelled.append(w)
        if labelled:
            levels.append((depth, labelled))
        frontier = next_frontier
    return LandmarkSweep(root, cells, levels)


def csr_landmark_sweep(
    indptr, indices, ids, is_landmark, root_index: int, root_id: int
) -> LandmarkSweep:
    """The numpy formulation of :func:`landmark_sweep` over CSR arrays.

    Identical output (cell for cell, level for level) to the reference
    kernel; per BFS level the cover flag propagates as one scatter over the
    frontier adjacency instead of a Python loop per edge.  Arguments are
    the raw arrays of a :class:`~repro.graph.csr.CSRGraph` so the function
    ships to worker processes without dragging the snapshot object along.
    """
    import numpy as np

    from repro.graph.csr import _gather_neighbors

    num_vertices = len(ids)
    dist = np.full(num_vertices, -1, dtype=np.int32)
    flag = np.zeros(num_vertices, dtype=np.uint8)
    member = np.zeros(num_vertices, dtype=bool)
    dist[root_index] = 0
    frontier = np.array([root_index], dtype=np.int64)
    cells: list[tuple[int, int]] = []
    levels: list[tuple[int, list[int]]] = []
    depth = 0
    while frontier.size:
        depth += 1
        sources, neighbours = _gather_neighbors(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        unseen = dist[neighbours] < 0
        sources = sources[unseen]
        neighbours = neighbours[unseen]
        if neighbours.size == 0:
            break
        # Mask-scatter dedup (cheaper than np.unique on heavy levels);
        # nonzero returns the level sorted, matching the reference order.
        member[neighbours] = True
        new_level = np.nonzero(member)[0]
        member[new_level] = False
        dist[new_level] = depth
        # OR of parent flags over every shortest-path (frontier -> new
        # level) edge: scatter 1 to every neighbour reached from a flagged
        # parent.
        flag[neighbours[flag[sources] != 0]] = 1

        level_landmarks = new_level[is_landmark[new_level]]
        cells.extend((v, depth) for v in ids[level_landmarks].tolist())
        flag[level_landmarks] = 1

        uncovered = new_level[(flag[new_level] == 0) & ~is_landmark[new_level]]
        if uncovered.size:
            levels.append((depth, ids[uncovered].tolist()))
        frontier = new_level
    return LandmarkSweep(root_id, cells, levels)


def merge_sweep(highway, labels, sweep: LandmarkSweep) -> None:
    """Fold one sweep into the shared highway / label stores.

    The bulk label write relies on the sweep invariant that a BFS emits
    each vertex at most once and the caller's guarantee that ``sweep.root``
    currently has no entries (fresh landmark, or row cleared before the
    rebuild) — the same precondition as
    :meth:`repro.core.labels.LabelStore.bulk_set_new`.
    """
    root = sweep.root
    for other, distance in sweep.highway_cells:
        highway.set_distance(root, other, distance)
    for depth, vertices in sweep.levels:
        labels.bulk_set_new(root, vertices, depth)


# ---------------------------------------------------------------------------
# Incremental-update kernels (IncHL+ find/repair over DynCSR arrays)
# ---------------------------------------------------------------------------
def csr_find_affected(dyn, old_dist, seeds, new_dist=None, views=None):
    """Multi-seed jumped BFS (Lemma 4.4, batch form) over a DynCSR.

    The array formulation of :func:`repro.core.batch.find_affected_batch`
    for one landmark: ``old_dist`` is the landmark's dense pre-insertion
    distance row (int32, :data:`~repro.graph.dyncsr.UNREACH` for
    unreachable — exactly the values the dict implementation derives from
    label queries, by Eq. (1)); ``seeds`` are ``(root_index,
    candidate_depth)`` pairs, one per surviving orientation of an inserted
    edge.  A bucket queue keyed on candidate depth settles vertices in
    monotonically increasing depth, so a seed whose anchor distance
    dropped because of *another* edge in the batch is discovered before
    the stale seed pops (same monotone argument as the dict kernel).

    ``new_dist`` is an optional int32 scratch array (every entry ``-1``)
    reused across calls; on return it holds the new depth at every
    affected index — the caller repairs from it and then resets exactly
    those entries.  Returns ``levels``: ``(depth, vertices)`` pairs in
    increasing depth — ``Λ_r`` with exact post-insertion distances —
    where ``vertices`` is a sorted Python list for small levels and a
    sorted int64 array for large ones.

    The two representations are the hybrid execution strategy: buckets at
    or below :data:`_SCALAR_CUTOFF` candidates run as plain loops over
    memoryviews of the same buffers (single-edge insertions mostly touch
    a handful of vertices, where one numpy call costs more than the whole
    level), larger buckets run as numpy level sweeps.  Both paths apply
    the same settle test to the same shared scratch, so the affected set
    does not depend on which one ran.

    ``views`` is an optional pre-built ``(old_mv, new_mv)`` memoryview
    pair over the same two arrays — the owning engine caches these across
    calls; without it the views are built here.
    """
    import numpy as np

    if new_dist is None:
        new_dist = np.full(dyn.num_vertices, -1, dtype=np.int32)
    if views is None:
        old_mv = memoryview(old_dist)
        new_mv = memoryview(new_dist)
    else:
        old_mv, new_mv = views
    indptr, base_len, indices, delta, delta_count = dyn.scalar_views()
    # Bucket value = (scalar candidates, array candidates): the scalar
    # path extends the first, the vectorized path appends whole frontier
    # arrays to the second, and a pop never has to type-inspect elements.
    buckets: dict[int, tuple[list[int], list]] = {}
    for root, depth in seeds:
        buckets.setdefault(int(depth), ([], []))[0].append(int(root))
    levels: list[tuple[int, object]] = []
    while buckets:
        depth = min(buckets)
        ints, arrays = buckets.pop(depth)
        size = len(ints)
        for a in arrays:
            size += len(a)
        if size <= _SCALAR_CUTOFF:
            # Scalar pop: settle (writing the shared scratch immediately,
            # which also dedups within the bucket), then expand through
            # the raw CSR views.
            for a in arrays:
                ints.extend(a.tolist())
            settled: list[int] = []
            for v in ints:
                if new_mv[v] < 0 and old_mv[v] >= depth:
                    new_mv[v] = depth
                    settled.append(v)
            if not settled:
                continue
            settled.sort()
            levels.append((depth, settled))
            next_depth = depth + 1
            pushed: list[int] = []
            for v in settled:
                # Test the old distance first: most scanned neighbours are
                # unaffected border vertices, which fail it on one read.
                start = indptr[v]
                for w in indices[start : start + base_len[v]]:
                    if old_mv[w] >= next_depth and new_mv[w] < 0:
                        pushed.append(w)
                if delta_count[v]:
                    for w in delta[v]:
                        if old_mv[w] >= next_depth and new_mv[w] < 0:
                            pushed.append(w)
            if pushed:
                bucket = buckets.get(next_depth)
                if bucket is None:
                    buckets[next_depth] = (pushed, [])
                else:
                    bucket[0].extend(pushed)
            continue
        if ints:
            arrays.append(np.array(ints, dtype=np.int64))
        cand = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        cand = cand[(new_dist[cand] < 0) & (old_dist[cand] >= depth)]
        if cand.size == 0:
            continue
        level = np.unique(cand)
        new_dist[level] = depth
        levels.append((depth, level))
        neighbours = dyn.gather_neighbours(level)
        if neighbours.size:
            neighbours = neighbours[
                (new_dist[neighbours] < 0) & (old_dist[neighbours] >= depth + 1)
            ]
            if neighbours.size:
                bucket = buckets.get(depth + 1)
                if bucket is None:
                    buckets[depth + 1] = ([], [neighbours])
                else:
                    bucket[1].append(neighbours)
    return levels


def csr_find_affected_mixed(
    dyn, old_dist, ins_edges, del_seeds, new_dist=None, del_mask=None, views=None
):
    """Unified affected-region search for a *mixed* insert/delete batch.

    The BatchHL-style generalization of :func:`csr_find_affected` for one
    landmark (``docs/DESIGN.md`` §10).  ``dyn`` must already reflect the
    whole batch (inserted edges present, deleted edges gone) while
    ``old_dist`` is still the landmark's pre-batch dense distance row —
    exact by Eq. (1).  ``ins_edges`` are inserted edges as ``(ai, bi)``
    compact-index pairs (orientation is resolved here, because it depends
    on deletion-affected membership); ``del_seeds`` are ``(root_index,
    old_depth)`` pairs, one per surviving orientation of a deleted edge
    (``old(anchor) + 1 == old(root)``), as produced by the engine's
    Phase A over the dense rows.

    Three stages, all sharing the hybrid scalar/vector machinery:

    1. **Closure** — descendants of the deletion roots in the old
       shortest-path DAG (``old(w) == old(v) + 1`` level sweep over the
       post-batch adjacency; hops across deleted edges are covered
       because every deleted-edge orientation seeds its own root).  These
       are the vertices whose distance may *increase or become infinite*;
       they are marked in ``del_mask`` and settle unconditionally.
       Over-inclusion through inserted edges is harmless: repair
       re-derives an unchanged vertex identically.
    2. **Seeding** — insertion anchors (an anchor inside the deletion
       region contributes through expansion instead: its own settled
       depth is the only sound candidate) plus, per closure vertex, the
       cheapest re-entry candidate ``old(u) + 1`` over its unaffected
       neighbours ``u`` (their distances can only have *decreased*, so
       the candidate never underestimates and monotonicity repairs any
       overestimate).
    3. **Unified bucket-queue BFS** — settles a vertex at the first
       popped depth if it is closure-marked (exact new distance, however
       it compares to the old one) or at ``old >= depth`` (the jumped
       test of the insertion kernel).

    Returns ``(levels, removed)``: the affected levels in increasing new
    depth (hybrid list/array representation, as in
    :func:`csr_find_affected`) and the sorted closure vertices that never
    settled — exactly the vertices the batch disconnected from the
    landmark.  ``del_mask`` (uint8 scratch, zeroed) is reset before
    returning; ``new_dist`` is left populated at affected indices like
    the insertion kernel.  With no ``del_seeds`` the closure and border
    stages vanish and the search degenerates to byte-identical
    :func:`csr_find_affected` behaviour.
    """
    import numpy as np

    from repro.graph.dyncsr import UNREACH

    unreachable = int(UNREACH)
    if new_dist is None:
        new_dist = np.full(dyn.num_vertices, -1, dtype=np.int32)
    if del_mask is None:
        del_mask = np.zeros(dyn.num_vertices, dtype=np.uint8)
    if views is None:
        old_mv = memoryview(old_dist)
        new_mv = memoryview(new_dist)
        del_mv = memoryview(del_mask)
    else:
        old_mv, new_mv, del_mv = views
    indptr, base_len, indices, delta, delta_count = dyn.scalar_views()

    # Stage 1: closure of the deletion roots over the old SP DAG.
    affected: list[int] = []
    if del_seeds:
        closure: dict[int, list[int]] = {}
        for root, depth in del_seeds:
            closure.setdefault(int(depth), []).append(int(root))
        while closure:
            depth = min(closure)
            group = closure.pop(depth)
            child_depth = depth + 1
            pushed: list[int] = []
            for v in group:
                if del_mv[v]:
                    continue
                del_mv[v] = 1
                affected.append(v)
                start = indptr[v]
                for w in indices[start : start + base_len[v]]:
                    if old_mv[w] == child_depth and not del_mv[w]:
                        pushed.append(w)
                if delta_count[v]:
                    for w in delta[v]:
                        if old_mv[w] == child_depth and not del_mv[w]:
                            pushed.append(w)
            if pushed:
                closure.setdefault(child_depth, []).extend(pushed)

    # Stage 2: seeds.  Bucket value = (scalar candidates, array
    # candidates), exactly as in csr_find_affected.
    buckets: dict[int, tuple[list[int], list]] = {}
    for ai, bi in ins_edges:
        da = old_mv[ai]
        db = old_mv[bi]
        if not del_mv[ai] and da != unreachable:
            cand = da + 1
            if del_mv[bi] or cand <= db:
                buckets.setdefault(cand, ([], []))[0].append(bi)
        if not del_mv[bi] and db != unreachable:
            cand = db + 1
            if del_mv[ai] or cand <= da:
                buckets.setdefault(cand, ([], []))[0].append(ai)
    for v in affected:
        best = -1
        start = indptr[v]
        for w in indices[start : start + base_len[v]]:
            if not del_mv[w]:
                dw = old_mv[w]
                if dw != unreachable and (best < 0 or dw + 1 < best):
                    best = dw + 1
        if delta_count[v]:
            for w in delta[v]:
                if not del_mv[w]:
                    dw = old_mv[w]
                    if dw != unreachable and (best < 0 or dw + 1 < best):
                        best = dw + 1
        if best >= 0:
            buckets.setdefault(best, ([], []))[0].append(v)

    # Stage 3: unified monotone bucket-queue BFS.
    levels: list[tuple[int, object]] = []
    while buckets:
        depth = min(buckets)
        ints, arrays = buckets.pop(depth)
        size = len(ints)
        for a in arrays:
            size += len(a)
        if size <= _SCALAR_CUTOFF:
            for a in arrays:
                ints.extend(a.tolist())
            settled: list[int] = []
            for v in ints:
                if new_mv[v] < 0 and (del_mv[v] or old_mv[v] >= depth):
                    new_mv[v] = depth
                    settled.append(v)
            if not settled:
                continue
            settled.sort()
            levels.append((depth, settled))
            next_depth = depth + 1
            pushed = []
            for v in settled:
                start = indptr[v]
                for w in indices[start : start + base_len[v]]:
                    if new_mv[w] < 0 and (del_mv[w] or old_mv[w] >= next_depth):
                        pushed.append(w)
                if delta_count[v]:
                    for w in delta[v]:
                        if new_mv[w] < 0 and (
                            del_mv[w] or old_mv[w] >= next_depth
                        ):
                            pushed.append(w)
            if pushed:
                bucket = buckets.get(next_depth)
                if bucket is None:
                    buckets[next_depth] = (pushed, [])
                else:
                    bucket[0].extend(pushed)
            continue
        if ints:
            arrays.append(np.array(ints, dtype=np.int64))
        cand = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        cand = cand[
            (new_dist[cand] < 0)
            & ((del_mask[cand] != 0) | (old_dist[cand] >= depth))
        ]
        if cand.size == 0:
            continue
        level = np.unique(cand)
        new_dist[level] = depth
        levels.append((depth, level))
        neighbours = dyn.gather_neighbours(level)
        if neighbours.size:
            neighbours = neighbours[
                (new_dist[neighbours] < 0)
                & (
                    (del_mask[neighbours] != 0)
                    | (old_dist[neighbours] >= depth + 1)
                )
            ]
            if neighbours.size:
                bucket = buckets.get(depth + 1)
                if bucket is None:
                    buckets[depth + 1] = ([], [neighbours])
                else:
                    bucket[1].append(neighbours)

    removed = [v for v in affected if new_mv[v] < 0]
    removed.sort()
    for v in affected:
        del_mv[v] = 0
    return levels, removed


def csr_repair_affected(
    dyn,
    labelling,
    r,
    levels,
    old_dist,
    new_dist,
    is_landmark,
    covered,
    has_entry,
    stats=None,
    views=None,
):
    """Level-order repair (Lemma 4.6) from kernel find results.

    The array formulation of :func:`repro.core.inchl.repair_affected`:
    sweeps ``levels`` in increasing depth and evaluates the *covered*
    predicate of each affected vertex over its shortest-path parents —
    affected parents at ``depth - 1`` read their just-computed cover flag,
    unaffected parents at old distance ``depth - 1`` cover iff they are a
    landmark (other than ``r``) or lack an ``r``-entry.  The dict kernel
    consults ``border_old``, which records exactly the unaffected
    neighbours of the affected region with their unchanged distances;
    ``old_dist`` holds those same values for every vertex, so the parent
    sets coincide and the two kernels issue the same entry
    additions/modifications/removals and highway updates.

    ``new_dist`` must hold the find results (affected index -> new depth,
    ``-1`` elsewhere); ``covered`` is a zeroed uint8 scratch.  Both are
    left populated at affected indices for the caller to reset.
    ``has_entry`` is the landmark's dense label-membership row (uint8:
    ``has_entry[i] == 1`` iff ``(r, ·) ∈ L(ids[i])``) — the vectorized
    stand-in for ``LabelStore.has_entry`` in the covered predicate; the
    kernel keeps it true as it mutates labels, so the owning engine can
    reuse it across updates.  Mutates ``labelling`` in place and updates
    ``stats`` like the dict kernel.

    Levels arrive in the hybrid representation of
    :func:`csr_find_affected` (lists for small levels, arrays for large
    ones) and are repaired scalar or vectorized accordingly; the two
    paths evaluate the same predicate over the same shared buffers.

    ``views`` is an optional pre-built ``(old_mv, new_mv, landmark_mv,
    covered_mv, has_mv)`` memoryview bundle over the same five arrays,
    cached by the owning engine; without it the views are built here.
    """
    import numpy as np

    from repro.exceptions import InvariantViolationError

    labels = labelling.labels
    highway = labelling.highway
    ids = dyn.ids
    r_index = dyn.index(r)
    if views is None:
        old_mv = memoryview(old_dist)
        new_mv = memoryview(new_dist)
        landmark_mv = memoryview(is_landmark)
        covered_mv = memoryview(covered)
        has_mv = memoryview(has_entry)
    else:
        old_mv, new_mv, landmark_mv, covered_mv, has_mv = views
    indptr, base_len, indices, delta, delta_count = dyn.scalar_views()

    # "A border parent at the right depth covers its child" depends only
    # on landmark membership and r-entry presence — and repair never
    # touches a border vertex's r-entry — so for the vectorized levels
    # the whole predicate collapses into one per-vertex vector, computed
    # lazily (small updates never pay the O(n) ops).  ``r`` itself never
    # covers: a shortest path whose only landmark is r is exactly what an
    # r-entry witnesses.
    border_covers = None

    for depth, verts in levels:
        parent_depth = depth - 1
        if isinstance(verts, list):
            for v in verts:
                if landmark_mv[v]:
                    covered_mv[v] = 1
                    vid = int(ids[v])
                    if highway.distance(r, vid) != depth:
                        highway.set_distance(r, vid, depth)
                        if stats is not None:
                            stats.highway_updates += 1
                    continue
                is_covered = False
                has_parent = False
                start = indptr[v]
                neighbours = indices[start : start + base_len[v]]
                if delta_count[v]:
                    neighbours = list(neighbours) + delta[v]
                for u in neighbours:
                    du = new_mv[u]
                    if du >= 0:
                        if du != parent_depth:
                            continue
                        has_parent = True
                        if covered_mv[u]:
                            is_covered = True
                            break
                        continue
                    if u == r_index:
                        if parent_depth == 0:
                            has_parent = True
                        continue
                    if old_mv[u] != parent_depth:
                        continue
                    has_parent = True
                    if landmark_mv[u] or not has_mv[u]:
                        is_covered = True
                        break
                if not has_parent:
                    raise InvariantViolationError(
                        f"affected vertex {int(ids[v])} at new depth {depth} "
                        f"(landmark {r}) has no shortest-path parent — "
                        f"labelling out of sync with graph"
                    )
                vid = int(ids[v])
                if is_covered:
                    covered_mv[v] = 1
                    if has_mv[v]:
                        labels.remove_entry(vid, r)
                        has_mv[v] = 0
                        if stats is not None:
                            stats.entries_removed += 1
                else:
                    if stats is not None:
                        if has_mv[v]:
                            stats.entries_modified += 1
                        else:
                            stats.entries_added += 1
                    labels.set_entry(vid, r, depth)
                    has_mv[v] = 1
            continue

        lm_mask = is_landmark[verts]
        level_landmarks = verts[lm_mask]
        if level_landmarks.size:
            covered[level_landmarks] = 1
            for v in level_landmarks.tolist():
                vid = int(ids[v])
                if highway.distance(r, vid) != depth:
                    highway.set_distance(r, vid, depth)
                    if stats is not None:
                        stats.highway_updates += 1
        others = verts[~lm_mask]
        if others.size == 0:
            continue
        if border_covers is None:
            border_covers = is_landmark | (has_entry == 0)
            border_covers[r_index] = False
        position, nbrs = dyn.gather_with_positions(others)
        nd = new_dist[nbrs]
        affected_parent = nd == parent_depth
        # r itself classifies uniformly: it is unaffected with old
        # distance 0, so it parents exactly the depth-1 vertices — the
        # dict kernel's explicit r-branch — and never covers (above).
        unaffected_parent = (nd < 0) & (old_dist[nbrs] == parent_depth)
        parent = affected_parent | unaffected_parent
        contrib = (affected_parent & (covered[nbrs] != 0)) | (
            unaffected_parent & border_covers[nbrs]
        )
        has_parent_v = np.zeros(len(others), dtype=bool)
        has_parent_v[position[parent]] = True
        if not has_parent_v.all():
            v = int(others[~has_parent_v][0])
            raise InvariantViolationError(
                f"affected vertex {int(ids[v])} at new depth {depth} "
                f"(landmark {r}) has no shortest-path parent — labelling "
                f"out of sync with graph"
            )
        covered_v = np.zeros(len(others), dtype=bool)
        covered_v[position[contrib]] = True
        covered_verts = others[covered_v]
        if covered_verts.size:
            covered[covered_verts] = 1
            removed = labels.bulk_remove(r, ids[covered_verts].tolist())
            has_entry[covered_verts] = 0
            if stats is not None:
                stats.entries_removed += removed
        uncovered_verts = others[~covered_v]
        if uncovered_verts.size:
            added, modified = labels.bulk_set(
                r, ids[uncovered_verts].tolist(), depth
            )
            has_entry[uncovered_verts] = 1
            if stats is not None:
                stats.entries_added += added
                stats.entries_modified += modified


def csr_batch_repair_mixed(
    dyn,
    labelling,
    r,
    levels,
    removed,
    old_dist,
    new_dist,
    is_landmark,
    covered,
    has_entry,
    stats=None,
    views=None,
):
    """Phase C for one landmark of a mixed batch: disconnect, then repair.

    ``levels``/``removed`` come from :func:`csr_find_affected_mixed`.
    Vertices the batch disconnected from ``r`` lose their entry (or, for
    landmarks, their highway pair) outright — mirroring
    :func:`repro.core.dechl.repair_affected_deletion` — and their dense
    old-distance slot is set to :data:`~repro.graph.dyncsr.UNREACH`
    *before* the level sweep, so the parent predicate can never read a
    stale finite distance for them.  (They also can never neighbour a
    settled vertex — a neighbour of a reachable vertex is reachable — so
    this is belt and braces.)  The level sweep itself is exactly
    :func:`csr_repair_affected`: deletions flip cover verdicts in either
    direction, but the parent predicate re-derives them from scratch
    anyway.
    """
    from repro.graph.dyncsr import UNREACH

    if removed:
        labels = labelling.labels
        highway = labelling.highway
        ids = dyn.ids
        unreachable = int(UNREACH)
        if views is None:
            old_mv = memoryview(old_dist)
            landmark_mv = memoryview(is_landmark)
            has_mv = memoryview(has_entry)
        else:
            old_mv, _, landmark_mv, _, has_mv = views
        for v in removed:
            vid = int(ids[v])
            old_mv[v] = unreachable
            if landmark_mv[v]:
                if highway.remove_distance(r, vid) and stats is not None:
                    stats.highway_updates += 1
            elif has_mv[v]:
                labels.remove_entry(vid, r)
                has_mv[v] = 0
                if stats is not None:
                    stats.entries_removed += 1
    csr_repair_affected(
        dyn,
        labelling,
        r,
        levels,
        old_dist,
        new_dist,
        is_landmark,
        covered,
        has_entry,
        stats,
        views=views,
    )


# ---------------------------------------------------------------------------
# Engine task adapters (module-level, hence picklable by reference)
# ---------------------------------------------------------------------------
def construction_task(state, root: int) -> LandmarkSweep:
    """Engine task for construction / rebuild: one reference sweep.

    ``state`` is ``(adj, landmark_set)``, shared with workers via fork
    inheritance; the work item is the landmark id.
    """
    adj, landmark_set = state
    return landmark_sweep(adj, root, landmark_set)


def csr_construction_task(state, item: tuple[int, int]) -> LandmarkSweep:
    """Engine task for the CSR fast path: one numpy sweep.

    ``state`` is ``(indptr, indices, ids, is_landmark)``; the work item is
    ``(root_index, root_id)`` in compact/original id space respectively.
    """
    indptr, indices, ids, is_landmark = state
    root_index, root_id = item
    return csr_landmark_sweep(indptr, indices, ids, is_landmark, root_index, root_id)


def batch_find_task(state, item):
    """Engine task for batch insertion Phase B: one multi-seed find.

    ``state`` is ``(graph, labelling)`` — the post-insertion graph and the
    pristine labelling; the work item is ``(r, seeds)`` as produced by the
    batch Phase A.  Returns the :class:`~repro.core.inchl.AffectedSearch`
    (small dicts, cheap to pickle back).
    """
    # Imported lazily to avoid a cycle (core.batch drives the engine).
    from repro.core.batch import find_affected_batch

    graph, labelling = state
    r, seeds = item
    return find_affected_batch(graph, labelling, r, seeds)


def csr_batch_sweep(state, item):
    """Engine task for the fast batch-insertion Phase B: one kernel find.

    ``state`` is ``(dyn, dist)`` — the post-insertion :class:`DynCSR` and
    the dense per-landmark distance matrix, shared with workers via fork
    inheritance; the work item is ``(k, seeds)`` with ``k`` the landmark's
    row index and ``seeds`` as taken by :func:`csr_find_affected`.
    Returns ``(k, levels)``; the levels arrays pickle compactly, and the
    caller repairs and folds them in landmark order so serial and parallel
    runs stay byte-identical.
    """
    dyn, dist = state
    k, seeds = item
    return k, csr_find_affected(dyn, dist[k], seeds)


def csr_mixed_sweep(state, item):
    """Engine task for the mixed-batch Phase B: one unified find.

    ``state`` is ``(dyn, dist)`` as in :func:`csr_batch_sweep`; the work
    item is ``(k, ins_edges, del_seeds)`` as taken by
    :func:`csr_find_affected_mixed`.  Returns ``(k, levels, removed)``;
    the caller repairs in landmark order (:func:`csr_batch_repair_mixed`)
    so serial and parallel runs stay byte-identical.
    """
    dyn, dist = state
    k, ins_edges, del_seeds = item
    levels, removed = csr_find_affected_mixed(dyn, dist[k], ins_edges, del_seeds)
    return k, levels, removed
