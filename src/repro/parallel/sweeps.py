"""Per-landmark sweep kernels and their process-pool task adapters.

A *sweep* is the unit of work the :class:`~repro.parallel.engine.LandmarkEngine`
fans out: everything one landmark contributes to a highway cover labelling,
computed from read-only inputs and returned as a compact
:class:`LandmarkSweep` value.  Keeping sweeps **pure** (no mutation of the
shared :class:`~repro.core.highway.Highway` / label store) is what makes
them safe to run on worker processes; the caller folds the partial results
back in with :func:`merge_sweep`, in landmark order, so serial and parallel
executions produce byte-identical labellings (``docs/DESIGN.md`` §6).

Two interchangeable kernels produce identical sweeps:

* :func:`landmark_sweep` — the reference pure-Python level-synchronous BFS
  with cover flags (Theorem 5.2's minimality characterization);
* :func:`csr_landmark_sweep` — the numpy formulation over a
  :class:`~repro.graph.csr.CSRGraph` snapshot.

>>> adj = {0: [1], 1: [0, 2], 2: [1]}          # path 0 - 1 - 2
>>> sweep = landmark_sweep(adj, 0, frozenset({0, 2}))
>>> sweep.highway_cells                        # other landmarks reached
[(2, 2)]
>>> sweep.levels                               # uncovered vertices by depth
[(1, [1])]
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "LandmarkSweep",
    "landmark_sweep",
    "csr_landmark_sweep",
    "merge_sweep",
    "construction_task",
    "csr_construction_task",
    "batch_find_task",
]


class LandmarkSweep(NamedTuple):
    """Everything landmark ``root`` contributes to the labelling.

    ``highway_cells`` are ``(other_landmark, distance)`` pairs for the
    highway row of ``root``; ``levels`` are ``(depth, vertices)`` groups of
    the label entries ``(root, depth) ∈ L(v)``, in BFS level order.  Both
    are plain ints/lists so a sweep pickles cheaply on its way back from a
    worker process.
    """

    root: int
    highway_cells: list[tuple[int, int]]
    levels: list[tuple[int, list[int]]]

    @property
    def num_entries(self) -> int:
        """Label entries this sweep emits (``Σ_level |vertices|``)."""
        return sum(len(vertices) for _, vertices in self.levels)


def landmark_sweep(
    adj: dict[int, list[int]], root: int, landmark_set: frozenset[int]
) -> LandmarkSweep:
    """Full BFS from ``root`` with landmark-on-a-shortest-path flags.

    ``has_lm[v]`` = "some shortest path from ``root`` to ``v`` contains a
    landmark in ``R \\ {root}`` (possibly ``v`` itself)".  The flag of a
    level-``d`` vertex is final once all level-``d-1`` parents have been
    expanded, which the level-synchronous sweep guarantees; a vertex is
    labelled iff its flag stays false (the minimality characterization of
    Theorem 5.2).  Pure: reads ``adj`` only, returns the partial result.
    """
    dist: dict[int, int] = {root: 0}
    has_lm: dict[int, bool] = {root: False}
    cells: list[tuple[int, int]] = []
    levels: list[tuple[int, list[int]]] = []
    frontier = [root]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for v in frontier:
            flag = has_lm[v]
            for w in adj[v]:
                seen = dist.get(w)
                if seen is None:
                    dist[w] = depth
                    has_lm[w] = flag
                    next_frontier.append(w)
                elif seen == depth and flag and not has_lm[w]:
                    # Another shortest-path parent contributes a landmark.
                    has_lm[w] = True
        # Levels are complete here: record highway cells, force flags of
        # landmark vertices (paths *through* them are covered), collect
        # label entries of flag-free non-landmarks.
        labelled: list[int] = []
        for w in next_frontier:
            if w in landmark_set:
                cells.append((w, depth))
                has_lm[w] = True
            elif not has_lm[w]:
                labelled.append(w)
        if labelled:
            levels.append((depth, labelled))
        frontier = next_frontier
    return LandmarkSweep(root, cells, levels)


def csr_landmark_sweep(
    indptr, indices, ids, is_landmark, root_index: int, root_id: int
) -> LandmarkSweep:
    """The numpy formulation of :func:`landmark_sweep` over CSR arrays.

    Identical output (cell for cell, level for level) to the reference
    kernel; per BFS level the cover flag propagates as one scatter over the
    frontier adjacency instead of a Python loop per edge.  Arguments are
    the raw arrays of a :class:`~repro.graph.csr.CSRGraph` so the function
    ships to worker processes without dragging the snapshot object along.
    """
    import numpy as np

    from repro.graph.csr import _gather_neighbors

    num_vertices = len(ids)
    dist = np.full(num_vertices, -1, dtype=np.int32)
    flag = np.zeros(num_vertices, dtype=np.uint8)
    member = np.zeros(num_vertices, dtype=bool)
    dist[root_index] = 0
    frontier = np.array([root_index], dtype=np.int64)
    cells: list[tuple[int, int]] = []
    levels: list[tuple[int, list[int]]] = []
    depth = 0
    while frontier.size:
        depth += 1
        sources, neighbours = _gather_neighbors(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        unseen = dist[neighbours] < 0
        sources = sources[unseen]
        neighbours = neighbours[unseen]
        if neighbours.size == 0:
            break
        # Mask-scatter dedup (cheaper than np.unique on heavy levels);
        # nonzero returns the level sorted, matching the reference order.
        member[neighbours] = True
        new_level = np.nonzero(member)[0]
        member[new_level] = False
        dist[new_level] = depth
        # OR of parent flags over every shortest-path (frontier -> new
        # level) edge: scatter 1 to every neighbour reached from a flagged
        # parent.
        flag[neighbours[flag[sources] != 0]] = 1

        level_landmarks = new_level[is_landmark[new_level]]
        cells.extend((v, depth) for v in ids[level_landmarks].tolist())
        flag[level_landmarks] = 1

        uncovered = new_level[(flag[new_level] == 0) & ~is_landmark[new_level]]
        if uncovered.size:
            levels.append((depth, ids[uncovered].tolist()))
        frontier = new_level
    return LandmarkSweep(root_id, cells, levels)


def merge_sweep(highway, labels, sweep: LandmarkSweep) -> None:
    """Fold one sweep into the shared highway / label stores.

    The bulk label write relies on the sweep invariant that a BFS emits
    each vertex at most once and the caller's guarantee that ``sweep.root``
    currently has no entries (fresh landmark, or row cleared before the
    rebuild) — the same precondition as
    :meth:`repro.core.labels.LabelStore.bulk_set_new`.
    """
    root = sweep.root
    for other, distance in sweep.highway_cells:
        highway.set_distance(root, other, distance)
    for depth, vertices in sweep.levels:
        labels.bulk_set_new(root, vertices, depth)


# ---------------------------------------------------------------------------
# Engine task adapters (module-level, hence picklable by reference)
# ---------------------------------------------------------------------------
def construction_task(state, root: int) -> LandmarkSweep:
    """Engine task for construction / rebuild: one reference sweep.

    ``state`` is ``(adj, landmark_set)``, shared with workers via fork
    inheritance; the work item is the landmark id.
    """
    adj, landmark_set = state
    return landmark_sweep(adj, root, landmark_set)


def csr_construction_task(state, item: tuple[int, int]) -> LandmarkSweep:
    """Engine task for the CSR fast path: one numpy sweep.

    ``state`` is ``(indptr, indices, ids, is_landmark)``; the work item is
    ``(root_index, root_id)`` in compact/original id space respectively.
    """
    indptr, indices, ids, is_landmark = state
    root_index, root_id = item
    return csr_landmark_sweep(indptr, indices, ids, is_landmark, root_index, root_id)


def batch_find_task(state, item):
    """Engine task for batch insertion Phase B: one multi-seed find.

    ``state`` is ``(graph, labelling)`` — the post-insertion graph and the
    pristine labelling; the work item is ``(r, seeds)`` as produced by the
    batch Phase A.  Returns the :class:`~repro.core.inchl.AffectedSearch`
    (small dicts, cheap to pickle back).
    """
    # Imported lazily to avoid a cycle (core.batch drives the engine).
    from repro.core.batch import find_affected_batch

    graph, labelling = state
    r, seeds = item
    return find_affected_batch(graph, labelling, r, seeds)
