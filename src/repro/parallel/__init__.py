"""repro.parallel — the parallel per-landmark execution engine.

Highway cover labellings decompose by landmark: construction is one
independent BFS sweep per landmark, batch-insertion finds are one jumped
multi-seed BFS per landmark, and decremental rebuilds redo single
landmarks in isolation (repairs touch only ``r``-entries, so they commute
— see ``docs/DESIGN.md`` §6).  This package turns that independence into
wall-clock speedup: :class:`LandmarkEngine` fans per-landmark *sweep*
tasks out across a ``fork`` process pool, sharing the read-only graph
snapshot with workers through copy-on-write memory, and the caller merges
the partial results deterministically — so ``workers=N`` produces a
labelling byte-identical to the serial one.

Used by :func:`repro.core.construction.build_hcl`,
:func:`repro.core.construction_fast.build_hcl_fast`,
:func:`repro.core.batch.apply_edge_insertions_batch`, and
:func:`repro.core.decremental.apply_edge_deletion`; surfaced to users as
the ``workers=`` knob on :class:`repro.DynamicHCL` and the benchmark CLI.

>>> from repro.graph.generators import grid_graph
>>> from repro.core.construction import build_hcl
>>> serial = build_hcl(grid_graph(4, 4), [0, 15])
>>> parallel = build_hcl(grid_graph(4, 4), [0, 15], workers=2)
>>> parallel == serial
True

The engine itself is domain-agnostic:

>>> engine = LandmarkEngine(workers=2)
>>> engine.workers
2
>>> sweep = landmark_sweep({0: [1], 1: [0]}, 0, frozenset({0}))
>>> sweep.levels
[(1, [1])]
"""

from repro.parallel.engine import (
    LandmarkEngine,
    available_parallelism,
    fork_available,
    resolve_workers,
)
from repro.parallel.sweeps import (
    LandmarkSweep,
    csr_find_affected,
    csr_landmark_sweep,
    csr_repair_affected,
    landmark_sweep,
    merge_sweep,
)

__all__ = [
    "LandmarkEngine",
    "LandmarkSweep",
    "available_parallelism",
    "csr_find_affected",
    "csr_landmark_sweep",
    "csr_repair_affected",
    "fork_available",
    "landmark_sweep",
    "merge_sweep",
    "resolve_workers",
]
