"""IncPLL — incremental pruned landmark labelling (Akiba et al., WWW 2014).

On inserting edge ``(a, b)``, the pruned BFS of every hub present in
``L(a)`` is *resumed* at ``b`` (and symmetrically), restoring the 2-hop
cover property for the new graph.  Crucially — and this is the behaviour
the paper contrasts IncHL+ against — **outdated entries are never removed**
("the authors considered that detecting such outdated entries is too
costly"): entries whose stored distance is now an overestimate stay in the
labels.  Queries remain exact (the resumed BFSs insert the new, shorter
certificates), but ``size(L)`` grows monotonically and query time degrades
over long update sequences.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.baselines.pll import PrunedLandmarkLabelling
from repro.graph.dynamic_graph import DynamicGraph

__all__ = ["IncPLL"]


class IncPLL:
    """Dynamic 2-hop cover oracle with insert-only label maintenance.

    >>> from repro.graph.generators import grid_graph
    >>> oracle = IncPLL(grid_graph(3, 3))
    >>> oracle.query(0, 8)
    4
    >>> _ = oracle.insert_edge(0, 8)   # returns the number of resumed BFSs
    >>> oracle.query(0, 8)
    1
    """

    name = "IncPLL"

    def __init__(
        self,
        graph: DynamicGraph,
        order: Sequence[int] | None = None,
        time_budget_s: float | None = None,
    ) -> None:
        self._graph = graph
        self._pll = PrunedLandmarkLabelling(
            graph, order=order, time_budget_s=time_budget_s
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph."""
        return self._graph

    @property
    def pll(self) -> PrunedLandmarkLabelling:
        """The underlying (maintained) PLL index."""
        return self._pll

    @property
    def label_entries(self) -> int:
        """``size(L)``; monotonically non-decreasing under insertions."""
        return self._pll.label_entries

    def query(self, u: int, v: int) -> float:
        """Exact distance by 2-hop label merge."""
        return self._pll.query(u, v)

    def size_bytes(self) -> int:
        """Logical index footprint (Table 1 accounting)."""
        return self._pll.size_bytes()

    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int) -> int:
        """Insert ``(a, b)`` and resume the affected hubs' pruned BFSs.

        Returns the number of resumed BFSs (one per hub in the snapshot of
        ``L(a) ∪ L(b)``), the quantity the update cost is proportional to.
        """
        self._graph.add_edge(a, b)
        labels = self._pll.labels
        # Snapshot before resuming: the resumed BFSs may add entries to the
        # endpoint labels themselves.
        from_a = list(labels.label(a).items())
        from_b = list(labels.label(b).items())
        jobs = [(self._pll.rank(h), h, b, d + 1) for h, d in from_a]
        jobs += [(self._pll.rank(h), h, a, d + 1) for h, d in from_b]
        # Important hubs first, as in the original algorithm: their new
        # entries maximise pruning for the less important hubs.
        jobs.sort()
        for _rank, hub, start, depth in jobs:
            self._pll.resume(hub, start, depth)
        return len(jobs)

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> int:
        """Vertex insertion: the new vertex becomes the lowest-priority hub
        (it never enters existing labels on its own) and its edges are
        processed as ordinary edge insertions."""
        neighbor_list = list(neighbors)
        self._graph.insert_vertex(v, [])
        self._pll.append_to_order(v)
        resumed = 0
        for w in neighbor_list:
            resumed += self.insert_edge(v, w)
        return resumed
