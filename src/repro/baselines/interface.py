"""The common oracle protocol shared by IncHL+ and all baselines.

The benchmark harness (Table 1, Figures 3–4) drives every method through
this protocol: build once, then interleave :meth:`insert_edge` and
:meth:`query`, reading :meth:`size_bytes` afterwards.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol, runtime_checkable

__all__ = ["DistanceOracle"]


@runtime_checkable
class DistanceOracle(Protocol):
    """Structural interface of a dynamic exact-distance oracle."""

    def query(self, u: int, v: int) -> float:
        """Exact distance between ``u`` and ``v`` (inf when disconnected)."""
        ...

    def insert_edge(self, u: int, v: int) -> object:
        """Insert edge ``(u, v)`` into the graph and repair the index."""
        ...

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> object:
        """Insert vertex ``v`` with edges to existing ``neighbors``."""
        ...

    def size_bytes(self) -> int:
        """Logical index footprint in bytes (Table 1 accounting)."""
        ...
