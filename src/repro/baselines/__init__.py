"""Baseline distance oracles the paper compares against.

* :class:`~repro.baselines.bfs.OnlineBFS` — index-free ground truth;
* :class:`~repro.baselines.pll.PrunedLandmarkLabelling` and
  :class:`~repro.baselines.incpll.IncPLL` — 2-hop cover labelling and its
  incremental variant (Akiba et al., SIGMOD 2013 / WWW 2014);
* :class:`~repro.baselines.fd.FullDynamicOracle` (``IncFD``) — landmark
  shortest-path trees plus bounded search (Hayashi et al., CIKM 2016).

All oracles implement the :class:`~repro.baselines.interface.DistanceOracle`
protocol so the benchmark harness can drive them interchangeably.
"""

from repro.baselines.interface import DistanceOracle
from repro.baselines.bfs import OnlineBFS
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.baselines.incpll import IncPLL
from repro.baselines.fd import FullDynamicOracle

__all__ = [
    "DistanceOracle",
    "OnlineBFS",
    "PrunedLandmarkLabelling",
    "IncPLL",
    "FullDynamicOracle",
]
