"""Pruned landmark labelling (PLL) — Akiba, Iwata & Yoshida, SIGMOD 2013.

The static 2-hop cover baseline that IncPLL (WWW 2014) maintains.  Every
vertex is processed in *degree-descending order*; a pruned BFS from the
``k``-th vertex adds ``(v_k, d)`` to the label of each vertex it reaches,
pruning wherever the labels built so far already certify a distance ``<= d``.
Queries are answered purely by merging the two labels over common hubs —
no graph search, which is why the paper observes fast (and stable) PLL
query times but a labelling 20–30x the graph size.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.labels import LabelStore
from repro.exceptions import ConstructionBudgetExceeded, GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traversal import INF

__all__ = ["PrunedLandmarkLabelling", "pll_query"]


def pll_query(labels: LabelStore, u: int, v: int) -> float:
    """2-hop cover query: ``min over common hubs h of δ(h,u) + δ(h,v)``."""
    if u == v:
        return 0
    label_u = labels.label(u)
    label_v = labels.label(v)
    if len(label_u) > len(label_v):
        label_u, label_v = label_v, label_u
    best = INF
    for h, du in label_u.items():
        dv = label_v.get(h)
        if dv is not None:
            candidate = du + dv
            if candidate < best:
                best = candidate
    return best


class PrunedLandmarkLabelling:
    """Static PLL index over a :class:`DynamicGraph`.

    ``order`` may be supplied explicitly (useful in tests); by default it is
    the degree-descending order the original paper uses.

    >>> from repro.graph.generators import grid_graph
    >>> pll = PrunedLandmarkLabelling(grid_graph(3, 3))
    >>> pll.query(0, 8)
    4
    """

    name = "PLL"

    def __init__(
        self,
        graph: DynamicGraph,
        order: Sequence[int] | None = None,
        time_budget_s: float | None = None,
    ) -> None:
        self._graph = graph
        if order is None:
            order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
        else:
            order = list(order)
            if set(order) != set(graph.vertices()):
                raise GraphError("order must be a permutation of the vertices")
        self._order = order
        self._rank = {v: i for i, v in enumerate(order)}
        self._labels = LabelStore()
        self._build(time_budget_s)

    # ------------------------------------------------------------------
    def _build(self, time_budget_s: float | None) -> None:
        deadline = None
        if time_budget_s is not None:
            deadline = time.perf_counter() + time_budget_s
        for root in self._order:
            if deadline is not None and time.perf_counter() > deadline:
                raise ConstructionBudgetExceeded("PLL construction", time_budget_s)
            self._pruned_bfs(root)

    def _pruned_bfs(self, root: int, start: int | None = None, start_dist: int = 0) -> None:
        """Pruned BFS from hub ``root``.

        With ``start`` given, this is the *resumed* BFS used by IncPLL: the
        frontier begins at ``start`` with distance ``start_dist`` instead of
        at the root itself.
        """
        labels = self._labels
        adj = self._graph.adjacency()
        if start is None:
            frontier = [root]
            depth = 0
            labels.set_entry(root, root, 0)
            visited = {root}
        else:
            depth = start_dist
            if pll_query(labels, root, start) <= depth:
                return
            labels.set_entry(start, root, depth)
            frontier = [start]
            visited = {root, start}
        while frontier:
            depth += 1
            next_frontier: list[int] = []
            for v in frontier:
                for w in adj[v]:
                    if w in visited:
                        continue
                    visited.add(w)
                    # Prune: the existing labels already certify <= depth.
                    if pll_query(labels, root, w) <= depth:
                        continue
                    labels.set_entry(w, root, depth)
                    next_frontier.append(w)
            frontier = next_frontier

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph."""
        return self._graph

    @property
    def labels(self) -> LabelStore:
        """The 2-hop label store (read-only for callers)."""
        return self._labels

    @property
    def label_entries(self) -> int:
        """``size(L)`` of the 2-hop labelling."""
        return self._labels.total_entries

    def rank(self, v: int) -> int:
        """Position of ``v`` in the hub order (0 = most important)."""
        return self._rank[v]

    def resume(self, root: int, start: int, start_dist: int) -> None:
        """Resume the pruned BFS of hub ``root`` at ``start``/``start_dist``.

        This is the primitive IncPLL is built from (Akiba et al. 2014): it
        behaves exactly as if the original pruned BFS from ``root`` had also
        reached ``start`` at distance ``start_dist``.
        """
        self._pruned_bfs(root, start=start, start_dist=start_dist)

    def append_to_order(self, v: int) -> None:
        """Register a newly inserted vertex as the lowest-priority hub and
        seed its self-entry ``(v, 0)``."""
        if v in self._rank:
            raise GraphError(f"vertex {v} is already in the hub order")
        self._rank[v] = len(self._order)
        self._order.append(v)
        self._labels.set_entry(v, v, 0)

    def query(self, u: int, v: int) -> float:
        """Exact distance by 2-hop label merge."""
        return pll_query(self._labels, u, v)

    def size_bytes(self, bytes_per_entry: int = 8) -> int:
        """Logical index footprint (Table 1 accounting)."""
        return self._labels.size_bytes(bytes_per_entry)
