"""IncFD — bit-parallel landmark SPTs + bounded search (Hayashi et al. 2016).

The fully-dynamic baseline of the paper: a small set ``R`` of high-degree
landmarks, one *bit-parallel* shortest-path tree (BP-SPT) per landmark, and
queries answered by a BP-refined upper bound followed by a bounded
bidirectional search on the landmark-sparsified graph.

Bit-parallel SPTs (the technique of Akiba et al., adopted by Hayashi et
al.) store, per vertex ``v`` and tree root ``r``:

* ``dist[v] = d(r, v)``;
* two bitmasks over ``<= 64`` *selected* root neighbours ``s``:
  ``S⁻(v) = {s : d(s, v) = dist[v] - 1}`` and
  ``S⁰(v) = {s : d(s, v) = dist[v]}``.

The masks tighten the landmark upper bound: via root ``r`` the distance is
at most ``d(r,u) + d(r,v)``, improved to ``-2`` when ``S⁻(u) ∩ S⁻(v) ≠ ∅``
and to ``-1`` when ``S⁻`` meets ``S⁰`` either way.

Update-cost consequence (this is what the paper's Table 1 measures): an
edge insertion must repair the masks *wherever any selected neighbour's
distance changed*, not merely where the root distance changed — so IncFD
cannot skip landmarks the way IncHL+'s Lemma 4.3 check does, and its
repaired region is a superset of IncHL+'s affected set, with heavier
per-vertex work.  Deletion support (parent/children surgery) is outside
the reproduction's incremental scope.

Size accounting: ``8`` bytes per (vertex, tree) pair — the packed
distance+parent record implied by the paper's reported IncFD sizes; the
transient mask words are query-acceleration state the paper's size column
evidently excludes.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from heapq import heappop, heappush

from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traversal import INF, bidirectional_bfs
from repro.landmarks.selection import select_landmarks

__all__ = ["FullDynamicOracle", "BitParallelSPT"]

_MAX_SELECTED = 64


class BitParallelSPT:
    """One landmark's bit-parallel SPT: distances plus ``S⁻``/``S⁰`` masks."""

    __slots__ = ("root", "dist", "s_minus", "s_zero", "selected_bit")

    def __init__(self, graph: DynamicGraph, root: int) -> None:
        self.root = root
        # Selected root neighbours, highest degree first (Akiba's heuristic),
        # fixed at construction time.
        neighbors = sorted(
            graph.neighbors(root), key=lambda v: (-graph.degree(v), v)
        )
        self.selected_bit: dict[int, int] = {
            s: 1 << i for i, s in enumerate(neighbors[:_MAX_SELECTED])
        }
        self.dist: dict[int, int] = {}
        self.s_minus: dict[int, int] = {}
        self.s_zero: dict[int, int] = {}
        self._full_build(graph)

    # ------------------------------------------------------------------
    def _full_build(self, graph: DynamicGraph) -> None:
        adj = graph.adjacency()
        root = self.root
        dist = self.dist
        dist.clear()
        dist[root] = 0
        levels: list[list[int]] = [[root]]
        frontier = [root]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: list[int] = []
            for v in frontier:
                for w in adj[v]:
                    if w not in dist:
                        dist[w] = depth
                        next_frontier.append(w)
            if next_frontier:
                levels.append(next_frontier)
            frontier = next_frontier
        self.s_minus = {root: 0}
        self.s_zero = {root: 0}
        for level_vertices in levels[1:]:
            self._recompute_level_masks(adj, level_vertices)

    def _recompute_level_masks(
        self, adj: dict[int, list[int]], level_vertices: list[int]
    ) -> None:
        """Two-sweep mask computation for one complete BFS level."""
        dist = self.dist
        s_minus = self.s_minus
        s_zero = self.s_zero
        selected_bit = self.selected_bit
        for v in level_vertices:
            d_parent = dist[v] - 1
            mask = selected_bit.get(v, 0) if dist[v] == 1 else 0
            for u in adj[v]:
                if dist.get(u) == d_parent:
                    mask |= s_minus[u]
            s_minus[v] = mask
        for v in level_vertices:
            d_v = dist[v]
            d_parent = d_v - 1
            mask = 0
            for u in adj[v]:
                du = dist.get(u)
                if du == d_parent:
                    mask |= s_zero[u]
                elif du == d_v:
                    mask |= s_minus[u]
            s_zero[v] = mask & ~s_minus[v]

    # ------------------------------------------------------------------
    def repair_insertion(self, graph: DynamicGraph, a: int, b: int) -> int:
        """Repair distances and masks after inserting edge ``(a, b)``.

        Returns the number of vertices whose record was recomputed — the
        work metric the update-time experiments charge.
        """
        adj = graph.adjacency()
        dist = self.dist

        # Step 1: plain improvement BFS on root distances.
        improved: list[int] = []
        da = dist.get(a, INF)
        db = dist.get(b, INF)
        seed = None
        if da + 1 < db:
            seed, seed_dist = b, da + 1
        elif db + 1 < da:
            seed, seed_dist = a, db + 1
        if seed is not None:
            dist[seed] = seed_dist
            improved.append(seed)
            frontier = [seed]
            depth = seed_dist
            while frontier:
                depth += 1
                next_frontier: list[int] = []
                for v in frontier:
                    for w in adj[v]:
                        if depth < dist.get(w, INF):
                            dist[w] = depth
                            next_frontier.append(w)
                            improved.append(w)
                frontier = next_frontier

        # Step 2: mask fixpoint.  Any vertex whose recurrence inputs changed
        # must be recomputed: the edge endpoints (new neighbour), improved
        # vertices (new level), and their neighbours (level reclassification).
        s_minus = self.s_minus
        s_zero = self.s_zero
        selected_bit = self.selected_bit
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()

        def push(v: int) -> None:
            d = dist.get(v)
            if d is not None and v not in queued and v != self.root:
                queued.add(v)
                heappush(heap, (d, v))

        push(a)
        push(b)
        for v in improved:
            push(v)
            for w in adj[v]:
                push(w)

        recomputed = 0
        while heap:
            d, v = heappop(heap)
            queued.discard(v)
            if dist.get(v) != d:  # stale heap entry
                continue
            recomputed += 1
            d_parent = d - 1
            minus = selected_bit.get(v, 0) if d == 1 else 0
            zero = 0
            for u in adj[v]:
                du = dist.get(u)
                if du == d_parent:
                    minus |= s_minus.get(u, 0)
                    zero |= s_zero.get(u, 0)
                elif du == d:
                    zero |= s_minus.get(u, 0)
            zero &= ~minus
            if s_minus.get(v) != minus or s_zero.get(v) != zero:
                s_minus[v] = minus
                s_zero[v] = zero
                # Changed masks feed same-level (S⁰) and next-level inputs.
                for w in adj[v]:
                    dw = dist.get(w)
                    if dw is not None and dw >= d:
                        push(w)
        return recomputed

    # ------------------------------------------------------------------
    def bound_between(self, u: int, v: int) -> float:
        """BP-refined upper bound on ``d(u, v)`` via this tree."""
        du = self.dist.get(u)
        if du is None:
            return INF
        dv = self.dist.get(v)
        if dv is None:
            return INF
        if self.s_minus[u] & self.s_minus[v]:
            return du + dv - 2
        if (self.s_minus[u] & self.s_zero[v]) or (self.s_zero[u] & self.s_minus[v]):
            return du + dv - 1
        return du + dv

    def size_bytes(self, bytes_per_vertex: int = 8) -> int:
        """Packed (distance, parent) record per reachable vertex."""
        return len(self.dist) * bytes_per_vertex


class FullDynamicOracle:
    """The paper's ``IncFD`` baseline.

    >>> from repro.graph.generators import grid_graph
    >>> oracle = FullDynamicOracle(grid_graph(3, 3), num_landmarks=2)
    >>> oracle.query(0, 8)
    4
    """

    name = "IncFD"

    def __init__(
        self,
        graph: DynamicGraph,
        num_landmarks: int = 20,
        landmarks: Sequence[int] | None = None,
        rng: int | random.Random | None = None,
    ) -> None:
        self._graph = graph
        if landmarks is None:
            landmarks = select_landmarks(graph, num_landmarks, "degree", rng=rng)
        else:
            landmarks = list(landmarks)
            for r in landmarks:
                if not graph.has_vertex(r):
                    raise GraphError(f"landmark {r} is not a vertex")
        self._landmarks = landmarks
        self._landmark_set = frozenset(landmarks)
        self._trees = {r: BitParallelSPT(graph, r) for r in landmarks}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph."""
        return self._graph

    @property
    def landmarks(self) -> list[int]:
        """Landmark roots of the maintained SPTs."""
        return self._landmarks

    def tree(self, r: int) -> BitParallelSPT:
        """The maintained BP-SPT of landmark ``r``."""
        return self._trees[r]

    def size_bytes(self) -> int:
        """Total SPT footprint (Table 1 accounting)."""
        return sum(tree.size_bytes() for tree in self._trees.values())

    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Exact distance: BP upper bound + bounded sparsified search."""
        if u == v:
            return 0
        if u in self._landmark_set:
            return self._trees[u].dist.get(v, INF)
        if v in self._landmark_set:
            return self._trees[v].dist.get(u, INF)
        bound = INF
        for tree in self._trees.values():
            candidate = tree.bound_between(u, v)
            if candidate < bound:
                bound = candidate
        sparsified = bidirectional_bfs(
            self._graph, u, v, bound=bound, skip=self._landmark_set
        )
        return sparsified if sparsified <= bound else bound

    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int) -> int:
        """Insert ``(a, b)`` and repair every BP-SPT; returns total work."""
        self._graph.add_edge(a, b)
        return sum(
            tree.repair_insertion(self._graph, a, b)
            for tree in self._trees.values()
        )

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> int:
        """Vertex insertion decomposed into edge insertions."""
        neighbor_list = list(neighbors)
        self._graph.insert_vertex(v, [])
        work = 0
        for w in neighbor_list:
            work += self.insert_edge(v, w)
        return work

    def _invariant_rebuild_equal(self) -> bool:
        """Test hook: maintained trees equal freshly built ones."""
        for r, tree in self._trees.items():
            fresh = BitParallelSPT(self._graph, r)
            fresh.selected_bit = tree.selected_bit  # selection is build-time
            fresh._full_build(self._graph)
            if tree.dist != fresh.dist:
                return False
            if tree.s_minus != fresh.s_minus or tree.s_zero != fresh.s_zero:
                return False
        return True
