"""Index-free online BFS oracle — ground truth and sanity baseline.

This is the "traditional algorithm" of the paper's related-work discussion:
exact, zero index cost, but query time grows with the explored ball.  The
test-suite uses it as the reference implementation for every other oracle.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traversal import bidirectional_bfs

__all__ = ["OnlineBFS"]


class OnlineBFS:
    """Answer every query with a bidirectional BFS; no index to maintain.

    >>> from repro.graph.generators import grid_graph
    >>> oracle = OnlineBFS(grid_graph(4, 4))
    >>> oracle.query(0, 15)
    6
    """

    name = "BFS"

    def __init__(self, graph: DynamicGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph."""
        return self._graph

    def query(self, u: int, v: int) -> float:
        """Exact distance via bidirectional BFS."""
        return bidirectional_bfs(self._graph, u, v)

    def insert_edge(self, u: int, v: int) -> None:
        """Insert the edge; nothing to repair."""
        self._graph.add_edge(u, v)

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> None:
        """Insert the vertex and its edges; nothing to repair."""
        self._graph.insert_vertex(v, neighbors)

    def size_bytes(self) -> int:
        """No index: zero bytes."""
        return 0
