"""Landmark selection strategies for highway cover labellings."""

from repro.landmarks.selection import (
    select_landmarks,
    top_degree_landmarks,
    random_landmarks,
    betweenness_landmarks,
    spread_degree_landmarks,
)

__all__ = [
    "select_landmarks",
    "top_degree_landmarks",
    "random_landmarks",
    "betweenness_landmarks",
    "spread_degree_landmarks",
]
