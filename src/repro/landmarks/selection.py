"""Landmark selection strategies.

The paper (following Farhan et al. 2019 and Hayashi et al. 2016) selects the
``|R|`` *highest-degree* vertices as landmarks; that is the library default.
Alternative strategies are provided for the ablation experiment A1
(docs/DESIGN.md §5): random selection, sampled approximate betweenness, and
degree-with-spacing (high degree but pairwise non-adjacent, which spreads
landmarks across the graph).
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graph.traversal import bfs_with_parents
from repro.utils.rng import ensure_rng

__all__ = [
    "top_degree_landmarks",
    "random_landmarks",
    "betweenness_landmarks",
    "spread_degree_landmarks",
    "select_landmarks",
]


def _check_count(graph, count: int) -> None:
    if count < 1:
        raise GraphError(f"landmark count must be >= 1, got {count}")
    if count > graph.num_vertices:
        raise GraphError(
            f"cannot select {count} landmarks from {graph.num_vertices} vertices"
        )


def top_degree_landmarks(graph, count: int) -> list[int]:
    """The ``count`` highest-degree vertices (ties broken by lower id).

    This is the paper's selection rule; degree order also serves as the
    PLL vertex order in :mod:`repro.baselines.pll`.
    """
    _check_count(graph, count)
    ranked = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    return ranked[:count]


def random_landmarks(
    graph, count: int, rng: int | random.Random | None = None
) -> list[int]:
    """``count`` vertices sampled uniformly without replacement."""
    _check_count(graph, count)
    rng = ensure_rng(rng)
    return sorted(rng.sample(list(graph.vertices()), count))


def betweenness_landmarks(
    graph,
    count: int,
    num_sources: int = 32,
    rng: int | random.Random | None = None,
) -> list[int]:
    """Approximate-betweenness landmarks via sampled Brandes accumulation.

    Runs Brandes' dependency accumulation from ``num_sources`` sampled
    sources; picks the ``count`` vertices with the largest accumulated
    betweenness scores.  This is the classic sampling estimator — adequate
    for ranking, which is all landmark selection needs.
    """
    _check_count(graph, count)
    rng = ensure_rng(rng)
    vertices = list(graph.vertices())
    sources = rng.sample(vertices, min(num_sources, len(vertices)))
    score: dict[int, float] = {v: 0.0 for v in vertices}
    for s in sources:
        dist, parents = bfs_with_parents(graph, s)
        # Count shortest paths from s (sigma), then accumulate dependencies
        # in decreasing-distance order.
        order = sorted(dist, key=dist.__getitem__)
        sigma: dict[int, float] = {v: 0.0 for v in dist}
        sigma[s] = 1.0
        for v in order:
            for p in parents[v]:
                sigma[v] += sigma[p]
        delta: dict[int, float] = {v: 0.0 for v in dist}
        for v in reversed(order):
            for p in parents[v]:
                if sigma[v] > 0:
                    delta[p] += sigma[p] / sigma[v] * (1.0 + delta[v])
            if v != s:
                score[v] += delta[v]
    ranked = sorted(vertices, key=lambda v: (-score[v], v))
    return ranked[:count]


def spread_degree_landmarks(graph, count: int) -> list[int]:
    """High-degree landmarks constrained to be pairwise non-adjacent.

    Greedy: walk the degree-descending order, skipping vertices adjacent to
    an already-chosen landmark; falls back to plain degree order if the
    constraint cannot be satisfied (e.g. in dense graphs).
    """
    _check_count(graph, count)
    ranked = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    chosen: list[int] = []
    chosen_set: set[int] = set()
    for v in ranked:
        if len(chosen) == count:
            break
        if any(w in chosen_set for w in graph.neighbors(v)):
            continue
        chosen.append(v)
        chosen_set.add(v)
    for v in ranked:  # fallback fill if the spacing constraint ran dry
        if len(chosen) == count:
            break
        if v not in chosen_set:
            chosen.append(v)
            chosen_set.add(v)
    return chosen


_STRATEGIES = {
    "degree": top_degree_landmarks,
    "random": random_landmarks,
    "betweenness": betweenness_landmarks,
    "spread": spread_degree_landmarks,
}


def select_landmarks(
    graph,
    count: int,
    strategy: str = "degree",
    rng: int | random.Random | None = None,
) -> list[int]:
    """Select ``count`` landmarks using the named strategy.

    ``strategy`` is one of ``"degree"`` (paper default), ``"random"``,
    ``"betweenness"``, or ``"spread"``.
    """
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise GraphError(
            f"unknown landmark strategy {strategy!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        ) from None
    if strategy in ("random", "betweenness"):
        return fn(graph, count, rng=rng)
    return fn(graph, count)
