"""Online landmark maintenance: promote or demote landmarks on a live labelling.

The paper fixes ``R`` at construction time (|R| = 20, or 150 for the
billion-vertex Clueweb09) and Figure 3 studies sensitivity to |R| by
rebuilding from scratch per setting.  This extension makes the landmark
set itself dynamic, so a deployment can tune |R| online — e.g. promote a
hub that emerged from densification, or demote a landmark that stopped
paying for its labelling footprint — without a full reconstruction.

Both operations preserve the canonical minimal labelling exactly (the
test-suite compares against a from-scratch build with the new landmark
set), so they compose freely with IncHL+/DecHL updates.

* :func:`add_landmark` costs one BFS plus one filtering pass over the
  existing entries — ``O(n + m + size(L))``.
* :func:`remove_landmark` rebuilds the per-landmark labellings that could
  have routed shortest paths through the demoted landmark (detected with
  one BFS); demotion can *uncover* vertices for every other landmark, so
  a per-landmark partial rebuild is the price of exact minimality.
"""

from __future__ import annotations

from repro.core.construction import _labelling_bfs
from repro.core.labelling import HighwayCoverLabelling
from repro.exceptions import LabellingError, VertexNotFoundError
from repro.graph.traversal import bfs_distances

__all__ = ["add_landmark", "remove_landmark"]


def add_landmark(graph, labelling: HighwayCoverLabelling, r_new: int) -> int:
    """Promote vertex ``r_new`` to a landmark, repairing labels in place.

    After one labelling BFS from ``r_new`` (which fills its highway row
    and emits its minimal entries), minimality of the *other* landmarks'
    entries is restored by removing every entry ``(r, d)`` of a vertex
    ``v`` with ``d_G(r, r_new) + d_G(r_new, v) = d`` — exactly the
    vertices for which ``r_new`` now lies on a shortest ``r``-path
    (Lemma 4.6 with ``r' = r_new``).

    Returns the number of entries removed by the filtering pass.
    """
    if not graph.has_vertex(r_new):
        raise VertexNotFoundError(r_new)
    highway = labelling.highway
    labels = labelling.labels
    if r_new in highway.landmark_set:
        raise LabellingError(f"vertex {r_new} is already a landmark")

    dist_new = bfs_distances(graph, r_new)
    highway.add_landmark(r_new)

    # The promoted vertex stops carrying a label: its entries move into
    # the highway row (each existing entry (r, d) is an exact d_G(r, r_new)).
    for r, d in list(labels.label(r_new).items()):
        highway.set_distance(r, r_new, d)
        labels.remove_entry(r_new, r)

    # One labelling BFS emits r_new's minimal entries and records its
    # distance to every other landmark it reaches (completing the row for
    # landmarks whose old shortest path to r_new was covered).
    _labelling_bfs(
        graph.adjacency(), r_new, highway.landmark_set, highway, labels
    )

    # Filtering pass: entries now covered by r_new must go.
    row_new = highway.row(r_new)
    removed = 0
    doomed: list[tuple[int, int]] = []
    for v, label in labels.items():
        dv = dist_new.get(v)
        if dv is None:
            continue
        for r, d in label.items():
            if r == r_new:
                continue
            via = row_new.get(r)
            if via is not None and via + dv == d:
                doomed.append((v, r))
    for v, r in doomed:
        labels.remove_entry(v, r)
        removed += 1
    return removed


def remove_landmark(graph, labelling: HighwayCoverLabelling, r_old: int) -> list[int]:
    """Demote landmark ``r_old`` back to a plain vertex, in place.

    All of ``r_old``'s entries and highway distances are dropped, and the
    labellings of the landmarks that could reach ``r_old`` are rebuilt:
    demotion shrinks the cover, so vertices whose only covering landmark
    was ``r_old`` regain entries — including fresh entries for ``r_old``
    itself, which is a plain vertex again.

    Returns the landmarks whose labellings were rebuilt.
    """
    highway = labelling.highway
    labels = labelling.labels
    if r_old not in highway.landmark_set:
        raise LabellingError(f"vertex {r_old} is not a landmark")
    if len(highway.landmarks) == 1:
        raise LabellingError("cannot demote the last landmark")

    reachable = bfs_distances(graph, r_old)
    labels.clear_landmark(r_old)
    highway.remove_landmark(r_old)

    adj = graph.adjacency()
    landmark_set = highway.landmark_set
    rebuilt: list[int] = []
    for r in highway.landmarks:
        if r not in reachable:
            # r_old cannot lie on any shortest path from r, so r's
            # labelling (and highway row) are untouched by the demotion.
            continue
        labels.clear_landmark(r)
        highway.clear_row(r)
        _labelling_bfs(adj, r, landmark_set, highway, labels)
        rebuilt.append(r)
    return rebuilt
