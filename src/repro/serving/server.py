"""Asyncio TCP front-ends speaking newline-delimited JSON.

One request per line, one JSON object per response line.  Ops::

    {"op": "query",      "u": 17, "v": 4242}
    {"op": "query_many", "pairs": [[0, 5], [3, 9]]}
    {"op": "path",       "u": 17, "v": 4242}
    {"op": "update",     "kind": "insert", "u": 17, "v": 4242}
    {"op": "updates",    "events": [["insert", 1, 2], ["delete", 3, 4]]}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "spans", "of": "<trace-id>", "limit": 100}
    {"op": "profile", "action": "dump", "folded": true}
    {"op": "history", "limit": 120}
    {"op": "alerts"}
    {"op": "snapshot"}
    {"op": "ping"}

Any request may carry ``"trace": "<id>"`` — the observability layer then
records a span around its dispatch (and the cluster router propagates
the id to the replica, since read lines are forwarded verbatim); see
:mod:`repro.obs.trace`.  ``metrics`` returns the Prometheus text
exposition (also served over HTTP with ``--metrics-port``), ``spans``
the recent span ring.  The continuous-observability ops
(docs/DESIGN.md §13): ``profile`` controls/dumps the sampling profiler
(:mod:`repro.obs.profile`), ``history`` returns the recorded metrics
trajectory (:mod:`repro.obs.timeseries`) and ``alerts`` the SLO
burn-rate state (:mod:`repro.obs.slo`).

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``.
Unreachable distances serialise as ``null`` (JSON has no infinity).
``update`` acknowledges *enqueueing* — the single writer applies
asynchronously and publishes a fresh snapshot per drained chunk; ``stats``
reports the backlog and the served epoch.  ``snapshot`` force-publishes
and reports the new epoch (mainly for tests and operational probes).

Two layers live here:

* :class:`LineServer` — the protocol-agnostic base: connection loop,
  threaded lifecycle for tests/tools, **graceful shutdown** (SIGTERM /
  SIGINT handlers, in-flight requests drain before sockets close), and
  an overridable async ``_respond`` hook.  The cluster router
  (:mod:`repro.cluster.router`) builds on the same base.
* :class:`OracleServer` — the single-node query service wrapping an
  :class:`OracleService`; reads run directly on the event loop (pure
  in-memory lookups on an immutable snapshot, nothing to offload).  It
  can warm-start from a :func:`repro.utils.serialization.save_oracle`
  file via :meth:`OracleServer.from_file` (the ``python -m repro serve``
  path).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from time import perf_counter

from repro.exceptions import ReproError, ServingError
from repro.graph.traversal import INF
from repro.obs.exporter import CONTENT_TYPE, MetricsExporter
from repro.obs.log import get_logger, slow_threshold_ms
from repro.obs.profile import dump_if_enabled, get_profiler, start_if_enabled
from repro.obs.registry import COUNT_BOUNDS, MetricsRegistry
from repro.obs.slo import SLOEvaluator
from repro.obs.timeseries import TimeSeriesRecorder, peak_rss_kb
from repro.obs.trace import get_recorder, obs_enabled, span
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent

__all__ = ["LineServer", "OracleServer", "ThreadedLoopRunner"]

_MAX_LINE = 1 << 20  # 1 MiB per request line is plenty for query_many bursts
_PUBLISH_TIMEOUT = 60.0  # seconds a `snapshot` op waits for the writer
_DRAIN_TIMEOUT = 10.0  # seconds a graceful stop waits for in-flight requests


def _finite(distance: float) -> float | int | None:
    """JSON-encodable distance: ``None`` stands for unreachable."""
    return None if distance == INF else distance


def _encode(response: dict) -> bytes:
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> tuple[dict | None, dict | None]:
    """``(request, None)`` on success, ``(None, error_response)`` else."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, {"ok": False, "error": f"invalid JSON: {exc.msg}"}
    if not isinstance(request, dict):
        return None, {"ok": False, "error": "request must be a JSON object"}
    return request, None


class ThreadedLoopRunner:
    """Run an async start/stop pair on a dedicated event-loop thread.

    The threaded lifecycle every server-ish object needs for tests, smoke
    checks and load generators: ``launch`` spins a fresh event loop on a
    daemon thread, runs the start coroutine on it (propagating failures to
    the caller), then keeps the loop alive; ``shutdown`` stops the loop
    and runs the stop coroutine on it before joining.
    """

    def __init__(self, name: str = "asyncio-runner") -> None:
        self._name = name
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop | None:
        return self._loop

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def launch(self, start, stop):
        """Run ``await start()`` on a new loop thread; returns its result.

        ``stop`` is stashed and runs on the same loop during
        :meth:`shutdown`.
        """
        if self._thread is not None:
            raise ServingError(f"{self._name} thread already running")
        ready = threading.Event()
        outcome: list = []  # [("ok", result)] or [("err", exc)]

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                result = loop.run_until_complete(start())
            except BaseException as exc:  # surface bind errors to the caller
                outcome.append(("err", exc))
                ready.set()
                loop.close()
                self._loop = None
                return
            outcome.append(("ok", result))
            ready.set()
            try:
                loop.run_forever()
            finally:
                try:
                    loop.run_until_complete(stop())
                finally:
                    leftovers = asyncio.all_tasks(loop)
                    for task in leftovers:
                        task.cancel()
                    if leftovers:
                        loop.run_until_complete(
                            asyncio.gather(*leftovers, return_exceptions=True)
                        )
                    loop.close()
                    self._loop = None

        self._thread = threading.Thread(target=_run, name=self._name, daemon=True)
        self._thread.start()
        ready.wait()
        kind, value = outcome[0]
        if kind == "err":
            self._thread.join()
            self._thread = None
            raise value
        return value

    def shutdown(self) -> None:
        """Stop the loop (running the stop coroutine) and join the thread."""
        thread, loop = self._thread, self._loop
        if thread is None:
            return
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._thread = None


class _Connection:
    """One client connection's drain bookkeeping: ``busy`` is True exactly
    while a request is being answered (not while parked in ``readline``),
    so a graceful stop knows which tasks to wait for and which to cancel."""

    __slots__ = ("task", "busy")

    def __init__(self, task: asyncio.Task) -> None:
        self.task = task
        self.busy = False


class LineServer:
    """Base asyncio TCP server: one JSON object per line, each direction.

    Subclasses implement ``async _respond(line) -> dict | bytes`` (bytes
    pass through verbatim — the cluster router forwards replica response
    lines without re-encoding) and may hook ``_on_start`` / ``_on_stop``.

    Graceful shutdown contract: :meth:`stop` closes the listener, cancels
    *idle* connections (parked between requests), waits up to
    ``drain_timeout`` for *in-flight* requests to finish writing their
    responses, then runs ``_on_stop``.  :meth:`run` serves until SIGTERM /
    SIGINT (or :meth:`request_shutdown`) and then stops gracefully — the
    ``python -m repro serve`` / ``serve-cluster`` code path.
    """

    #: Component tag used in spans and structured log records; the
    #: router/replica subclasses override it.
    obs_component = "server"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8355,
        *,
        drain_timeout: float = _DRAIN_TIMEOUT,
        metrics_port: int | None = None,
        history_path: str | None = None,
        history_interval: float = 5.0,
        history_max_points: int = 2048,
        slos=None,
    ) -> None:
        self._host = host
        self._port = port
        self._drain_timeout = drain_timeout
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._runner = ThreadedLoopRunner(name=type(self).__name__.lower())
        self._connections: set[_Connection] = set()
        self._drained: asyncio.Event | None = None
        self._stopping = False
        self._shutdown_event: asyncio.Event | None = None
        #: Per-server metrics registry (several servers can share one test
        #: process, so the registry is per instance, not process-global).
        self._registry = MetricsRegistry()
        self._metrics_port = metrics_port
        self._exporter: MetricsExporter | None = None
        self._requests_family = self._registry.counter(
            "repro_requests_total",
            "NDJSON protocol requests handled, by op.",
            labelnames=("op",),
        )
        self._op_counters: dict = {}
        self._logger = get_logger(self.obs_component)
        #: Continuous observability (docs/DESIGN.md §13): the metrics
        #: history recorder feeds both the ``history`` op and the SLO
        #: evaluator.  With SLOs but no history path the recorder runs
        #: memory-only — burn rates still need a trajectory.
        self._history_path = history_path
        self._history_interval = history_interval
        self._history_max_points = history_max_points
        self._history: TimeSeriesRecorder | None = None
        self._slo_eval: SLOEvaluator | None = (
            SLOEvaluator(slos, registry=self._registry) if slos else None
        )

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0`` requests)."""
        if self._server is None:
            raise ServingError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def registry(self) -> MetricsRegistry:
        """This server's metrics registry (rendered by the ``metrics`` op
        and the ``--metrics-port`` HTTP endpoint)."""
        return self._registry

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """``(host, port)`` of the HTTP metrics endpoint, or ``None`` when
        no ``metrics_port`` was configured."""
        if self._exporter is None:
            return None
        return self._exporter.address

    def _observe_request(
        self, op, elapsed_ms: float, trace: str | None = None
    ) -> None:
        """Per-request bookkeeping: the op counter and the slow-query log."""
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self._requests_family.labels(op=str(op))
            self._op_counters[op] = counter
        counter.inc()
        if elapsed_ms >= slow_threshold_ms() and obs_enabled():
            self._logger.warning(
                "slow_request",
                op=op,
                dur_ms=round(elapsed_ms, 3),
                trace=trace,
            )

    # ------------------------------------------------------------------
    # Continuous observability (shared by OracleServer and the router)
    # ------------------------------------------------------------------
    @property
    def history(self) -> TimeSeriesRecorder | None:
        """The metrics-history recorder (``None`` unless enabled)."""
        return self._history

    @property
    def slo_evaluator(self) -> SLOEvaluator | None:
        return self._slo_eval

    def _sample_metrics(self) -> dict:
        """One metrics-history point (subclass hook; keys feed the
        ``history`` op, ``repro dash`` sparklines and SLO metrics)."""
        return {"rss_kb": peak_rss_kb()}

    def _profile_response(self, request: dict) -> dict:
        """The ``profile`` op: control/dump the process-wide sampling
        profiler.  ``action``: ``dump`` (default; stats + folded
        stacks), ``start``, ``stop``, ``reset``.  ``folded: false``
        omits the stack text (stats only)."""
        action = str(request.get("action", "dump"))
        profiler = get_profiler()
        if action == "start":
            profiler.start()
        elif action == "stop":
            profiler.stop()
        elif action == "reset":
            profiler.reset()
        elif action != "dump":
            return {"ok": False, "error": f"unknown profile action {action!r}"}
        response = {"ok": True, "profile": profiler.stats()}
        if request.get("folded", True):
            response["folded"] = profiler.folded()
        return response

    def _history_response(self, request: dict) -> dict:
        """The ``history`` op: the last ``limit`` metrics-history points
        (empty when no recorder is running)."""
        limit = request.get("limit")
        limit = int(limit) if limit is not None else 120
        recorder = self._history
        points = recorder.points(limit=limit) if recorder is not None else []
        return {
            "ok": True,
            "points": points,
            "recording": recorder is not None,
            "interval_s": recorder.interval_s if recorder is not None else None,
            "path": recorder.path if recorder is not None else None,
        }

    def _alerts_response(self, request: dict) -> dict:
        """The ``alerts`` op: SLO definitions, active alerts and the last
        burn-rate evaluations (empty without configured SLOs)."""
        evaluator = self._slo_eval
        if evaluator is None:
            return {"ok": True, "alerts": [], "evaluations": [], "slos": []}
        return {
            "ok": True,
            "alerts": evaluator.active_alerts(),
            "evaluations": evaluator.last_evaluations(),
            "slos": [slo.to_dict() for slo in evaluator.slos],
        }

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    async def _on_start(self) -> None:
        """Subclass hook run before the listening socket binds."""

    async def _on_stop(self) -> None:
        """Subclass hook run after connections drain (close services,
        write-ahead logs, replica links...)."""

    async def _respond(self, line: bytes) -> dict | bytes:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "LineServer":
        """Run the start hook and bind the listening socket."""
        self._stopping = False
        self._loop = asyncio.get_running_loop()
        # Fresh Event per start: a restarted server runs on a new loop,
        # and an Event awaited on the old loop would raise at stop time.
        self._drained = asyncio.Event()
        self._drained.set()
        await self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, limit=_MAX_LINE
        )
        if self._metrics_port is not None:
            self._exporter = MetricsExporter(
                self._registry, self._host, self._metrics_port
            )
            await self._exporter.start()
        # Continuous observability: the history recorder runs whenever a
        # path was given or SLOs need a trajectory; the sampling profiler
        # only under REPRO_PROFILE=1 (and it is process-wide — several
        # servers in one test process share it harmlessly).
        if self._history_path is not None or self._slo_eval is not None:
            self._history = TimeSeriesRecorder(
                self._history_path,
                self._sample_metrics,
                interval_s=self._history_interval,
                max_points=self._history_max_points,
                on_point=(
                    self._slo_eval.evaluate
                    if self._slo_eval is not None
                    else None
                ),
            )
            self._history.start()
        start_if_enabled()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def request_shutdown(self) -> None:
        """Ask a :meth:`run` loop to exit and stop gracefully.

        Safe to call from signal handlers and from other threads.
        """
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
    ) -> bool:
        """Route SIGTERM/SIGINT to :meth:`request_shutdown` (graceful).

        Returns whether handlers were installed — they cannot be outside
        the main thread (or on loops without signal support), in which
        case callers fall back to :meth:`request_shutdown`.
        """
        loop = asyncio.get_running_loop()
        try:
            for sig in signals:
                loop.add_signal_handler(sig, self.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    async def run(self, *, install_signals: bool = True, on_started=None) -> None:
        """Start, serve until a shutdown is requested, stop gracefully.

        ``on_started(self)`` fires once the socket is bound — the replica
        worker reports its ephemeral port through it, the CLI prints the
        address.
        """
        await self.start()
        self._shutdown_event = asyncio.Event()
        if install_signals:
            self.install_signal_handlers()
        if on_started is not None:
            on_started(self)
        try:
            await self._shutdown_event.wait()
        finally:
            self._shutdown_event = None
            await self.stop()

    async def stop(self) -> None:
        """Graceful stop: close the listener, drain in-flight requests
        (up to ``drain_timeout``), then run the stop hook."""
        self._stopping = True
        if self._history is not None:
            self._history.stop()
            self._history = None
        dump_if_enabled()
        if self._exporter is not None:
            await self._exporter.stop()
            self._exporter = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._drain_connections()
        await self._on_stop()

    async def _drain_connections(self) -> None:
        if not self._connections:
            return
        # Idle connections are parked in readline — nothing in flight to
        # preserve, cancel them now.  Busy ones get drain_timeout to finish
        # writing the response they owe.
        for conn in list(self._connections):
            if not conn.busy:
                conn.task.cancel()
        try:
            await asyncio.wait_for(self._drained.wait(), self._drain_timeout)
        except (TimeoutError, asyncio.TimeoutError):
            for conn in list(self._connections):
                conn.task.cancel()
            try:
                await asyncio.wait_for(self._drained.wait(), 1.0)
            except (TimeoutError, asyncio.TimeoutError):  # pragma: no cover
                # A handler is stuck in an uncancellable executor call;
                # give up on it — _on_stop must still run (close the
                # service/WAL) or the shutdown would leak worse.
                pass

    # ------------------------------------------------------------------
    # Threaded lifecycle (tests, smoke checks, load generators)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> tuple[str, int]:
        """Run the server on a dedicated event-loop thread.

        Returns the bound ``(host, port)``; :meth:`stop_thread` shuts the
        loop and the server down (gracefully — in-flight requests drain).
        """
        self._runner.launch(self.start, self.stop)
        return self.address

    def stop_thread(self) -> None:
        """Stop a server started with :meth:`start_in_thread`."""
        self._runner.shutdown()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(asyncio.current_task())
        self._connections.add(conn)
        self._drained.clear()
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request too large"}))
                    await writer.drain()
                    break
                if not line:
                    break
                conn.busy = True
                try:
                    response = await self._respond(line)
                    if not isinstance(response, (bytes, bytearray)):
                        response = _encode(response)
                    writer.write(response)
                    await writer.drain()
                finally:
                    conn.busy = False
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:  # graceful stop of an idle connection
            pass
        finally:
            self._connections.discard(conn)
            if not self._connections:
                self._drained.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):  # pragma: no cover - teardown race
                pass


class OracleServer(LineServer):
    """TCP server wrapping an :class:`OracleService`.

    >>> # doctest-free: see tests/serving/test_server.py for live round-trips
    """

    def __init__(
        self,
        service: OracleService,
        host: str = "127.0.0.1",
        port: int = 8355,
        *,
        metrics_port: int | None = None,
        history_path: str | None = None,
        history_interval: float = 5.0,
        history_max_points: int = 2048,
        slos=None,
    ) -> None:
        super().__init__(
            host,
            port,
            metrics_port=metrics_port,
            history_path=history_path,
            history_interval=history_interval,
            history_max_points=history_max_points,
            slos=slos,
        )
        self._service = service
        #: Counter values at the previous metrics-history sample, so
        #: ``error_rate`` reflects the last interval, not process lifetime.
        self._prev_counters: dict | None = None
        #: Ops answered by an async handler (they wait off the event loop);
        #: everything else goes through the synchronous ``_dispatch``.
        self._async_ops = {"snapshot": self._op_snapshot}
        self._register_obs()

    def _register_obs(self) -> None:
        """Wire the service's metrics into this server's registry.

        The latency/phase/|AFF| histograms are *attached* (the service
        owns them; the registry exposes the same objects), counters and
        gauges are mirrored lazily on collect — a scrape pays for the
        copy, the hot path never does.
        """
        reg = self._registry
        service = self._service
        metrics = service.metrics
        reg.histogram(
            "repro_query_latency_seconds", "Read-path latency (seconds)."
        ).attach(metrics.queries.hist)
        reg.histogram(
            "repro_update_latency_seconds",
            "Per-event update apply latency (seconds).",
        ).attach(metrics.updates.hist)
        phase_family = reg.histogram(
            "repro_batch_phase_seconds",
            "Writer batch phase durations (seconds).",
            labelnames=("phase",),
        )
        for name, hist in metrics.phase_hists.items():
            phase_family.attach(hist, phase=name)
        reg.histogram(
            "repro_batch_affected_vertices",
            "Affected vertices (|AFF| union over landmarks) per batch.",
            bounds=COUNT_BOUNDS,
        ).attach(metrics.aff_hist)
        counter_families = {
            key: reg.counter(f"repro_{key}_total", help)
            for key, help in (
                ("events_applied", "Update events applied."),
                ("events_rejected", "Update events rejected."),
                ("insert_batches", "Coalesced insert-run batch applies."),
                ("mixed_batches", "Coalesced mixed insert/delete applies."),
                ("snapshots_published", "Snapshots published."),
            )
        }
        epoch_gauge = reg.gauge("repro_epoch", "Served snapshot epoch.")
        pending_gauge = reg.gauge(
            "repro_pending_updates", "Events queued but not yet applied."
        )

        def _collect() -> None:
            counters = metrics.counters()
            for key, family in counter_families.items():
                family.set(counters[key])
            epoch_gauge.set(service.snapshot.epoch)
            pending_gauge.set(service.pending)

        reg.on_collect(_collect)

    @classmethod
    def from_file(
        cls,
        path,
        *,
        host: str = "127.0.0.1",
        port: int = 8355,
        workers: int | None = None,
        max_batch: int = 128,
        metrics_port: int | None = None,
        history_path: str | None = None,
        history_interval: float = 5.0,
        history_max_points: int = 2048,
        slos=None,
    ) -> "OracleServer":
        """Warm-start: load a ``save_oracle`` file and wrap it in a service."""
        from repro.utils.serialization import load_oracle

        oracle = load_oracle(path)
        oracle.workers = workers
        service = OracleService(oracle, workers=workers, max_batch=max_batch)
        return cls(
            service,
            host=host,
            port=port,
            metrics_port=metrics_port,
            history_path=history_path,
            history_interval=history_interval,
            history_max_points=history_max_points,
            slos=slos,
        )

    @property
    def service(self) -> OracleService:
        return self._service

    def _sample_metrics(self) -> dict:
        service = self._service
        queries = service.metrics.queries.summary()
        counters = service.metrics.counters()
        prev = self._prev_counters or {}
        applied = counters["events_applied"] - prev.get("events_applied", 0)
        rejected = counters["events_rejected"] - prev.get("events_rejected", 0)
        self._prev_counters = counters
        total = applied + rejected
        return {
            "qps": queries["qps"],
            "query_p50_ms": queries["p50_ms"],
            "query_p99_ms": queries["p99_ms"],
            "pending": service.pending,
            "epoch": service.snapshot.epoch,
            "events_applied": counters["events_applied"],
            "error_rate": round(rejected / total, 6) if total else 0.0,
            "rss_kb": peak_rss_kb(),
        }

    async def _on_start(self) -> None:
        self._service.start()

    async def _on_stop(self) -> None:
        self._service.stop()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _dispatch_checked(self, request: dict) -> dict:
        try:
            return self._dispatch(request)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    async def _respond(self, line: bytes) -> dict:
        """Async dispatch: ops with an async handler (``snapshot`` here;
        ``apply``/``checkpoint`` on cluster replicas) wait off the event
        loop, so one client draining a deep backlog never stalls the other
        connections' reads.

        A request carrying a ``trace`` field gets a span recorded around
        its dispatch (:mod:`repro.obs.trace`); untraced requests pay
        nothing.  Every request ticks the per-op counter and, past the
        ``REPRO_SLOW_MS`` threshold, the slow-request log.
        """
        request, error = decode_line(line)
        if error is not None:
            return error
        op = request.get("op")
        trace = request.get("trace")
        start = perf_counter()
        try:
            handler = self._async_ops.get(op)
            with span(str(op), self.obs_component, trace=trace, op=op):
                if handler is not None:
                    try:
                        return await handler(request)
                    except (ReproError, KeyError, TypeError, ValueError) as exc:
                        return {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                return self._dispatch_checked(request)
        finally:
            self._observe_request(
                op, (perf_counter() - start) * 1000.0, trace
            )

    async def _op_snapshot(self, request: dict) -> dict:
        barrier = self._service.request_publish()
        loop = asyncio.get_running_loop()
        done = await loop.run_in_executor(None, barrier.wait, _PUBLISH_TIMEOUT)
        if not done:
            return {"ok": False, "error": "snapshot publish timed out"}
        return self._snapshot_response()

    def handle_request_line(self, line: bytes) -> dict:
        """Decode one request line and dispatch it (blocking; for direct
        callers and tests — connections go through :meth:`_respond`)."""
        request, error = decode_line(line)
        if error is not None:
            return error
        return self._dispatch_checked(request)

    def _snapshot_response(self) -> dict:
        snap = self._service.snapshot
        return {
            "ok": True,
            "epoch": snap.epoch,
            "num_vertices": snap.num_vertices,
            "num_edges": snap.num_edges,
            "label_entries": snap.label_entries,
        }

    def _dispatch(self, request: dict) -> dict:
        service = self._service
        op = request.get("op")
        if op == "query":
            u, v = int(request["u"]), int(request["v"])
            snap = service.snapshot  # pin: answer and epoch must agree
            return {
                "ok": True,
                "distance": _finite(service.query(u, v, snapshot=snap)),
                "epoch": snap.epoch,
            }
        if op == "query_many":
            pairs = [(int(u), int(v)) for u, v in request["pairs"]]
            snap = service.snapshot  # pin: answers and epoch must agree
            return {
                "ok": True,
                "distances": [
                    _finite(d)
                    for d in service.query_many(pairs, snapshot=snap)
                ],
                "epoch": snap.epoch,
            }
        if op == "path":
            u, v = int(request["u"]), int(request["v"])
            return {"ok": True, "path": service.shortest_path(u, v)}
        if op == "update":
            kind = request["kind"]
            u, v = int(request["u"]), int(request["v"])
            service.submit(UpdateEvent(kind, (u, v)))
            return {"ok": True, "queued": 1, "pending": service.pending}
        if op == "updates":
            events = [
                UpdateEvent(kind, (int(u), int(v)))
                for kind, u, v in request["events"]
            ]
            queued = service.submit_many(events)
            return {"ok": True, "queued": queued, "pending": service.pending}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "metrics":
            # Prometheus text over NDJSON — same bytes the --metrics-port
            # HTTP endpoint serves, for clients already on the socket.
            return {
                "ok": True,
                "content_type": CONTENT_TYPE,
                "metrics": self._registry.render(),
            }
        if op == "spans":
            # Recent spans from the process recorder; ``of`` filters to
            # one trace id, ``limit`` caps the response size.
            limit = request.get("limit")
            return {
                "ok": True,
                "spans": get_recorder().spans(
                    trace=request.get("of"),
                    limit=int(limit) if limit is not None else 256,
                ),
            }
        if op == "profile":
            return self._profile_response(request)
        if op == "history":
            return self._history_response(request)
        if op == "alerts":
            return self._alerts_response(request)
        if op == "snapshot":
            # Blocking form (direct callers); connections take the async
            # handler path in _respond instead.
            if not service.request_publish().wait(_PUBLISH_TIMEOUT):
                raise ServingError("snapshot publish timed out")
            return self._snapshot_response()
        if op == "ping":
            return {"ok": True, "pong": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
