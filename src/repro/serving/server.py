"""Asyncio TCP front-end speaking newline-delimited JSON.

One request per line, one JSON object per response line.  Ops::

    {"op": "query",      "u": 17, "v": 4242}
    {"op": "query_many", "pairs": [[0, 5], [3, 9]]}
    {"op": "path",       "u": 17, "v": 4242}
    {"op": "update",     "kind": "insert", "u": 17, "v": 4242}
    {"op": "updates",    "events": [["insert", 1, 2], ["delete", 3, 4]]}
    {"op": "stats"}
    {"op": "snapshot"}
    {"op": "ping"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``.
Unreachable distances serialise as ``null`` (JSON has no infinity).
``update`` acknowledges *enqueueing* — the single writer applies
asynchronously and publishes a fresh snapshot per drained chunk; ``stats``
reports the backlog and the served epoch.  ``snapshot`` force-publishes
and reports the new epoch (mainly for tests and operational probes).

Reads run directly on the event loop: they are pure in-memory lookups on
an immutable snapshot, so there is nothing to offload.  The server can
warm-start from a :func:`repro.utils.serialization.save_oracle` file via
:meth:`OracleServer.from_file` (the ``python -m repro serve`` path).
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.exceptions import ReproError, ServingError
from repro.graph.traversal import INF
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent

__all__ = ["OracleServer"]

_MAX_LINE = 1 << 20  # 1 MiB per request line is plenty for query_many bursts
_PUBLISH_TIMEOUT = 60.0  # seconds a `snapshot` op waits for the writer


def _finite(distance: float) -> float | int | None:
    """JSON-encodable distance: ``None`` stands for unreachable."""
    return None if distance == INF else distance


class OracleServer:
    """TCP server wrapping an :class:`OracleService`.

    >>> # doctest-free: see tests/serving/test_server.py for live round-trips
    """

    def __init__(
        self,
        service: OracleService,
        host: str = "127.0.0.1",
        port: int = 8355,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @classmethod
    def from_file(
        cls,
        path,
        *,
        host: str = "127.0.0.1",
        port: int = 8355,
        workers: int | None = None,
        max_batch: int = 128,
    ) -> "OracleServer":
        """Warm-start: load a ``save_oracle`` file and wrap it in a service."""
        from repro.utils.serialization import load_oracle

        oracle = load_oracle(path)
        oracle.workers = workers
        service = OracleService(oracle, workers=workers, max_batch=max_batch)
        return cls(service, host=host, port=port)

    @property
    def service(self) -> OracleService:
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0`` requests)."""
        if self._server is None:
            raise ServingError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "OracleServer":
        """Bind the listening socket and start the writer thread."""
        self._service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, limit=_MAX_LINE
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._service.stop()

    # ------------------------------------------------------------------
    # Threaded lifecycle (tests, smoke checks, load generators)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> tuple[str, int]:
        """Run the server on a dedicated event-loop thread.

        Returns the bound ``(host, port)``; :meth:`stop_thread` shuts the
        loop and the writer down.
        """
        if self._thread is not None:
            raise ServingError("server thread already running")
        ready = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                leftovers = asyncio.all_tasks(loop)
                for task in leftovers:
                    task.cancel()
                if leftovers:
                    loop.run_until_complete(
                        asyncio.gather(*leftovers, return_exceptions=True)
                    )
                loop.close()
                self._loop = None

        self._thread = threading.Thread(target=_run, name="oracle-server", daemon=True)
        self._thread.start()
        ready.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.address

    def stop_thread(self) -> None:
        """Stop a server started with :meth:`start_in_thread`."""
        thread, loop = self._thread, self._loop
        if thread is None:
            return
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._thread = None

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request too large"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:  # server shutdown with connection open
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):  # pragma: no cover - teardown race
                pass

    @staticmethod
    def _decode(line: bytes) -> tuple[dict | None, dict | None]:
        """``(request, None)`` on success, ``(None, error_response)`` else."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return None, {"ok": False, "error": f"invalid JSON: {exc.msg}"}
        if not isinstance(request, dict):
            return None, {"ok": False, "error": "request must be a JSON object"}
        return request, None

    def _dispatch_checked(self, request: dict) -> dict:
        try:
            return self._dispatch(request)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    async def _respond(self, line: bytes) -> dict:
        """Async dispatch: the ``snapshot`` op waits for the writer's
        publish barrier off the event loop, so one client draining a deep
        backlog never stalls the other connections' reads."""
        request, error = self._decode(line)
        if error is not None:
            return error
        if request.get("op") == "snapshot":
            barrier = self._service.request_publish()
            loop = asyncio.get_running_loop()
            done = await loop.run_in_executor(None, barrier.wait, _PUBLISH_TIMEOUT)
            if not done:
                return {"ok": False, "error": "snapshot publish timed out"}
            return self._snapshot_response()
        return self._dispatch_checked(request)

    def handle_request_line(self, line: bytes) -> dict:
        """Decode one request line and dispatch it (blocking; for direct
        callers and tests — connections go through :meth:`_respond`)."""
        request, error = self._decode(line)
        if error is not None:
            return error
        return self._dispatch_checked(request)

    def _snapshot_response(self) -> dict:
        snap = self._service.snapshot
        return {
            "ok": True,
            "epoch": snap.epoch,
            "num_vertices": snap.num_vertices,
            "num_edges": snap.num_edges,
            "label_entries": snap.label_entries,
        }

    def _dispatch(self, request: dict) -> dict:
        service = self._service
        op = request.get("op")
        if op == "query":
            u, v = int(request["u"]), int(request["v"])
            snap = service.snapshot  # pin: answer and epoch must agree
            return {
                "ok": True,
                "distance": _finite(service.query(u, v, snapshot=snap)),
                "epoch": snap.epoch,
            }
        if op == "query_many":
            pairs = [(int(u), int(v)) for u, v in request["pairs"]]
            snap = service.snapshot  # pin: answers and epoch must agree
            return {
                "ok": True,
                "distances": [
                    _finite(d)
                    for d in service.query_many(pairs, snapshot=snap)
                ],
                "epoch": snap.epoch,
            }
        if op == "path":
            u, v = int(request["u"]), int(request["v"])
            return {"ok": True, "path": service.shortest_path(u, v)}
        if op == "update":
            kind = request["kind"]
            u, v = int(request["u"]), int(request["v"])
            service.submit(UpdateEvent(kind, (u, v)))
            return {"ok": True, "queued": 1, "pending": service.pending}
        if op == "updates":
            events = [
                UpdateEvent(kind, (int(u), int(v)))
                for kind, u, v in request["events"]
            ]
            queued = service.submit_many(events)
            return {"ok": True, "queued": queued, "pending": service.pending}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "snapshot":
            # Blocking form (direct callers); connections take the async
            # barrier path in _respond instead.
            if not service.request_publish().wait(_PUBLISH_TIMEOUT):
                raise ServingError("snapshot publish timed out")
            return self._snapshot_response()
        if op == "ping":
            return {"ok": True, "pong": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def _encode(response: dict) -> bytes:
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")
