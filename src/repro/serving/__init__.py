"""Concurrent snapshot-isolated query serving over the dynamic oracle.

The paper's premise is that a maintained highway cover labelling answers
exact distance queries *while the graph changes*; this package is the
layer that actually serves that workload (docs/DESIGN.md §7):

* :mod:`repro.serving.snapshot` — cheap immutable point-in-time read
  views of an oracle (epoch-versioned, copy-on-write against the writer);
* :mod:`repro.serving.service` — :class:`OracleService`, a single-writer
  update loop draining :class:`~repro.workloads.streams.UpdateEvent`
  streams while any number of reader threads query published snapshots;
* :mod:`repro.serving.server` — an asyncio TCP front-end speaking a
  newline-delimited JSON protocol (``python -m repro serve``);
* :mod:`repro.serving.client` — a tiny blocking client for that protocol
  (used by the load generator, the CI smoke check, and the tests);
* :mod:`repro.serving.metrics` — throughput counters and p50/p95/p99
  latency tracking surfaced through the ``stats`` op.
"""

from repro.serving.metrics import LatencyRecorder, ServiceMetrics
from repro.serving.service import OracleService
from repro.serving.snapshot import OracleSnapshot

__all__ = [
    "LatencyRecorder",
    "OracleService",
    "OracleSnapshot",
    "ServiceMetrics",
]
