"""`OracleService` — single-writer update loop + lock-free snapshot readers.

Concurrency model (docs/DESIGN.md §7):

* **One writer.**  A dedicated thread owns every mutation of the oracle.
  It drains :class:`~repro.workloads.streams.UpdateEvent` objects from an
  internal queue and coalesces whole chunks into batch applies (one
  find/repair sweep per landmark for the run, honouring the ``workers=``
  knob) before publishing a fresh
  :class:`~repro.serving.snapshot.OracleSnapshot`.  A pure-insert chunk
  goes through :meth:`~repro.core.dynamic.DynamicHCL.insert_edges_batch`;
  a chunk containing deletions is — on the default fast route — applied
  as **one mixed run** through
  :meth:`~repro.core.dynamic.DynamicHCL.apply_events_batch`, so a delete
  mid-stream no longer breaks coalescing into per-event slow applies.
  Updates run on the vectorized CSR update engine by default
  (``fast=True``; see :mod:`repro.core.inchl_fast`) so a coalesced batch
  applies as numpy level sweeps instead of dict BFS — byte-identical
  labelling, far less time spent holding the write role.  With
  ``fast=False`` (or a non-default ``delete_strategy``) deletions fall
  back to one-at-a-time DecHL, the pre-mixed-engine behaviour.
* **Many readers.**  ``query`` / ``query_many`` / ``shortest_path`` run on
  the caller's thread against the *latest published snapshot* — a single
  attribute read — so readers never take a lock, never block on the
  writer, and never observe a half-applied batch.

Events that cannot apply (duplicate insert, delete of an absent edge) are
counted as rejected and skipped — important because a client stream over
TCP is not pre-validated the way generated workloads are, and because
``insert_edges_batch`` mutates the graph up front: feeding it an invalid
edge mid-batch would desynchronise graph and labelling.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterable
from time import perf_counter

from repro.exceptions import ServingError
from repro.obs.log import get_logger, slow_threshold_ms
from repro.obs.trace import obs_enabled, record_span
from repro.serving.metrics import ServiceMetrics
from repro.serving.snapshot import OracleSnapshot
from repro.workloads.streams import UpdateEvent

__all__ = ["OracleService"]

_STOP = object()  # queue sentinel: shut the writer loop down

_log = get_logger("service")


def _valid_vertex_id(x) -> bool:
    """Whether ``x`` may name a vertex (checked *before* any graph
    mutation, so a half-valid event can never leave side effects)."""
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


class _PublishBarrier:
    """Queued marker: set once every event queued before it is applied and
    a snapshot covering them is published (the non-blocking alternative to
    :meth:`OracleService.flush` used by the server's ``snapshot`` op)."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class OracleService:
    """Serve reads from snapshots while one writer maintains the oracle.

    >>> from repro.core.dynamic import DynamicHCL
    >>> from repro.graph.generators import grid_graph
    >>> from repro.workloads.streams import UpdateEvent
    >>> service = OracleService(DynamicHCL.build(grid_graph(3, 3), landmarks=[4]))
    >>> with service:
    ...     service.submit(UpdateEvent("insert", (0, 8)))
    ...     service.flush()
    ...     service.query(0, 8)
    1
    """

    def __init__(
        self,
        oracle,
        *,
        max_batch: int = 128,
        workers: int | None = None,
        delete_strategy: str = "partial",
        fast: bool = True,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        self._oracle = oracle
        self._max_batch = max_batch
        self._workers = workers if workers is not None else oracle.workers
        self._delete_strategy = delete_strategy
        #: Whether insert runs go through the vectorized CSR update engine
        #: (identical labelling; see :mod:`repro.core.inchl_fast`).
        self._fast = fast
        self.metrics = metrics or ServiceMetrics()
        self._queue: queue.Queue = queue.Queue()
        self._snapshot: OracleSnapshot = oracle.snapshot()
        self._thread: threading.Thread | None = None
        self._stopping = False
        #: Set to the failure description if an *accepted* update ever
        #: raised mid-apply: graph and labelling may then be out of sync,
        #: so the writer stops touching the oracle and the last good
        #: snapshot keeps serving reads (see :attr:`degraded`).
        self._degraded: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "OracleService":
        """Start the writer thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stopping = False
        self._thread = threading.Thread(
            target=self._writer_loop, name="oracle-writer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the writer thread.

        ``drain=True`` (default) applies every queued event first;
        ``drain=False`` abandons whatever is still queued (events the
        writer already picked up still finish).
        """
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        self._stopping = True
        if drain:
            self._queue.join()
        else:
            while True:  # abandon the backlog so _STOP is seen immediately
                try:
                    abandoned = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(abandoned, _PublishBarrier):
                    abandoned.event.set()  # never leave a waiter hanging
                self._queue.task_done()
        self._queue.put(_STOP)
        thread.join()
        self._thread = None

    @property
    def oracle(self):
        """The wrapped oracle.  Mutate only through :meth:`submit` while
        the writer runs (single-writer model)."""
        return self._oracle

    @property
    def running(self) -> bool:
        """Whether the writer thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "OracleService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> str | None:
        """Failure description once an accepted update raised mid-apply
        (``None`` while healthy).  A degraded service keeps serving its
        last good snapshot but accepts no further updates."""
        return self._degraded

    def submit(self, event: UpdateEvent) -> None:
        """Enqueue one update event for the writer (non-blocking)."""
        if self._stopping:
            raise ServingError("service is stopping; no further updates accepted")
        if self._degraded is not None:
            raise ServingError(f"service degraded, updates disabled: {self._degraded}")
        self._queue.put(event)

    def submit_many(self, events: Iterable[UpdateEvent]) -> int:
        """Enqueue a burst of events; returns how many were queued."""
        count = 0
        for event in events:
            self.submit(event)
            count += 1
        return count

    def insert_edge(self, u: int, v: int) -> None:
        """Convenience: enqueue an insertion."""
        self.submit(UpdateEvent("insert", (u, v)))

    def remove_edge(self, u: int, v: int) -> None:
        """Convenience: enqueue a deletion."""
        self.submit(UpdateEvent("delete", (u, v)))

    def flush(self) -> None:
        """Block until every event queued so far has been applied and the
        resulting snapshot published."""
        if not self.running and not self._queue.empty():
            raise ServingError("service is not running; queued events cannot drain")
        self._queue.join()

    @property
    def pending(self) -> int:
        """Events queued but not yet applied (approximate, by nature)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Read path — runs on the caller's thread, never blocks on the writer
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> OracleSnapshot:
        """The latest published snapshot (pin it for a consistent view)."""
        return self._snapshot

    def query(self, u: int, v: int, snapshot: OracleSnapshot | None = None) -> float:
        """Exact distance on the latest (or a pinned) snapshot; records
        read latency.  Pass ``snapshot`` to attribute the answer to a
        specific epoch (the server does, so answer and reported epoch
        always agree)."""
        snap = snapshot if snapshot is not None else self._snapshot
        start = perf_counter()
        try:
            return snap.query(u, v)
        finally:
            self.metrics.queries.record(perf_counter() - start)

    def query_many(
        self,
        pairs: Iterable[tuple[int, int]],
        snapshot: OracleSnapshot | None = None,
    ) -> list[float]:
        """Batch distances on one consistent snapshot; records latency
        once per pair-batch."""
        snap = snapshot if snapshot is not None else self._snapshot
        start = perf_counter()
        try:
            return snap.query_many(pairs)
        finally:
            self.metrics.queries.record(perf_counter() - start)

    def shortest_path(
        self, u: int, v: int, snapshot: OracleSnapshot | None = None
    ) -> list[int] | None:
        """One exact shortest path on the latest (or a pinned) snapshot."""
        snap = snapshot if snapshot is not None else self._snapshot
        start = perf_counter()
        try:
            return snap.shortest_path(u, v)
        finally:
            self.metrics.queries.record(perf_counter() - start)

    def refresh(self) -> OracleSnapshot:
        """Force-publish a snapshot of the oracle's current state.

        Only needed when the oracle was mutated directly (not through
        :meth:`submit`) while the writer is idle; the writer loop
        publishes automatically, and concurrent callers should use
        :meth:`request_publish` instead.
        """
        if self._degraded is not None:
            raise ServingError(
                f"service degraded, oracle state untrusted: {self._degraded}"
            )
        snap = self._oracle.snapshot()
        self._snapshot = snap
        self.metrics.count_snapshot()
        return snap

    def request_publish(self) -> threading.Event:
        """Ask the writer to publish once everything queued so far has
        applied; returns an event set at that point.

        Non-blocking (unlike :meth:`flush`): the caller waits on the
        event — or not — on its own schedule.  With no writer running the
        publish happens inline and the event returns already set.
        """
        done = threading.Event()
        if self._degraded is not None:
            done.set()  # last good snapshot is all there will ever be
            return done
        if not self.running:
            self.refresh()
            done.set()
            return done
        barrier = _PublishBarrier()
        self._queue.put(barrier)
        return barrier.event

    def stats(self) -> dict:
        """Service statistics: epoch, backlog, counters, latency summary."""
        snap = self._snapshot
        return {
            "epoch": snap.epoch,
            "num_vertices": snap.num_vertices,
            "num_edges": snap.num_edges,
            "label_entries": snap.label_entries,
            "pending": self.pending,
            "running": self.running,
            "degraded": self._degraded,
            **self.metrics.stats(),
        }

    # ------------------------------------------------------------------
    # Writer internals
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        while True:
            items = [self._queue.get()]
            while len(items) < self._max_batch:
                try:
                    items.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            stop_after = False
            events: list[UpdateEvent] = []
            barriers: list[_PublishBarrier] = []
            for item in items:
                if item is _STOP:
                    stop_after = True
                    break  # anything queued after _STOP is abandoned
                if isinstance(item, _PublishBarrier):
                    barriers.append(item)
                else:
                    events.append(item)
            publish = True
            try:
                if events:
                    publish = self._apply_chunk(events)
            except Exception as exc:  # pragma: no cover - belt and braces
                # _apply_chunk handles per-event failures itself; anything
                # escaping it means unknown oracle state — degrade.
                self._degraded = f"{type(exc).__name__}: {exc}"
                publish = False
            finally:
                if publish:
                    self._publish()
                for barrier in barriers:
                    barrier.event.set()
                for _ in items:
                    self._queue.task_done()
            if stop_after:
                return

    def _apply_chunk(self, events: list[UpdateEvent]) -> bool:
        """Apply one drained chunk.

        On the fast route a chunk containing deletions coalesces into one
        mixed :meth:`~repro.core.dynamic.DynamicHCL.apply_events_batch`
        run (:meth:`_apply_chunk_mixed`).  Otherwise runs of consecutive
        inserts go through the batch algorithm and everything else
        applies one at a time — the writer never slow-paths a whole chunk
        just because one delete interrupted an insert run.

        Inapplicable or malformed events (duplicate insert, self-loop,
        absent-edge delete, invalid vertex ids) are counted as rejected
        and skipped *before* any graph mutation — a wire client must never
        be able to kill the writer or leave side effects behind a rejected
        event.  If an *accepted* update raises mid-apply, graph and
        labelling may be out of sync: the service degrades (no further
        updates, last good snapshot keeps serving) and this returns
        ``False`` so the loop never publishes the desynchronised state.
        """
        if (
            self._fast
            and self._delete_strategy == "partial"
            and any(not event.is_insert for event in events)
        ):
            return self._apply_chunk_mixed(events)
        oracle = self._oracle
        graph = oracle.graph
        i = 0
        n = len(events)
        while i < n:
            if self._degraded is not None:
                self.metrics.count_rejected(n - i)
                return False
            if events[i].is_insert:
                j = i
                run: list[tuple[int, int]] = []
                seen: set[tuple[int, int]] = set()
                while j < n and events[j].is_insert:
                    u, v = events[j].edge
                    # Validate fully before touching the graph (both ids,
                    # then applicability): insert_edges_batch adds all
                    # edges up front, so a bad edge must never reach it,
                    # and a rejected event must leave no orphan vertices.
                    if (
                        not _valid_vertex_id(u)
                        or not _valid_vertex_id(v)
                        or u == v
                        or graph.has_edge(u, v)
                        or ((u, v) if u < v else (v, u)) in seen
                    ):
                        self.metrics.count_rejected()
                    else:
                        graph.add_vertex(u)
                        graph.add_vertex(v)
                        seen.add((u, v) if u < v else (v, u))
                        run.append((u, v))
                    j += 1
                if run and not self._apply_insert_run(run):
                    # The failed run plus everything not yet processed.
                    self.metrics.count_rejected(len(run) + (n - j))
                    return False
                i = j
            else:
                u, v = events[i].edge
                if not (
                    _valid_vertex_id(u)
                    and _valid_vertex_id(v)
                    and graph.has_edge(u, v)
                ):
                    self.metrics.count_rejected()
                else:
                    start = perf_counter()
                    try:
                        oracle.remove_edge(u, v, strategy=self._delete_strategy)
                    except Exception as exc:
                        self._degraded = f"{type(exc).__name__}: {exc}"
                        self.metrics.count_rejected(n - i)
                        return False
                    self.metrics.updates.record(perf_counter() - start)
                    self.metrics.count_applied()
                i += 1
        return True

    def _apply_chunk_mixed(self, events: list[UpdateEvent]) -> bool:
        """Coalesce one mixed insert/delete chunk into a single
        :meth:`~repro.core.dynamic.DynamicHCL.apply_events_batch` run.

        Validation mirrors ``apply_events_batch``'s sequential semantics
        but *rejects* instead of raising: each event is checked against
        the edge state its accepted predecessors in the chunk produce, so
        a delete of an edge inserted earlier in the same chunk is
        accepted (and an insert-delete churn pair cancels inside the
        engine), while a duplicate insert or absent-edge delete is
        counted as rejected with no side effects.  Endpoints of accepted
        inserts are registered up front — exactly like the insert-run
        path — because the batch call validates against the live graph.
        """
        oracle = self._oracle
        graph = oracle.graph
        coalesce_start = perf_counter()
        accepted: list[tuple[str, tuple[int, int]]] = []
        state: dict[tuple[int, int], bool] = {}
        for event in events:
            u, v = event.edge
            if not _valid_vertex_id(u) or not _valid_vertex_id(v) or u == v:
                self.metrics.count_rejected()
                continue
            key = (u, v) if u < v else (v, u)
            present = state.get(key)
            if present is None:
                present = graph.has_edge(u, v)
            if event.is_insert:
                if present:
                    self.metrics.count_rejected()
                    continue
                graph.add_vertex(u)
                graph.add_vertex(v)
                state[key] = True
                accepted.append(("insert", (u, v)))
            else:
                if not present:
                    self.metrics.count_rejected()
                    continue
                state[key] = False
                accepted.append(("delete", (u, v)))
        if not accepted:
            return True
        start = perf_counter()
        coalesce_s = start - coalesce_start
        try:
            batch_stats = oracle.apply_events_batch(
                accepted, workers=self._workers, fast=True
            )
        except Exception as exc:
            self._degraded = f"{type(exc).__name__}: {exc}"
            self.metrics.count_rejected(len(accepted))
            return False
        elapsed = perf_counter() - start
        for _ in accepted:
            self.metrics.updates.record(elapsed / len(accepted))
        self.metrics.count_applied(len(accepted))
        self.metrics.count_mixed_batch()
        self._note_batch(
            "mixed", len(accepted), elapsed, batch_stats, coalesce_s=coalesce_s
        )
        return True

    def _apply_insert_run(self, run: list[tuple[int, int]]) -> bool:
        """Apply one validated insert run; ``False`` + degraded on failure
        (the failed event itself is counted in the caller's reject tally)."""
        start = perf_counter()
        try:
            if len(run) == 1:
                run_stats = self._oracle.insert_edge(*run[0], fast=self._fast)
            else:
                run_stats = self._oracle.insert_edges_batch(
                    run, workers=self._workers, fast=self._fast
                )
                self.metrics.count_insert_batch()
        except Exception as exc:
            self._degraded = f"{type(exc).__name__}: {exc}"
            return False
        elapsed = perf_counter() - start
        # Attribute the run's cost evenly to its events so the
        # update-latency percentiles stay per-event comparable.
        for _ in run:
            self.metrics.updates.record(elapsed / len(run))
        self.metrics.count_applied(len(run))
        self._note_batch("insert_run", len(run), elapsed, run_stats)
        return True

    def _note_batch(
        self,
        mode: str,
        events: int,
        elapsed_s: float,
        stats,
        coalesce_s: float | None = None,
    ) -> None:
        """Record one writer batch into the observability layer: phase
        histograms + |AFF|, a chunk span (its own trace id — batches
        belong to no single request), and the slow-batch log."""
        phases: dict = {}
        if stats is not None and getattr(stats, "phases", None):
            phases.update(stats.phases)
        if coalesce_s is not None:
            phases["coalesce"] = coalesce_s
        phases["apply"] = elapsed_s
        affected = getattr(stats, "affected_union", None)
        self.metrics.observe_batch(phases, affected)
        if not obs_enabled():
            return
        dur_ms = elapsed_s * 1000.0
        fields = {
            "mode": mode,
            "events": events,
            "affected": affected,
            **{f"{k}_ms": round(v * 1000.0, 3) for k, v in phases.items()},
        }
        record_span("apply_chunk", "service", dur_ms, **fields)
        if dur_ms >= slow_threshold_ms():
            _log.warning("slow_batch", dur_ms=round(dur_ms, 3), **fields)

    def _publish(self) -> None:
        start = perf_counter()
        self._snapshot = self._oracle.snapshot()
        self.metrics.count_snapshot()
        self.metrics.observe_phase("publish", perf_counter() - start)
