"""Serving metrics: throughput counters and tail-latency tracking.

The serving layer is judged on two numbers the paper never had to report
— sustained queries per second and tail latency under a concurrent
writer — so the service keeps them continuously and surfaces them through
the ``stats`` protocol op and the ``serving`` bench experiment.

Latencies are kept in a bounded ring buffer (recent-window percentiles,
O(1) memory); counters are plain ints.  All methods are safe to call from
many reader threads: mutation happens under a lock, and the lock is held
only for appends and for copying the window out.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

__all__ = [
    "percentile",
    "aggregate_summaries",
    "LatencyRecorder",
    "ServiceMetrics",
]


def percentile(sorted_samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``sorted_samples`` must be non-empty and ascending.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (len(sorted_samples) - 1) * q / 100.0
    lo = int(rank)
    frac = rank - lo
    if frac == 0:
        return sorted_samples[lo]
    return sorted_samples[lo] * (1 - frac) + sorted_samples[lo + 1] * frac


def aggregate_summaries(summaries) -> dict:
    """Combine :meth:`LatencyRecorder.summary` dicts from many services.

    The cluster router reports one aggregate over its replicas: counts and
    throughput **add** (replicas serve disjoint slices of the read load);
    latency columns take the **max** (the conservative cluster-wide tail —
    percentiles from separate windows cannot be merged exactly without the
    raw samples).

    >>> aggregate_summaries([
    ...     {"count": 2, "qps": 10.0, "p99_ms": 1.0},
    ...     {"count": 3, "qps": 5.0, "p99_ms": 4.0},
    ... ])["qps"]
    15.0
    """
    out = {"count": 0, "qps": 0.0, "mean_ms": None,
           "p50_ms": None, "p95_ms": None, "p99_ms": None}
    for summary in summaries:
        out["count"] += summary.get("count", 0)
        out["qps"] = round(out["qps"] + (summary.get("qps") or 0.0), 3)
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            value = summary.get(key)
            if value is not None:
                out[key] = value if out[key] is None else max(out[key], value)
    return out


class LatencyRecorder:
    """Latency samples + throughput for one operation class.

    ``record(seconds)`` is the hot-path call; ``summary()`` returns a
    plain dict with count, qps (count over the first..last record span),
    and p50/p95/p99 in milliseconds over the retained window.
    """

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._count = 0
        self._total_seconds = 0.0
        self._first: float | None = None
        self._last: float | None = None

    def record(self, seconds: float) -> None:
        """Record one operation that took ``seconds``."""
        now = perf_counter()
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total_seconds += seconds
            if self._first is None:
                self._first = now
            self._last = now

    def time(self, fn, *args, **kwargs):
        """Call ``fn(*args, **kwargs)``, recording its wall-clock latency."""
        start = perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            self.record(perf_counter() - start)

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict:
        """Point-in-time stats dict (all latencies in milliseconds)."""
        with self._lock:
            window = sorted(self._samples)
            count = self._count
            total = self._total_seconds
            first, last = self._first, self._last
        if not window:
            return {"count": 0, "qps": 0.0, "mean_ms": None,
                    "p50_ms": None, "p95_ms": None, "p99_ms": None}
        span = (last - first) if (first is not None and last > first) else 0.0
        # Throughput needs a denominator even for a single sample; fall
        # back to summed operation time when the span is degenerate.
        qps = count / span if span > 0 else (count / total if total > 0 else 0.0)
        return {
            "count": count,
            "qps": round(qps, 3),
            "mean_ms": round(sum(window) / len(window) * 1000.0, 6),
            "p50_ms": round(percentile(window, 50) * 1000.0, 6),
            "p95_ms": round(percentile(window, 95) * 1000.0, 6),
            "p99_ms": round(percentile(window, 99) * 1000.0, 6),
        }


class ServiceMetrics:
    """All metrics of one :class:`~repro.serving.service.OracleService`.

    Two latency recorders (reads and applied update events) plus event
    counters; :meth:`stats` flattens everything into the dict the STATS
    protocol op returns.
    """

    def __init__(self, window: int = 8192) -> None:
        self.queries = LatencyRecorder(window)
        self.updates = LatencyRecorder(window)
        self._lock = threading.Lock()
        self.events_applied = 0
        self.events_rejected = 0
        self.insert_batches = 0
        self.mixed_batches = 0
        self.snapshots_published = 0

    def count_applied(self, n: int = 1) -> None:
        with self._lock:
            self.events_applied += n

    def count_rejected(self, n: int = 1) -> None:
        with self._lock:
            self.events_rejected += n

    def count_insert_batch(self) -> None:
        with self._lock:
            self.insert_batches += 1

    def count_mixed_batch(self) -> None:
        with self._lock:
            self.mixed_batches += 1

    def count_snapshot(self) -> None:
        with self._lock:
            self.snapshots_published += 1

    def stats(self) -> dict:
        """Flat stats dict: ``queries.*`` and ``updates.*`` sub-dicts plus
        the event counters."""
        return {
            "queries": self.queries.summary(),
            "updates": self.updates.summary(),
            "events_applied": self.events_applied,
            "events_rejected": self.events_rejected,
            "insert_batches": self.insert_batches,
            "mixed_batches": self.mixed_batches,
            "snapshots_published": self.snapshots_published,
        }
