"""Serving metrics: throughput counters and tail-latency tracking.

The serving layer is judged on two numbers the paper never had to report
— sustained queries per second and tail latency under a concurrent
writer — so the service keeps them continuously and surfaces them through
the ``stats`` protocol op and the ``serving`` bench experiment.

Latencies are kept twice, deliberately:

* a bounded ring buffer (recent-window percentiles, O(1) memory) — the
  human-friendly ``p50/p95/p99`` columns of ``stats``;
* a **mergeable fixed-bucket histogram**
  (:class:`repro.obs.registry.Histogram`) covering *all* samples — the
  ``hist`` block of each summary.  Histograms over the same bucket
  scheme merge by exact vector addition, which is how the cluster
  router turns per-replica tails into cluster-wide percentiles without
  the information loss of a ``max`` (:func:`merge_summaries`).

All methods are safe to call from many reader threads: mutation happens
under a lock, and the lock is held only for appends and for copying the
window out.

Per-batch *phase* timings (coalesce / find / repair / publish — the
quantities IncHL+'s analysis attributes cost to) and affected-set sizes
(|AFF|) land in :meth:`ServiceMetrics.observe_batch`; the ``stats`` op
reports their distributions under ``"phases"`` / ``"aff"``.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

from repro.obs.registry import COUNT_BOUNDS, Histogram, merge_histograms

__all__ = [
    "percentile",
    "aggregate_summaries",
    "merge_summaries",
    "LatencyRecorder",
    "ServiceMetrics",
    "PHASE_NAMES",
]

#: The per-batch phases the writer attributes time to.  ``find`` and
#: ``repair`` come out of the update engine (the paper's two sweeps);
#: ``coalesce`` is the writer's validation/dedup pass; ``publish`` the
#: snapshot swap.
PHASE_NAMES = ("coalesce", "find", "repair", "apply", "publish")


def percentile(sorted_samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``sorted_samples`` must be non-empty and ascending.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (len(sorted_samples) - 1) * q / 100.0
    lo = int(rank)
    frac = rank - lo
    if frac == 0:
        return sorted_samples[lo]
    return sorted_samples[lo] * (1 - frac) + sorted_samples[lo + 1] * frac


def aggregate_summaries(summaries) -> dict:
    """Combine :meth:`LatencyRecorder.summary` dicts — **legacy** merge.

    Counts and throughput **add**; the percentile columns take the
    **max** (a conservative cluster-wide tail); ``mean_ms`` is the
    count-weighted mean of the per-replica means — exactly the pooled
    mean, since each replica's mean is its sum over its count.  A
    summary without a count contributes to the max-bound fallback
    instead.  Superseded by :func:`merge_summaries`, which merges the
    summaries' histograms for *exact* percentiles; this remains the
    fallback when a summary has no ``hist`` block (e.g. a replica
    running an older build).

    >>> agg = aggregate_summaries([
    ...     {"count": 2, "qps": 10.0, "mean_ms": 1.0, "p99_ms": 1.0},
    ...     {"count": 8, "qps": 5.0, "mean_ms": 6.0, "p99_ms": 4.0},
    ... ])
    >>> agg["qps"], agg["p99_ms"]
    (15.0, 4.0)
    >>> agg["mean_ms"]  # (2*1.0 + 8*6.0) / 10, not max(1.0, 6.0)
    5.0
    """
    out = {"count": 0, "qps": 0.0, "mean_ms": None,
           "p50_ms": None, "p95_ms": None, "p99_ms": None}
    weighted_sum = 0.0
    weighted_count = 0
    mean_bound = None
    for summary in summaries:
        out["count"] += summary.get("count", 0)
        # Accumulate at full precision; rounding inside the loop would
        # compound error across many replicas.
        out["qps"] += summary.get("qps") or 0.0
        mean = summary.get("mean_ms")
        if mean is not None:
            count = summary.get("count") or 0
            if count > 0:
                weighted_sum += mean * count
                weighted_count += count
            mean_bound = mean if mean_bound is None else max(mean_bound, mean)
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            value = summary.get(key)
            if value is not None:
                out[key] = value if out[key] is None else max(out[key], value)
    if weighted_count > 0:
        out["mean_ms"] = weighted_sum / weighted_count
    else:
        out["mean_ms"] = mean_bound
    out["qps"] = round(out["qps"], 3)
    return out


def merge_summaries(summaries) -> dict:
    """Exact cluster-wide merge of :meth:`LatencyRecorder.summary` dicts.

    When every summary carries a ``hist`` block the histograms are merged
    by vector addition — lossless, so the percentiles below are those of
    the *pooled* sample population (at bucket resolution), not a bound.
    Counts/qps add; the mean comes from the merged sum/count.  If any
    summary lacks a histogram the legacy :func:`aggregate_summaries`
    answers instead (its max-merge is at least never wrong), flagged with
    ``"merge": "max"`` vs ``"merge": "exact"``.
    """
    summaries = list(summaries)
    hists = [s.get("hist") for s in summaries]
    if not summaries or any(h is None for h in hists):
        out = aggregate_summaries(summaries)
        out["merge"] = "max"
        return out
    merged = merge_histograms(hists)
    qps = sum(s.get("qps") or 0.0 for s in summaries)
    count = merged.count
    out = {
        "count": count,
        "qps": round(qps, 3),
        "mean_ms": round(merged.sum / count * 1000.0, 6) if count else None,
        "p50_ms": None,
        "p95_ms": None,
        "p99_ms": None,
        "merge": "exact",
        "hist": merged.to_dict(),
    }
    if count:
        for key, q in (("p50_ms", 50), ("p95_ms", 95), ("p99_ms", 99)):
            out[key] = round(merged.quantile(q) * 1000.0, 6)
    return out


class LatencyRecorder:
    """Latency samples + throughput for one operation class.

    ``record(seconds)`` is the hot-path call; ``summary()`` returns a
    plain dict with count, qps (count over the first..last record span),
    p50/p95/p99 in milliseconds over the retained window, and the
    all-samples mergeable histogram under ``hist``.
    """

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._count = 0
        self._total_seconds = 0.0
        self._first: float | None = None
        self._last: float | None = None
        #: All-samples mergeable histogram (seconds); exposed on the
        #: Prometheus endpoint via ``HistogramFamily.attach`` and merged
        #: exactly across replicas by the cluster router.
        self.hist = Histogram()

    def record(self, seconds: float) -> None:
        """Record one operation that took ``seconds``."""
        now = perf_counter()
        self.hist.observe(seconds)
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total_seconds += seconds
            if self._first is None:
                self._first = now
            self._last = now

    def time(self, fn, *args, **kwargs):
        """Call ``fn(*args, **kwargs)``, recording its wall-clock latency."""
        start = perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            self.record(perf_counter() - start)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> dict:
        """Point-in-time stats dict (all latencies in milliseconds)."""
        with self._lock:
            window = sorted(self._samples)
            count = self._count
            total = self._total_seconds
            first, last = self._first, self._last
        hist = self.hist.to_dict()
        if not window:
            return {"count": 0, "qps": 0.0, "mean_ms": None,
                    "p50_ms": None, "p95_ms": None, "p99_ms": None,
                    "hist": hist}
        span = (last - first) if (first is not None and last > first) else 0.0
        # Throughput needs a denominator even for a single sample; fall
        # back to summed operation time when the span is degenerate.
        qps = count / span if span > 0 else (count / total if total > 0 else 0.0)
        return {
            "count": count,
            "qps": round(qps, 3),
            "mean_ms": round(sum(window) / len(window) * 1000.0, 6),
            "p50_ms": round(percentile(window, 50) * 1000.0, 6),
            "p95_ms": round(percentile(window, 95) * 1000.0, 6),
            "p99_ms": round(percentile(window, 99) * 1000.0, 6),
            "hist": hist,
        }


class ServiceMetrics:
    """All metrics of one :class:`~repro.serving.service.OracleService`.

    Two latency recorders (reads and applied update events) plus event
    counters, per-phase batch timing histograms and the |AFF| (affected
    vertices per batch) distribution; :meth:`stats` flattens everything
    into the dict the STATS protocol op returns.
    """

    def __init__(self, window: int = 8192) -> None:
        self.queries = LatencyRecorder(window)
        self.updates = LatencyRecorder(window)
        self._lock = threading.Lock()
        self.events_applied = 0
        self.events_rejected = 0
        self.insert_batches = 0
        self.mixed_batches = 0
        self.snapshots_published = 0
        #: Per-phase batch timings in seconds (mergeable histograms).
        self.phase_hists: dict[str, Histogram] = {
            name: Histogram() for name in PHASE_NAMES
        }
        #: Affected vertices (|AFF| union over landmarks) per batch.
        self.aff_hist = Histogram(bounds=COUNT_BOUNDS)

    def count_applied(self, n: int = 1) -> None:
        with self._lock:
            self.events_applied += n

    def count_rejected(self, n: int = 1) -> None:
        with self._lock:
            self.events_rejected += n

    def count_insert_batch(self) -> None:
        with self._lock:
            self.insert_batches += 1

    def count_mixed_batch(self) -> None:
        with self._lock:
            self.mixed_batches += 1

    def count_snapshot(self) -> None:
        with self._lock:
            self.snapshots_published += 1

    def observe_phase(self, name: str, seconds: float) -> None:
        """Record one phase duration (unknown names create a histogram)."""
        hist = self.phase_hists.get(name)
        if hist is None:
            with self._lock:
                hist = self.phase_hists.setdefault(name, Histogram())
        hist.observe(seconds)

    def observe_batch(self, phases: dict | None, affected: int | None) -> None:
        """Record one writer batch: its phase timings (``{"find": s, ...}``
        seconds) and its affected-set size."""
        if phases:
            for name, seconds in phases.items():
                if seconds is not None:
                    self.observe_phase(name, seconds)
        if affected is not None:
            self.aff_hist.observe(affected)

    def counters(self) -> dict:
        """All event counters snapshotted atomically under the lock."""
        with self._lock:
            return {
                "events_applied": self.events_applied,
                "events_rejected": self.events_rejected,
                "insert_batches": self.insert_batches,
                "mixed_batches": self.mixed_batches,
                "snapshots_published": self.snapshots_published,
            }

    @staticmethod
    def _hist_brief(hist: Histogram, scale: float = 1.0, digits: int = 6) -> dict:
        """Compact wire form of a distribution: count, total, p50/p99."""
        count = hist.count
        out = {
            "count": count,
            "total": round(hist.sum * scale, digits),
            "p50": None,
            "p99": None,
        }
        if count:
            out["p50"] = round(hist.quantile(50) * scale, digits)
            out["p99"] = round(hist.quantile(99) * scale, digits)
        return out

    def stats(self) -> dict:
        """Flat stats dict: ``queries.*`` and ``updates.*`` sub-dicts plus
        the event counters (snapshotted under the lock — readers must
        never see a torn multi-counter view) and the phase/|AFF|
        distributions."""
        phases = {
            name: self._hist_brief(hist, scale=1000.0)  # ms
            for name, hist in self.phase_hists.items()
            if hist.count
        }
        return {
            "queries": self.queries.summary(),
            "updates": self.updates.summary(),
            **self.counters(),
            "phases": phases,
            "aff": self._hist_brief(self.aff_hist, digits=1),
        }
