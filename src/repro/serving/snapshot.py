"""Immutable, epoch-versioned read snapshots of a dynamic oracle.

Snapshot isolation is what lets readers answer queries *while* the writer
repairs the labelling: a reader pins an :class:`OracleSnapshot` and every
query against it sees the graph and labelling exactly as they stood at the
snapshot's epoch — never a half-applied batch.

The mechanism is copy-on-write at row granularity (docs/DESIGN.md §7).
Capturing a snapshot shallow-copies the three outer maps (adjacency,
label rows, highway rows) — a pointer-level copy, not a deep copy — and
marks every inner row as shared via the freeze hooks
(:meth:`~repro.graph.dynamic_graph.DynamicGraph.snapshot_adjacency`,
:meth:`~repro.core.labelling.HighwayCoverLabelling.freeze`).  The writer
then copies any shared row before mutating it in place, so the rows a
snapshot references are physically immutable for its whole lifetime.
Under CPython's GIL each published reference is observed atomically, so
readers on other threads never block and never tear.

The ``Frozen*`` views duck-type exactly the read surface the query layer
uses (:mod:`repro.core.query`, :mod:`repro.core.paths`), so snapshots
answer ``query`` / ``query_many`` / ``shortest_path`` through the same
code paths as the live oracle.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.paths import shortest_path as _shortest_path
from repro.core.query import query_distance, query_distances_many
from repro.exceptions import NotALandmarkError, VertexNotFoundError
from repro.graph.traversal import INF

__all__ = [
    "FrozenGraph",
    "FrozenHighway",
    "FrozenLabels",
    "FrozenLabelling",
    "OracleSnapshot",
]


class FrozenGraph:
    """Read-only point-in-time view of a :class:`DynamicGraph`.

    Duck-types the read surface of the graph (``adjacency``, ``neighbors``,
    ``has_vertex``, …); offers no mutators.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, adjacency: dict[int, list[int]], num_edges: int) -> None:
        self._adj = adjacency
        self._num_edges = num_edges

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def neighbors(self, v: int) -> list[int]:
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: int) -> int:
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFoundError(v) from None

    def adjacency(self) -> dict[int, list[int]]:
        """Raw adjacency mapping (read-only) for the traversal hot loops."""
        return self._adj

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenGraph(|V|={len(self._adj)}, |E|={self._num_edges})"


class FrozenLabels:
    """Read-only point-in-time view of a :class:`LabelStore`."""

    __slots__ = ("_labels", "_total")

    _EMPTY: dict[int, int] = {}

    def __init__(self, rows: dict[int, dict[int, int]], total: int) -> None:
        self._labels = rows
        self._total = total

    def label(self, v: int) -> dict[int, int]:
        return self._labels.get(v, self._EMPTY)

    def entry(self, v: int, r: int) -> int | None:
        return self._labels.get(v, self._EMPTY).get(r)

    def has_entry(self, v: int, r: int) -> bool:
        return r in self._labels.get(v, self._EMPTY)

    def label_size(self, v: int) -> int:
        return len(self._labels.get(v, self._EMPTY))

    @property
    def total_entries(self) -> int:
        return self._total

    def size_bytes(self, bytes_per_entry: int = 8) -> int:
        return self._total * bytes_per_entry

    def vertices_with_labels(self) -> Iterator[int]:
        return iter(self._labels)

    def items(self) -> Iterator[tuple[int, dict[int, int]]]:
        return iter(self._labels.items())

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenLabels(vertices={len(self._labels)}, entries={self._total})"


class FrozenHighway:
    """Read-only point-in-time view of a :class:`Highway`."""

    __slots__ = ("_landmarks", "_landmark_set", "_dist")

    def __init__(
        self,
        landmarks: list[int],
        landmark_set: frozenset[int],
        rows: dict[int, dict[int, float]],
    ) -> None:
        self._landmarks = landmarks
        self._landmark_set = landmark_set
        self._dist = rows

    @property
    def landmarks(self) -> list[int]:
        return self._landmarks

    @property
    def landmark_set(self) -> frozenset[int]:
        return self._landmark_set

    def __contains__(self, r: int) -> bool:
        return r in self._landmark_set

    def __len__(self) -> int:
        return len(self._landmarks)

    def distance(self, r1: int, r2: int) -> float:
        try:
            row = self._dist[r1]
        except KeyError:
            raise NotALandmarkError(r1) from None
        if r2 not in self._landmark_set:
            raise NotALandmarkError(r2)
        return row.get(r2, INF)

    def row(self, r: int) -> dict[int, float]:
        try:
            return self._dist[r]
        except KeyError:
            raise NotALandmarkError(r) from None

    def as_dict(self) -> dict[int, dict[int, float]]:
        """Raw per-landmark distance rows (read-only) — lets
        ``save_oracle`` serialize a pinned snapshot the same way it
        serializes a live :class:`~repro.core.highway.Highway`."""
        return self._dist

    def size_bytes(self, bytes_per_distance: int = 4) -> int:
        n = len(self._landmarks)
        return n * (n - 1) // 2 * bytes_per_distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenHighway(|R|={len(self._landmarks)})"


class FrozenLabelling:
    """Read-only ``Γ = (H, L)`` duck-typing :class:`HighwayCoverLabelling`."""

    __slots__ = ("highway", "labels")

    def __init__(self, highway: FrozenHighway, labels: FrozenLabels) -> None:
        self.highway = highway
        self.labels = labels

    @property
    def landmarks(self) -> list[int]:
        return self.highway.landmarks

    @property
    def landmark_set(self) -> frozenset[int]:
        return self.highway.landmark_set

    @property
    def label_entries(self) -> int:
        return self.labels.total_entries

    def size_bytes(self) -> int:
        return self.labels.size_bytes() + self.highway.size_bytes()


class OracleSnapshot:
    """One immutable epoch of a :class:`~repro.core.dynamic.DynamicHCL`.

    Answers the full read API — exact distances, batch distances, path
    extraction — against the graph as it stood at :attr:`epoch`, no matter
    what the writer does afterwards.

    >>> from repro.core.dynamic import DynamicHCL
    >>> from repro.graph.generators import grid_graph
    >>> oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    >>> snap = oracle.snapshot()
    >>> _ = oracle.insert_edge(0, 8)
    >>> snap.query(0, 8), oracle.query(0, 8)  # snapshot is pinned
    (4, 1)
    """

    __slots__ = ("epoch", "graph", "labelling", "shard_rows")

    def __init__(
        self,
        epoch: int,
        graph: FrozenGraph,
        labelling: FrozenLabelling,
        shard_rows=None,
    ):
        self.epoch = epoch
        self.graph = graph
        self.labelling = labelling
        #: ``(dist, index_of)`` for landmark-sharded oracles
        #: (:meth:`repro.core.dynamic.DynamicHCL.shard_rows`), else
        #: ``None``.  When set, queries answer shard-locally: exact
        #: through the owned landmarks, with the scatter-gather min over
        #: all shards globally exact (:mod:`repro.core.sharding`).
        self.shard_rows = shard_rows

    @classmethod
    def capture(cls, oracle) -> "OracleSnapshot":
        """Freeze ``oracle`` at its current version (single-writer only:
        must be called from the thread that applies updates)."""
        adjacency = oracle.graph.snapshot_adjacency()
        num_edges = oracle.graph.num_edges
        landmarks, landmark_set, highway_rows, label_rows, entries = (
            oracle.labelling.freeze()
        )
        shard_rows = None
        if getattr(oracle, "owned_landmarks", None) is not None:
            # The frozen copy of the dense rows is cached per oracle
            # version, so consecutive snapshots without updates in
            # between share one copy.
            shard_rows = oracle.shard_rows()
        return cls(
            oracle.version,
            FrozenGraph(adjacency, num_edges),
            FrozenLabelling(
                FrozenHighway(landmarks, landmark_set, highway_rows),
                FrozenLabels(label_rows, entries),
            ),
            shard_rows=shard_rows,
        )

    # -- read API ------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def label_entries(self) -> int:
        return self.labelling.label_entries

    def query(self, u: int, v: int) -> float:
        """Exact ``d(u, v)`` at this snapshot's epoch (``inf`` when
        disconnected); shard-local on a landmark shard."""
        if self.shard_rows is not None:
            from repro.core.sharding import shard_query_distance

            dist, index_of = self.shard_rows
            return shard_query_distance(
                self.graph, self.labelling.landmark_set, dist, index_of, u, v
            )
        return query_distance(self.graph, self.labelling, u, v)

    def query_many(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Exact distances for a batch of pairs at this epoch."""
        if self.shard_rows is not None:
            from repro.core.sharding import shard_query_distances_many

            dist, index_of = self.shard_rows
            return shard_query_distances_many(
                self.graph, self.labelling.landmark_set, dist, index_of, pairs
            )
        return query_distances_many(self.graph, self.labelling, pairs)

    def shortest_path(self, u: int, v: int) -> list[int] | None:
        """One exact shortest path at this epoch (``None`` if disconnected).

        Landmark shards answer by plain BFS on the (full) frozen graph —
        the greedy label walk needs the full label slice.
        """
        if self.shard_rows is not None:
            from repro.core.sharding import bfs_shortest_path

            return bfs_shortest_path(self.graph, u, v)
        return _shortest_path(self.graph, self.labelling, u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OracleSnapshot(epoch={self.epoch}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, size(L)={self.label_entries})"
        )
