"""A tiny blocking client for the newline-delimited JSON protocol.

Used by the closed-loop load generator of the ``serving`` bench
experiment's TCP mode, the CI smoke checks (``tools/serving_smoke.py``,
``tools/cluster_smoke.py``) and the test-suite; applications may of
course speak the protocol from any language — it is one JSON object per
line in each direction (:mod:`repro.serving.server`).

The same client speaks to a single :class:`~repro.serving.server.OracleServer`
and to a :class:`~repro.cluster.router.ClusterRouter` front door — the
wire protocol is identical.  Against a cluster, ``min_epoch`` gates a
read to a replica that has applied at least that log position
(read-your-writes: pass the ``epoch`` an update acknowledgement
returned).
"""

from __future__ import annotations

import json
import socket

from repro.exceptions import ServingError

__all__ = ["ServingClient"]


class ServingClient:
    """One blocking TCP connection to an :class:`OracleServer` (or a
    :class:`~repro.cluster.router.ClusterRouter`).

    Usable as a context manager; not thread-safe (use one client per
    thread — connections are cheap and the server is happy to hold many).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one request object, return the decoded response object."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("server closed the connection")
        return json.loads(line)

    def pipeline(self, payloads, chunk: int = 256) -> list[dict]:
        """Send a burst of request objects back-to-back, then read all the
        responses: one flush and one wire round-trip per ``chunk`` of
        requests instead of one per request (responses come back in
        order).  Writes and reads interleave every ``chunk`` requests so
        an arbitrarily large burst can never deadlock on full socket
        buffers (the server answers as it reads; were the client to write
        everything first, both sides could block once the unread
        responses exceed the buffers)."""
        payloads = list(payloads)
        write = self._file.write
        responses: list[dict] = []
        for base in range(0, len(payloads), max(1, chunk)):
            batch = payloads[base : base + max(1, chunk)]
            for payload in batch:
                write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            for _ in batch:
                line = self._file.readline()
                if not line:
                    raise ServingError(
                        "server closed the connection mid-pipeline"
                    )
                responses.append(json.loads(line))
        return responses

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServingError(response.get("error", "request failed"))
        return response

    @staticmethod
    def _with_epoch(payload: dict, min_epoch: int | None) -> dict:
        if min_epoch is not None:
            payload["min_epoch"] = min_epoch
        return payload

    @staticmethod
    def _with_trace(payload: dict, trace: str | None) -> dict:
        """Attach a trace id: the server (and, through it, router and
        replica) records spans for this request under that id."""
        if trace is not None:
            payload["trace"] = trace
        return payload

    # -- convenience wrappers, mirroring the protocol ops ---------------
    def query(
        self,
        u: int,
        v: int,
        min_epoch: int | None = None,
        trace: str | None = None,
    ) -> float:
        """Exact distance; ``inf`` when unreachable.  ``min_epoch`` (cluster
        only) demands a replica that has applied at least that log seq."""
        payload = self._with_trace(
            self._with_epoch({"op": "query", "u": u, "v": v}, min_epoch), trace
        )
        distance = self._checked(payload)["distance"]
        return float("inf") if distance is None else distance

    def query_many(
        self, pairs, min_epoch: int | None = None, trace: str | None = None
    ) -> list[float]:
        """Batch distances in **one** NDJSON ``query_many`` frame — a
        single round-trip for the whole list, answered on one consistent
        snapshot (never N sequential ``query`` round-trips)."""
        payload = self._with_trace(
            self._with_epoch(
                {"op": "query_many", "pairs": [list(p) for p in pairs]},
                min_epoch,
            ),
            trace,
        )
        response = self._checked(payload)
        return [
            float("inf") if d is None else d for d in response["distances"]
        ]

    def path(self, u: int, v: int, min_epoch: int | None = None) -> list[int] | None:
        payload = self._with_epoch({"op": "path", "u": u, "v": v}, min_epoch)
        return self._checked(payload)["path"]

    def update(self, kind: str, u: int, v: int, trace: str | None = None) -> dict:
        """Submit one update; against a cluster the response's ``epoch`` is
        the log position to pass as ``min_epoch`` for read-your-writes."""
        return self._checked(
            self._with_trace(
                {"op": "update", "kind": kind, "u": u, "v": v}, trace
            )
        )

    def updates(self, events, trace: str | None = None) -> dict:
        """Submit ``[(kind, u, v), ...]`` in one round-trip."""
        return self._checked(
            self._with_trace(
                {"op": "updates", "events": [[k, u, v] for k, u, v in events]},
                trace,
            )
        )

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition over the NDJSON socket
        (the same bytes ``--metrics-port`` serves over HTTP)."""
        return self._checked({"op": "metrics"})["metrics"]

    def spans(self, of: str | None = None, limit: int = 256) -> list[dict]:
        """Recent spans from the server's recorder; ``of`` filters to one
        trace id."""
        payload: dict = {"op": "spans", "limit": limit}
        if of is not None:
            payload["of"] = of
        return self._checked(payload)["spans"]

    def history(self, limit: int = 120) -> dict:
        """The server's metrics-history points (``repro dash`` source);
        ``points`` is empty when the server records no history."""
        return self._checked({"op": "history", "limit": limit})

    def alerts(self) -> dict:
        """SLO state: ``alerts`` (firing), ``evaluations``, ``slos``."""
        return self._checked({"op": "alerts"})

    def profile(self, action: str = "dump", folded: bool = True) -> dict:
        """Control/dump the server's sampling profiler (``action``:
        ``dump``/``start``/``stop``/``reset``)."""
        return self._checked(
            {"op": "profile", "action": action, "folded": folded}
        )

    def snapshot(self) -> dict:
        """Force-publish a snapshot (single node) / drain every replica to
        the log head (cluster); returns epoch info."""
        return self._checked({"op": "snapshot"})

    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
