"""A tiny blocking client for the newline-delimited JSON protocol.

Used by the closed-loop load generator of the ``serving`` bench
experiment's TCP mode, the CI smoke check (``tools/serving_smoke.py``)
and the test-suite; applications may of course speak the protocol from
any language — it is one JSON object per line in each direction
(:mod:`repro.serving.server`).
"""

from __future__ import annotations

import json
import socket

from repro.exceptions import ServingError

__all__ = ["ServingClient"]


class ServingClient:
    """One blocking TCP connection to an :class:`OracleServer`.

    Usable as a context manager; not thread-safe (use one client per
    thread — connections are cheap and the server is happy to hold many).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one request object, return the decoded response object."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("server closed the connection")
        return json.loads(line)

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServingError(response.get("error", "request failed"))
        return response

    # -- convenience wrappers, mirroring the protocol ops ---------------
    def query(self, u: int, v: int) -> float:
        """Exact distance; ``inf`` when unreachable."""
        distance = self._checked({"op": "query", "u": u, "v": v})["distance"]
        return float("inf") if distance is None else distance

    def query_many(self, pairs) -> list[float]:
        response = self._checked({"op": "query_many", "pairs": list(pairs)})
        return [
            float("inf") if d is None else d for d in response["distances"]
        ]

    def path(self, u: int, v: int) -> list[int] | None:
        return self._checked({"op": "path", "u": u, "v": v})["path"]

    def update(self, kind: str, u: int, v: int) -> dict:
        return self._checked({"op": "update", "kind": kind, "u": u, "v": v})

    def updates(self, events) -> dict:
        """Submit ``[(kind, u, v), ...]`` in one round-trip."""
        return self._checked(
            {"op": "updates", "events": [[k, u, v] for k, u, v in events]}
        )

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    def snapshot(self) -> dict:
        """Force-publish a snapshot; returns epoch and size info."""
        return self._checked({"op": "snapshot"})

    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
