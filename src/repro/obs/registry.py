"""Process-wide metrics registry: counters, gauges, mergeable histograms.

The serving and cluster layers need three things the ring-buffer
percentiles of :mod:`repro.serving.metrics` cannot give them:

* **Mergeable tails.**  A cluster-wide p99 computed as ``max`` over
  replica windows is only an upper bound.  Fixed-bucket histograms make
  the merge *exact*: two histograms over the same bucket scheme combine
  by vector-adding their counts, so the merged histogram is identical to
  the histogram of the pooled samples — no information is lost by
  distributing the recording (:meth:`Histogram.merge`, proven in
  ``tests/obs/test_histogram_merge.py``).
* **Scrapeable state.**  :meth:`MetricsRegistry.render` emits the
  Prometheus text exposition format (v0.0.4), served by
  :mod:`repro.obs.exporter` on ``--metrics-port`` and by the ``metrics``
  NDJSON protocol op.
* **Lazy gauges.**  Values owned elsewhere (replication lag, WAL bytes,
  served epoch) register an :meth:`MetricsRegistry.on_collect` callback
  and are refreshed only when someone actually scrapes.

Bucket schemes are named (``latency-v1``, ``count-v1``) so a histogram
serialised by a replica (:meth:`Histogram.to_dict`) can be revived and
merged by the router without shipping the bounds on every stats response.
"""

from __future__ import annotations

import math
import threading

from repro.exceptions import ReproError

__all__ = [
    "LATENCY_BOUNDS",
    "COUNT_BOUNDS",
    "Histogram",
    "merge_histograms",
    "Counter",
    "Gauge",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "get_registry",
]

#: Log-spaced latency bucket upper bounds in **seconds**: 1 µs doubling up
#: to ~67 s (27 buckets + overflow).  Factor-2 spacing bounds any
#: within-bucket quantile interpolation error to 2x — plenty for p99
#: dashboards — while keeping the merge vector tiny on the wire.
LATENCY_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2.0**k for k in range(27))

#: Bucket bounds for small-integer size distributions (|AFF| per batch,
#: events per chunk): powers of two from 1 to 2^26.
COUNT_BOUNDS: tuple[float, ...] = tuple(float(2**k) for k in range(27))

#: Named schemes a serialised histogram may reference instead of shipping
#: its bounds inline.
SCHEMES: dict[str, tuple[float, ...]] = {
    "latency-v1": LATENCY_BOUNDS,
    "count-v1": COUNT_BOUNDS,
}


def _scheme_name(bounds: tuple[float, ...]) -> str | None:
    for name, scheme in SCHEMES.items():
        if scheme == bounds:
            return name
    return None


class Histogram:
    """Thread-safe fixed-bucket histogram with an exact merge.

    ``bounds`` are ascending bucket *upper* bounds; one implicit overflow
    bucket catches everything above ``bounds[-1]``.  Counts are plain
    ints, so :meth:`merge` (vector addition) loses nothing: merging
    per-replica histograms equals building one histogram from the pooled
    samples.

    >>> h = Histogram(bounds=(1.0, 2.0, 4.0))
    >>> for v in (0.5, 1.5, 3.0, 3.5):
    ...     h.observe(v)
    >>> h.count, h.counts()
    (4, [1, 1, 2, 0])
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_lock")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ReproError("histogram bounds must be non-empty and ascending")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _bucket_index(self, value: float) -> int:
        # Binary search over the upper bounds: first bucket whose upper
        # bound is >= value (bisect_left over "value <= bound").
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo  # == len(bounds) means the overflow bucket

    def observe(self, value: float) -> None:
        """Record one sample (hot path: a bisect and two adds)."""
        idx = self._bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value

    def counts(self) -> list[int]:
        """Point-in-time copy of the per-bucket counts (overflow last)."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> tuple[list[int], int, float]:
        """``(counts, count, sum)`` captured atomically."""
        with self._lock:
            return list(self._counts), self._count, self._sum

    # ------------------------------------------------------------------
    # Merge + serialisation (the cluster's exact-percentile machinery)
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Add ``other``'s counts into this histogram (exact: equivalent
        to having observed all of ``other``'s samples here)."""
        if other._bounds != self._bounds:
            raise ReproError("cannot merge histograms with different bounds")
        counts, count, total = other.snapshot()
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
        return self

    def to_dict(self) -> dict:
        """Wire form: named scheme (or inline bounds), counts, count, sum."""
        counts, count, total = self.snapshot()
        out: dict = {"counts": counts, "count": count, "sum": total}
        name = _scheme_name(self._bounds)
        if name is not None:
            out["scheme"] = name
        else:
            out["bounds"] = list(self._bounds)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        scheme = data.get("scheme")
        if scheme is not None:
            if scheme not in SCHEMES:
                raise ReproError(f"unknown histogram scheme {scheme!r}")
            bounds = SCHEMES[scheme]
        else:
            bounds = tuple(float(b) for b in data["bounds"])
        hist = cls(bounds=bounds)
        counts = list(data["counts"])
        if len(counts) != len(hist._counts):
            raise ReproError(
                f"histogram counts length {len(counts)} does not match "
                f"{len(hist._counts)} buckets"
            )
        hist._counts = [int(c) for c in counts]
        hist._count = int(data.get("count", sum(counts)))
        hist._sum = float(data.get("sum", 0.0))
        return hist

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def _rank_bucket(self, k: int, counts: list[int]) -> int:
        """Bucket index holding the ``k``-th order statistic (1-indexed)."""
        cum = 0
        for i, c in enumerate(counts):
            cum += c
            if cum >= k:
                return i
        return len(counts) - 1

    def _bucket_edges(self, idx: int) -> tuple[float, float]:
        lo = self._bounds[idx - 1] if idx > 0 else 0.0
        # The overflow bucket has no upper edge; report its lower edge so
        # quantiles stay finite (values beyond the top bound saturate).
        hi = self._bounds[idx] if idx < len(self._bounds) else self._bounds[-1]
        return lo, hi

    def quantile(self, q: float) -> float | None:
        """The ``q``-th percentile (0..100) by within-bucket interpolation.

        Uses the same rank convention as
        :func:`repro.serving.metrics.percentile` (linear between order
        statistics at rank ``(n-1) * q/100``), so the returned value always
        lies inside :meth:`quantile_bounds` of the raw-sample percentile.
        ``None`` on an empty histogram.
        """
        if not 0 <= q <= 100:
            raise ReproError(f"quantile must be in [0, 100], got {q}")
        counts, count, _ = self.snapshot()
        if count == 0:
            return None
        rank = (count - 1) * q / 100.0
        k = int(rank) + 1  # 1-indexed lower order statistic
        idx = self._rank_bucket(k, counts)
        lo, hi = self._bucket_edges(idx)
        cum_before = sum(counts[:idx])
        frac = (rank + 1 - cum_before) / counts[idx]
        frac = min(max(frac, 0.0), 1.0)
        return lo + (hi - lo) * frac

    def quantile_bounds(self, q: float) -> tuple[float, float] | None:
        """``(lo, hi)`` bracketing the raw-sample ``q``-th percentile.

        The raw percentile interpolates between the order statistics at
        ranks ``floor(r)`` and ``ceil(r)`` (``r = (n-1) q / 100``); those
        two samples fall in known buckets, so the true value provably
        lies in ``[lower edge of the first, upper edge of the second]``.
        The merge-exactness property test leans on this.
        """
        if not 0 <= q <= 100:
            raise ReproError(f"quantile must be in [0, 100], got {q}")
        counts, count, _ = self.snapshot()
        if count == 0:
            return None
        rank = (count - 1) * q / 100.0
        i_lo = self._rank_bucket(int(math.floor(rank)) + 1, counts)
        i_hi = self._rank_bucket(int(math.ceil(rank)) + 1, counts)
        lo, _ = self._bucket_edges(i_lo)
        if i_hi < len(self._bounds):
            hi = self._bounds[i_hi]
        else:
            hi = math.inf  # overflow bucket: unbounded above
        return lo, hi

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self._bounds == other._bounds
            and self.counts() == other.counts()
            and self.count == other.count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


def merge_histograms(hists) -> "Histogram | None":
    """Merge an iterable of histograms (or their :meth:`~Histogram.to_dict`
    forms) into one fresh histogram; ``None`` for an empty iterable."""
    merged: Histogram | None = None
    for hist in hists:
        if isinstance(hist, dict):
            hist = Histogram.from_dict(hist)
        if merged is None:
            merged = Histogram(bounds=hist.bounds)
        merged.merge(hist)
    return merged


class Counter:
    """Monotonic counter.  :meth:`set` exists only to mirror totals that
    are authoritatively tracked elsewhere (e.g. ``ServiceMetrics``
    counters copied in during an ``on_collect`` pass)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError("counters only go up")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Mirror an externally-tracked total (must not go backwards in
        normal operation; not enforced — restarts reset legitimately)."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (lag, backlog, bytes on disk)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ReproError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _fmt_number(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats via repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for k, v in pairs
    )
    return "{" + body + "}"


class _Family:
    """Shared child bookkeeping for the three metric families."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def _child(self, labelvalues: tuple[str, ...]):
        if len(labelvalues) != len(self.labelnames):
            raise ReproError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {len(labelvalues)} values"
            )
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = self._make_child()
                self._children[labelvalues] = child
            return child

    def labels(self, **labelvalues):
        """The child for one label combination (created on first use)."""
        values = tuple(str(labelvalues[name]) for name in self.labelnames)
        return self._child(values)

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # Label-less convenience: the family proxies to its default child.
    @property
    def _default(self):
        return self._child(())


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    @property
    def value(self) -> float:
        return self._default.value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        bounds: tuple[float, ...] = LATENCY_BOUNDS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.bounds = tuple(float(b) for b in bounds)

    def _make_child(self) -> Histogram:
        return Histogram(bounds=self.bounds)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def attach(self, hist: Histogram, **labelvalues) -> Histogram:
        """Register an externally-owned histogram as a child.

        The serving layer's :class:`~repro.serving.metrics.LatencyRecorder`
        owns its histogram (it must live whether or not a registry exists);
        ``attach`` makes the same object show up in the exposition without
        double recording.
        """
        if hist.bounds != self.bounds:
            raise ReproError(
                f"{self.name}: attached histogram bounds do not match family"
            )
        values = tuple(str(labelvalues[name]) for name in self.labelnames)
        if len(labelvalues) != len(self.labelnames):
            raise ReproError(
                f"{self.name}: expected labels {self.labelnames}"
            )
        with self._lock:
            self._children[values] = hist
        return hist


class MetricsRegistry:
    """One process's (or one server's) metric families.

    Families are get-or-create by name — registering the same name twice
    with the same kind returns the existing family, so independent
    components can share a registry without coordination; a kind clash is
    an error.  :meth:`render` runs the :meth:`on_collect` callbacks (lazy
    gauges refresh only when scraped) and emits Prometheus text.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list = []
        self._lock = threading.Lock()

    def _register(self, family_cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, family_cls):
                    raise ReproError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = family_cls(name, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames=()) -> CounterFamily:
        return self._register(CounterFamily, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> GaugeFamily:
        return self._register(GaugeFamily, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(),
        bounds: tuple[float, ...] = LATENCY_BOUNDS,
    ) -> HistogramFamily:
        return self._register(
            HistogramFamily, name, help, labelnames, bounds=bounds
        )

    def on_collect(self, callback) -> None:
        """Run ``callback()`` at the start of every :meth:`collect` /
        :meth:`render` — the hook for gauges whose truth lives elsewhere
        (replication lag, WAL stats, served epoch)."""
        with self._lock:
            self._collectors.append(callback)

    def collect(self) -> list[_Family]:
        with self._lock:
            collectors = list(self._collectors)
            families = sorted(self._families.values(), key=lambda f: f.name)
        for callback in collectors:
            callback()
        return families

    def render(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                labels = _fmt_labels(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    counts, count, total = child.snapshot()
                    cum = 0
                    for bound, c in zip(child.bounds, counts):
                        cum += c
                        le = _fmt_labels(
                            family.labelnames, labelvalues,
                            extra=(("le", _fmt_number(bound)),),
                        )
                        lines.append(f"{family.name}_bucket{le} {cum}")
                    le = _fmt_labels(
                        family.labelnames, labelvalues, extra=(("le", "+Inf"),)
                    )
                    lines.append(f"{family.name}_bucket{le} {count}")
                    lines.append(
                        f"{family.name}_sum{labels} {_fmt_number(total)}"
                    )
                    lines.append(f"{family.name}_count{labels} {count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_fmt_number(child.value)}"
                    )
        return "\n".join(lines) + "\n"


_default_registry: MetricsRegistry | None = None
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-default registry (created on first use).

    Servers keep their own per-instance registries (several can live in
    one test process); the default exists for code with no server in
    reach — CLI tools, ad-hoc scripts.
    """
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry
