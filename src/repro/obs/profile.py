"""Opt-in sampling wall-clock profiler (``REPRO_PROFILE=1``).

A daemon thread wakes every ``REPRO_PROFILE_INTERVAL_MS`` milliseconds
(default 10), grabs every thread's current stack via
``sys._current_frames()`` and aggregates the stacks into a counter.
Two views come out of that counter:

* :meth:`SamplingProfiler.folded` — flamegraph-compatible **folded
  stacks** (``root;child;leaf <count>``, one line per distinct stack),
  the format ``flamegraph.pl`` / speedscope / inferno all consume; CI
  uploads these as artifacts and ``repro profile --folded out.folded``
  pulls them off a live server;
* :meth:`SamplingProfiler.phase_table` — a deterministic attribution of
  samples to the engine phases the serving layer already times
  (coalesce / find / repair / apply / publish,
  :data:`repro.serving.metrics.PHASE_NAMES`): each sampled stack is
  scanned innermost-frame-first against :data:`PHASE_MARKERS`, and the
  first marker hit names the phase.  Attribution depends only on the
  aggregated samples, never on sampling order, so the table is
  reproducible from a folded file alone (:func:`attribute_folded`).

The profiler is wall-clock (it samples *all* threads, whatever they are
doing — holding the GIL, blocked in numpy, parked in a lock), which is
the honest view for a mixed asyncio + writer-thread process.  Overhead
is one ``sys._current_frames()`` walk per tick; the ``incremental_fast``
bench records it (``fast+profiler`` rows) and CI keeps it under the 5 %
acceptance bound.

Nothing starts unless ``REPRO_PROFILE`` is truthy: servers call
:func:`start_if_enabled` on startup and :func:`dump_if_enabled` (writes
``REPRO_PROFILE_OUT``) on shutdown, so a production process pays nothing
until the knob is set.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from time import perf_counter, sleep

from repro import knobs

__all__ = [
    "PHASE_MARKERS",
    "SamplingProfiler",
    "attribute_folded",
    "profile_enabled",
    "get_profiler",
    "reset_profiler",
    "start_if_enabled",
    "dump_if_enabled",
]

#: Default sampling period.  10 ms keeps the measured drag on the fast
#: update replay under the 5 % acceptance bound even on a 1-CPU host
#: (every ``sys._current_frames()`` walk holds the GIL); drop
#: ``REPRO_PROFILE_INTERVAL_MS`` for finer resolution when overhead is
#: not a concern.
_DEFAULT_INTERVAL_MS = 10.0
#: Cap on distinct aggregated stacks — beyond it new stacks fold into a
#: synthetic ``(truncated)`` bucket so a pathological workload cannot
#: grow the counter without bound.
_MAX_DISTINCT_STACKS = 20_000
#: Frames kept per sampled stack (innermost last).
_MAX_DEPTH = 64

#: Function name -> engine phase.  A sampled stack is attributed to the
#: phase of its **innermost** matching frame: a sample caught inside
#: ``csr_repair_affected`` counts as ``repair`` even though
#: ``_apply_chunk`` (coalesce) is further up the stack.  Names mirror
#: the call graph of :mod:`repro.serving.service` /
#: :mod:`repro.core.inchl_fast`.
PHASE_MARKERS: dict[str, str] = {
    # find sweep (vectorized + mixed variants)
    "csr_find_affected": "find",
    "csr_find_affected_mixed": "find",
    # repair sweeps
    "csr_repair_affected": "repair",
    "csr_batch_repair_mixed": "repair",
    "csr_batch_sweep": "repair",
    "csr_mixed_sweep": "repair",
    # engine/batch apply entry points
    "apply_events_batch": "apply",
    "insert_edges_batch": "apply",
    "apply_mixed": "apply",
    "_apply_insert_run": "apply",
    # writer-side coalescing (validation/dedup around the engine call)
    "_apply_chunk": "coalesce",
    "_apply_chunk_mixed": "coalesce",
    # snapshot publication
    "_publish": "publish",
    "freeze": "publish",
}

#: The bucket for samples no marker claims (protocol I/O, idle waits...).
OTHER_PHASE = "other"


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for sampling (default off)."""
    return bool(knobs.get("REPRO_PROFILE"))


def _env_interval_ms() -> float:
    value = knobs.get("REPRO_PROFILE_INTERVAL_MS")
    return _DEFAULT_INTERVAL_MS if value is None else float(value)


def _frame_label(frame) -> str:
    """``module.function`` for one frame (concise, flamegraph-friendly)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


def _walk_stack(frame) -> tuple[str, ...]:
    """Root-first frame labels, innermost last, depth-capped."""
    labels: list[str] = []
    while frame is not None and len(labels) < _MAX_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


def attribute_stack(stack: tuple[str, ...] | list[str]) -> str:
    """The engine phase of one root-first stack (innermost match wins).

    Labels may be bare function names or ``module.function``; only the
    function-name suffix is matched against :data:`PHASE_MARKERS`.
    """
    for label in reversed(tuple(stack)):
        name = label.rsplit(".", 1)[-1]
        phase = PHASE_MARKERS.get(name)
        if phase is not None:
            return phase
    return OTHER_PHASE


def attribute_folded(folded: str) -> dict[str, int]:
    """Phase -> sample count from folded-stack text (deterministic:
    depends only on the folded lines, not on sampling order)."""
    table: Counter[str] = Counter()
    for line in folded.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        try:
            count = int(count_part)
        except ValueError:
            continue
        table[attribute_stack(stack_part.split(";"))] += count
    return dict(table)


class SamplingProfiler:
    """Aggregating wall-clock stack sampler.

    >>> prof = SamplingProfiler(interval_ms=1.0)
    >>> prof.add_sample(("repro.serving.service._apply_chunk",
    ...                  "repro.core.inchl_fast.csr_repair_affected"), 3)
    >>> prof.phase_table()["repair"]["samples"]
    3
    """

    def __init__(
        self,
        interval_ms: float | None = None,
        *,
        max_stacks: int = _MAX_DISTINCT_STACKS,
    ) -> None:
        self.interval_ms = (
            float(interval_ms) if interval_ms is not None else _env_interval_ms()
        )
        self._max_stacks = max_stacks
        self._stacks: Counter[tuple[str, ...]] = Counter()
        self._samples = 0
        self._truncated = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._started_at: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def samples(self) -> int:
        """Total stack samples aggregated so far (all threads)."""
        return self._samples

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent)."""
        with self._lock:
            if self.running:
                return self
            self._stop_event.clear()
            self._started_at = perf_counter()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling; aggregated samples are kept (idempotent)."""
        thread = self._thread
        self._stop_event.set()
        if thread is not None:
            thread.join(timeout=2.0)
        with self._lock:
            if self._started_at is not None:
                self._elapsed += perf_counter() - self._started_at
                self._started_at = None
            self._thread = None
        return self

    def reset(self) -> None:
        """Drop aggregated samples (keeps the sampler running if it is)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._truncated = 0
            self._elapsed = 0.0
            if self._started_at is not None:
                self._started_at = perf_counter()

    def _sample_loop(self) -> None:
        own = threading.get_ident()
        interval_s = self.interval_ms / 1000.0
        while not self._stop_event.wait(interval_s):
            try:
                frames = sys._current_frames()
            except Exception:  # pragma: no cover - interpreter teardown
                return
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                self.add_sample(_walk_stack(frame))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def add_sample(self, stack: tuple[str, ...], count: int = 1) -> None:
        """Fold one root-first stack into the aggregate.

        Public so tests (and offline replays of folded files) can drive
        the attribution machinery deterministically without live
        sampling.
        """
        stack = tuple(stack)
        if not stack:
            return
        with self._lock:
            if stack not in self._stacks and len(self._stacks) >= self._max_stacks:
                stack = ("(truncated)",)
                self._truncated += count
            self._stacks[stack] += count
            self._samples += count

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def folded(self) -> str:
        """Folded-stack text: ``frame;frame;frame count`` per line, sorted
        by descending count (flamegraph.pl / speedscope / inferno input)."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in items)

    def phase_table(self) -> dict[str, dict]:
        """Phase -> ``{"samples": n, "pct": p}`` over the aggregate.

        Every sample lands in exactly one phase (:func:`attribute_stack`;
        unmatched stacks under ``"other"``), so the percentages sum to
        ~100.  Deterministic given the aggregated stacks.
        """
        with self._lock:
            items = list(self._stacks.items())
            total = self._samples
        counts: Counter[str] = Counter()
        for stack, count in items:
            counts[attribute_stack(stack)] += count
        return {
            phase: {
                "samples": count,
                "pct": round(100.0 * count / total, 2) if total else 0.0,
            }
            for phase, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        }

    def stats(self) -> dict:
        """Summary dict (the ``profile`` protocol op's payload)."""
        with self._lock:
            elapsed = self._elapsed
            if self._started_at is not None:
                elapsed += perf_counter() - self._started_at
            distinct = len(self._stacks)
            samples = self._samples
            truncated = self._truncated
        return {
            "running": self.running,
            "enabled": profile_enabled(),
            "interval_ms": self.interval_ms,
            "samples": samples,
            "distinct_stacks": distinct,
            "truncated_samples": truncated,
            "elapsed_s": round(elapsed, 3),
            "phases": self.phase_table(),
        }

    def dump(self, path: str | os.PathLike) -> str:
        """Write :meth:`folded` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            folded = self.folded()
            handle.write(folded + ("\n" if folded else ""))
        return str(path)


_profiler: SamplingProfiler | None = None
_profiler_lock = threading.Lock()


def get_profiler() -> SamplingProfiler:
    """The process-wide profiler (created on first use, not started)."""
    global _profiler
    with _profiler_lock:
        if _profiler is None:
            _profiler = SamplingProfiler()
        return _profiler


def reset_profiler() -> None:
    """Drop the process profiler (tests re-read the env knobs)."""
    global _profiler
    with _profiler_lock:
        if _profiler is not None:
            _profiler.stop()
        _profiler = None


def start_if_enabled() -> SamplingProfiler | None:
    """Start the process profiler iff ``REPRO_PROFILE`` asks for it.

    Servers and the bench harness call this on startup; returns the
    (running) profiler or ``None`` when profiling is off.
    """
    if not profile_enabled():
        return None
    return get_profiler().start()


def dump_if_enabled(path: str | None = None) -> str | None:
    """Write the folded stacks to ``path`` or ``REPRO_PROFILE_OUT``.

    No-op (returns ``None``) when profiling is disabled or no output
    path is known; the companion of :func:`start_if_enabled` for process
    shutdown paths.
    """
    target = path or knobs.get("REPRO_PROFILE_OUT")
    if not target or not profile_enabled():
        return None
    return get_profiler().dump(target)


def _busy_wait_for_samples(  # pragma: no cover - manual diagnostics aid
    profiler: SamplingProfiler, min_samples: int, timeout_s: float = 1.0
) -> bool:
    """Spin until the profiler aggregated ``min_samples`` (diagnostics)."""
    deadline = perf_counter() + timeout_s
    while perf_counter() < deadline:
        if profiler.samples >= min_samples:
            return True
        sleep(profiler.interval_ms / 1000.0)
    return profiler.samples >= min_samples
