"""Declarative SLOs evaluated with multi-window burn rates.

An :class:`SLO` names a metric from the metrics-history points
(:mod:`repro.obs.timeseries`), an objective for it, and an **error
budget** — the fraction of samples allowed to violate the objective.
Evaluation follows the SRE multi-window burn-rate recipe: for each
``(window_seconds, burn_threshold)`` pair the evaluator computes

    bad_fraction(window) = violating samples / samples in window
    burn(window)         = bad_fraction / budget

and an alert **fires only when every window burns past its threshold**
— the short window proves the problem is happening *now*, the long one
proves it is not a blip.  A burn of 1.0 means the budget is being spent
exactly as fast as it accrues; 10 means ten times faster.

Rule format (JSON, ``repro serve --slo rules.json``)::

    [{"name": "query-p99", "metric": "query_p99_ms",
      "objective": 50.0, "direction": "above", "budget": 0.05,
      "windows": [[60, 2.0], [300, 1.0]],
      "description": "p99 read latency under 50 ms"}]

``direction: "above"`` means a sample violates when the metric exceeds
the objective (latency, lag, growth); ``"below"`` inverts it
(throughput floors).  Samples missing the metric (or ``null``) are
ignored — absence of data never burns budget.

State surfaces three ways: ``repro_slo_burn{slo=...}`` /
``repro_slo_breach{slo=...}`` gauges on the server registry, structured
``alert_firing`` / ``alert_resolved`` log events on transitions, and the
``alerts`` protocol op (which ``repro dash`` renders).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.obs.log import get_logger

__all__ = [
    "SLO",
    "SLOEvaluator",
    "parse_slos",
    "load_slos",
    "default_slos",
]

_DIRECTIONS = ("above", "below")
#: Default multi-window rule: a fast 1-minute window at 2x burn plus a
#: slow 5-minute window at 1x — page only when both agree.
_DEFAULT_WINDOWS = ((60.0, 2.0), (300.0, 1.0))


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a metrics-history key."""

    name: str
    metric: str
    objective: float
    direction: str = "above"
    budget: float = 0.05
    windows: tuple[tuple[float, float], ...] = _DEFAULT_WINDOWS
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ReproError(
                f"SLO {self.name!r}: direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if not 0 < self.budget <= 1:
            raise ReproError(
                f"SLO {self.name!r}: budget must be in (0, 1], got {self.budget}"
            )
        if not self.windows:
            raise ReproError(f"SLO {self.name!r}: needs at least one window")
        for window_s, threshold in self.windows:
            if window_s <= 0 or threshold <= 0:
                raise ReproError(
                    f"SLO {self.name!r}: window seconds and burn threshold "
                    f"must be positive, got ({window_s}, {threshold})"
                )

    def violates(self, value) -> bool | None:
        """Whether one sample value violates the objective (``None`` for
        missing/non-numeric values — no data, no verdict)."""
        if value is None or isinstance(value, bool):
            return None
        try:
            value = float(value)
        except (TypeError, ValueError):
            return None
        if self.direction == "above":
            return value > self.objective
        return value < self.objective

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "direction": self.direction,
            "budget": self.budget,
            "windows": [list(w) for w in self.windows],
            "description": self.description,
        }


def parse_slos(data) -> list[SLO]:
    """Parse SLO rules from a JSON string or an already-decoded list."""
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid SLO rules JSON: {exc.msg}") from exc
    if not isinstance(data, list):
        raise ReproError("SLO rules must be a JSON array of rule objects")
    slos: list[SLO] = []
    for index, raw in enumerate(data):
        if not isinstance(raw, dict):
            raise ReproError(f"SLO rule #{index} must be an object")
        try:
            slos.append(
                SLO(
                    name=str(raw["name"]),
                    metric=str(raw["metric"]),
                    objective=float(raw["objective"]),
                    direction=str(raw.get("direction", "above")),
                    budget=float(raw.get("budget", 0.05)),
                    windows=tuple(
                        (float(w), float(t))
                        for w, t in raw.get("windows", _DEFAULT_WINDOWS)
                    ),
                    description=str(raw.get("description", "")),
                )
            )
        except KeyError as exc:
            raise ReproError(
                f"SLO rule #{index} is missing required key {exc}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ReproError(f"SLO rule #{index} is malformed: {exc}") from exc
    names = [slo.name for slo in slos]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate SLO names in rules: {names}")
    return slos


def load_slos(path: str | os.PathLike) -> list[SLO]:
    """Parse SLO rules from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_slos(handle.read())


def default_slos(role: str = "server") -> list[SLO]:
    """Built-in rule set (``--slo default``): query tail latency and
    error rate everywhere, plus replication lag and WAL growth on the
    router."""
    slos = [
        SLO(
            name="query-p99",
            metric="query_p99_ms",
            objective=100.0,
            direction="above",
            budget=0.05,
            description="p99 read latency stays under 100 ms",
        ),
        SLO(
            name="error-rate",
            metric="error_rate",
            objective=0.01,
            direction="above",
            budget=0.05,
            description="under 1% of update events rejected",
        ),
    ]
    if role == "router":
        slos += [
            SLO(
                name="replica-lag",
                metric="max_lag",
                objective=1024.0,
                direction="above",
                budget=0.05,
                description="every replica within 1024 log entries of head",
            ),
            SLO(
                name="wal-growth",
                metric="wal_growth_bytes_per_s",
                objective=8.0 * 1024 * 1024,
                direction="above",
                budget=0.10,
                description="WAL grows under 8 MiB/s (compaction keeps up)",
            ),
        ]
    return slos


@dataclass
class _AlertState:
    firing: bool = False
    since: float | None = None
    last: dict = field(default_factory=dict)


class SLOEvaluator:
    """Evaluates a rule set against metrics-history points.

    ``evaluate(points)`` is called after every recorder tick (the
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` ``on_point``
    hook); it updates the burn/breach gauges when a registry was given,
    logs firing/resolved transitions, and returns the full evaluation —
    the payload of the ``alerts`` protocol op.
    """

    def __init__(self, slos, registry=None, logger=None) -> None:
        self._slos = list(slos)
        self._states: dict[str, _AlertState] = {
            slo.name: _AlertState() for slo in self._slos
        }
        self._logger = logger if logger is not None else get_logger("slo")
        self._burn_family = None
        self._breach_family = None
        if registry is not None:
            self._burn_family = registry.gauge(
                "repro_slo_burn",
                "Error-budget burn rate (fastest window; 1.0 = budget pace).",
                labelnames=("slo",),
            )
            self._breach_family = registry.gauge(
                "repro_slo_breach",
                "1 while the SLO's multi-window burn alert is firing.",
                labelnames=("slo",),
            )

    @property
    def slos(self) -> list[SLO]:
        return list(self._slos)

    def evaluate(self, points: list[dict], now: float | None = None) -> list[dict]:
        """Evaluate every SLO against ``points`` (each with a ``ts``).

        ``now`` defaults to the newest point's timestamp, so replayed
        histories evaluate identically to live ones.  Returns one
        evaluation dict per SLO (``firing``, ``burn``, per-window
        detail).
        """
        if now is None:
            now = max(
                (p.get("ts", 0.0) for p in points), default=time.time()
            )
        evaluations: list[dict] = []
        for slo in self._slos:
            windows_out: list[dict] = []
            firing = True
            worst_burn = 0.0
            for window_s, threshold in slo.windows:
                good = bad = 0
                for point in points:
                    ts = point.get("ts")
                    if ts is None or ts < now - window_s or ts > now:
                        continue
                    verdict = slo.violates(point.get(slo.metric))
                    if verdict is None:
                        continue
                    if verdict:
                        bad += 1
                    else:
                        good += 1
                total = good + bad
                bad_fraction = bad / total if total else 0.0
                burn = bad_fraction / slo.budget
                worst_burn = max(worst_burn, burn)
                window_firing = total > 0 and burn >= threshold
                firing = firing and window_firing
                windows_out.append(
                    {
                        "window_s": window_s,
                        "threshold": threshold,
                        "samples": total,
                        "bad": bad,
                        "bad_fraction": round(bad_fraction, 4),
                        "burn": round(burn, 4),
                        "firing": window_firing,
                    }
                )
            state = self._states[slo.name]
            evaluation = {
                "slo": slo.name,
                "metric": slo.metric,
                "objective": slo.objective,
                "direction": slo.direction,
                "budget": slo.budget,
                "description": slo.description,
                "firing": firing,
                "burn": round(worst_burn, 4),
                "windows": windows_out,
                "since": state.since,
            }
            self._transition(slo, state, evaluation, now)
            evaluation["since"] = state.since
            state.last = evaluation
            evaluations.append(evaluation)
            if self._burn_family is not None:
                self._burn_family.labels(slo=slo.name).set(worst_burn)
                self._breach_family.labels(slo=slo.name).set(
                    1.0 if firing else 0.0
                )
        return evaluations

    def _transition(
        self, slo: SLO, state: _AlertState, evaluation: dict, now: float
    ) -> None:
        if evaluation["firing"] and not state.firing:
            state.firing = True
            state.since = now
            self._logger.warning(
                "alert_firing",
                slo=slo.name,
                metric=slo.metric,
                objective=slo.objective,
                burn=evaluation["burn"],
            )
        elif not evaluation["firing"] and state.firing:
            state.firing = False
            duration = now - state.since if state.since is not None else None
            state.since = None
            self._logger.info(
                "alert_resolved",
                slo=slo.name,
                metric=slo.metric,
                dur_s=round(duration, 3) if duration is not None else None,
            )

    def active_alerts(self) -> list[dict]:
        """The currently-firing SLOs' last evaluations."""
        return [
            dict(state.last)
            for state in self._states.values()
            if state.firing and state.last
        ]

    def last_evaluations(self) -> list[dict]:
        """Every SLO's most recent evaluation (empty before the first)."""
        return [
            dict(state.last) for state in self._states.values() if state.last
        ]
