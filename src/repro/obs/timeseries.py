"""Bounded on-disk metrics history: NDJSON snapshots with downsampling.

Point-in-time gauges answer "what is the p99 *now*"; operating a
cluster needs "what has the p99 *been doing*".  A
:class:`TimeSeriesRecorder` periodically calls a sampler function (the
server's ``_sample_metrics`` hook), stamps each returned dict with
``ts``, keeps the points in memory, and — when given a path — mirrors
them to an NDJSON file (one JSON object per line).

Retention is bounded on both axes:

* at most ``max_points`` points are retained; when the bound is hit the
  **oldest half is downsampled 2:1** (every other point dropped) and the
  file atomically rewritten, so recent history stays at full resolution
  while old history gets coarser instead of evicted outright — the disk
  footprint is O(``max_points``) forever;
* a sampler exception skips that tick (recorded in ``errors``) rather
  than killing the thread.

``repro dash`` draws its sparklines from these points (over the wire
via the ``history`` protocol op), and the SLO evaluator
(:mod:`repro.obs.slo`) consumes the same trajectory — one sampling loop
feeds both.
"""

from __future__ import annotations

import json
import os
import resource
import threading
import time

__all__ = [
    "TimeSeriesRecorder",
    "read_series",
    "peak_rss_kb",
]

_DEFAULT_INTERVAL_S = 5.0
_DEFAULT_MAX_POINTS = 2048


def peak_rss_kb() -> int:
    """This process's peak RSS in KiB (``ru_maxrss`` is KiB on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def read_series(path: str | os.PathLike) -> list[dict]:
    """Parse an NDJSON history file; a torn final line (crash mid-append)
    is ignored, corruption elsewhere raises ``ValueError``."""
    try:
        with open(path, "rb") as handle:
            lines = handle.read().split(b"\n")
    except FileNotFoundError:
        return []
    points: list[dict] = []
    for line_no, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            points.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if line_no == len(lines) - 1:  # torn tail: never acknowledged
                break
            raise ValueError(
                f"{path}:{line_no + 1}: corrupt history record: {exc.msg}"
            ) from exc
    return points


class TimeSeriesRecorder:
    """Periodic sampler with bounded in-memory + on-disk history.

    ``sample_fn()`` must return a JSON-encodable dict (or ``None`` to
    skip the tick).  With ``path=None`` the recorder is memory-only —
    the SLO evaluator works either way.  ``on_point(points)`` (if given)
    runs after every appended sample with the full retained history —
    the hook the SLO evaluator hangs off.

    >>> rec = TimeSeriesRecorder(None, lambda: {"qps": 1.0}, interval_s=60)
    >>> rec.record_once()["qps"]
    1.0
    >>> len(rec.points())
    1
    """

    def __init__(
        self,
        path: str | os.PathLike | None,
        sample_fn,
        *,
        interval_s: float = _DEFAULT_INTERVAL_S,
        max_points: int = _DEFAULT_MAX_POINTS,
        on_point=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_points < 4:
            raise ValueError(f"max_points must be >= 4, got {max_points}")
        self._path = str(path) if path is not None else None
        self._sample_fn = sample_fn
        self.interval_s = float(interval_s)
        self._max_points = int(max_points)
        self._points: list[dict] = []
        self._on_point = on_point
        self._errors = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        if self._path is not None:
            # Resume an existing file so restarts extend the trajectory
            # instead of clobbering it (re-bounded immediately below).
            self._points = read_series(self._path)[-self._max_points :]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str | None:
        return self._path

    @property
    def errors(self) -> int:
        """Sampler ticks skipped because ``sample_fn`` raised."""
        return self._errors

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def points(self, limit: int | None = None) -> list[dict]:
        """Retained points, oldest first (last ``limit`` when given)."""
        with self._lock:
            out = list(self._points)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def record_once(self) -> dict | None:
        """Take one sample now (the thread loop's body; also the direct
        entry point for tests and forced samples).  Returns the stamped
        point, or ``None`` if the sampler skipped/raised."""
        try:
            point = self._sample_fn()
        except Exception:
            self._errors += 1
            return None
        if point is None:
            return None
        point = dict(point)
        point.setdefault("ts", round(time.time(), 3))
        with self._lock:
            self._points.append(point)
            if self._path is not None:
                self._append_line(point)
            if len(self._points) > self._max_points:
                self._downsample_locked()
        hook = self._on_point
        if hook is not None:
            try:
                hook(self.points())
            except Exception:
                self._errors += 1
        return point

    def _append_line(self, point: dict) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(point, separators=(",", ":"), default=str))
            handle.write("\n")

    def _downsample_locked(self) -> None:
        """Halve the resolution of the oldest half (keep every other
        point); rewrite the file atomically when one is configured."""
        half = len(self._points) // 2
        self._points = self._points[:half][::2] + self._points[half:]
        if self._path is not None:
            tmp = self._path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for point in self._points:
                    handle.write(
                        json.dumps(point, separators=(",", ":"), default=str)
                    )
                    handle.write("\n")
            os.replace(tmp, self._path)

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TimeSeriesRecorder":
        """Start the periodic sampling thread (idempotent)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-timeseries", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread (idempotent; points are kept)."""
        thread, self._thread = self._thread, None
        self._stop_event.set()
        if thread is not None:
            thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.record_once()
