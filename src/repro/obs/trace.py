"""Request tracing: trace ids on the wire, contextvar spans in process.

The NDJSON protocol carries an optional ``"trace"`` field on any request.
A client that sets it gets the request *followed* across the stack: the
router records a span around its forward, the replica records one around
its dispatch (the router forwards read lines verbatim, so the field
propagates for free), and the service's writer records chunk spans with
per-phase timings.  All spans land in a bounded in-process ring
(:class:`SpanRecorder`), are queryable over the wire via the ``spans``
protocol op, and are optionally mirrored to an NDJSON file named by the
``REPRO_SPAN_LOG`` environment variable (one JSON object per line — the
CI smoke jobs upload it as an artifact).

Spans are recorded **only** when a trace id is in play — an untraced
request pays one dict lookup and nothing else — and the whole layer can
be switched off with ``REPRO_OBS=off`` (the overhead acceptance knob).

Span shape::

    {"trace": "9f2c...", "span": "a1b2c3d4", "parent": null,
     "name": "query_many", "component": "router", "ts": 1754...,
     "dur_ms": 0.41, ...extra fields...}
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
from collections import deque
from time import perf_counter, time

from repro import knobs

__all__ = [
    "obs_enabled",
    "new_trace_id",
    "current_trace_id",
    "SpanRecorder",
    "get_recorder",
    "reset_recorder",
    "span",
    "record_span",
]

_current_trace: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace", default=None
)
_current_span: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_span", default=None
)


def obs_enabled() -> bool:
    """Whether the observability layer records anything (``REPRO_OBS``,
    default on; set to ``off``/``0``/``false`` to measure raw overhead)."""
    return bool(knobs.get("REPRO_OBS"))


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (collision-safe at cluster scale)."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(4).hex()


def current_trace_id() -> str | None:
    """The trace id of the innermost active span on this thread/task."""
    return _current_trace.get()


class SpanRecorder:
    """Bounded ring of finished spans + optional NDJSON file sink.

    ``record`` is safe from any thread; the ring keeps the most recent
    ``capacity`` spans (the ``spans`` protocol op reads it), and when a
    sink path is configured every span is also appended to that file as
    one JSON line.
    """

    def __init__(self, capacity: int = 4096, sink_path: str | None = None):
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink_path = sink_path
        self._sink = None

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    def record(self, span_data: dict) -> None:
        with self._lock:
            self._spans.append(span_data)
            if self._sink_path is not None:
                if self._sink is None:
                    self._sink = open(self._sink_path, "a", encoding="utf-8")
                self._sink.write(
                    json.dumps(span_data, separators=(",", ":"), default=str)
                    + "\n"
                )
                self._sink.flush()

    def spans(self, trace: str | None = None, limit: int | None = None) -> list[dict]:
        """Most-recent-last span dicts, optionally filtered to one trace."""
        with self._lock:
            out = list(self._spans)
        if trace is not None:
            out = [s for s in out if s.get("trace") == trace]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


_recorder: SpanRecorder | None = None
_recorder_lock = threading.Lock()


def get_recorder() -> SpanRecorder:
    """The process-wide span recorder (sink taken from ``REPRO_SPAN_LOG``
    at first use)."""
    global _recorder
    with _recorder_lock:
        if _recorder is None:
            _recorder = SpanRecorder(sink_path=knobs.get("REPRO_SPAN_LOG"))
        return _recorder


def reset_recorder() -> None:
    """Drop the process recorder (tests re-read ``REPRO_SPAN_LOG``)."""
    global _recorder
    with _recorder_lock:
        if _recorder is not None:
            _recorder.close()
        _recorder = None


class span:
    """Context manager recording one span — when a trace id is in play.

    ``trace`` is normally the id pulled off the wire; when ``None`` the
    ambient trace (an enclosing span's) is inherited.  With no trace at
    all, or with observability off, entering is a no-op and nothing is
    recorded — the zero-cost default for untraced traffic.  Extra keyword
    fields land verbatim in the span dict, and the dict is exposed as the
    ``as`` target so handlers can annotate mid-flight::

        with span("query", "server", trace=tid, op="query") as s:
            ...
            if s is not None:
                s["epoch"] = snap.epoch
    """

    __slots__ = (
        "_name", "_component", "_trace", "_fields", "_recorder",
        "_data", "_start", "_tok_t", "_tok_s",
    )

    def __init__(
        self,
        name: str,
        component: str,
        *,
        trace: str | None = None,
        recorder: SpanRecorder | None = None,
        **fields,
    ) -> None:
        self._name = name
        self._component = component
        self._trace = trace
        self._fields = fields
        self._recorder = recorder
        self._data: dict | None = None

    def __enter__(self) -> dict | None:
        tid = self._trace if self._trace is not None else _current_trace.get()
        if tid is None or not obs_enabled():
            return None
        sid = _new_span_id()
        self._data = {
            "trace": str(tid),
            "span": sid,
            "parent": _current_span.get(),
            "name": self._name,
            "component": self._component,
            "ts": round(time(), 6),
        }
        if self._fields:
            self._data.update(self._fields)
        self._tok_t = _current_trace.set(str(tid))
        self._tok_s = _current_span.set(sid)
        self._start = perf_counter()
        return self._data

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._data is None:
            return
        self._data["dur_ms"] = round((perf_counter() - self._start) * 1000.0, 3)
        if exc_type is not None:
            self._data["error"] = exc_type.__name__
        _current_span.reset(self._tok_s)
        _current_trace.reset(self._tok_t)
        (self._recorder or get_recorder()).record(self._data)


def record_span(
    name: str,
    component: str,
    dur_ms: float,
    *,
    trace: str | None = None,
    recorder: SpanRecorder | None = None,
    **fields,
) -> dict | None:
    """Record an already-timed span directly (no context management).

    Used by the service's writer thread, whose chunk applies are not tied
    to any one request: each chunk gets its own trace id so a slow batch
    can still be pulled out of the span log by id.  Returns the recorded
    dict, or ``None`` with observability off.
    """
    if not obs_enabled():
        return None
    data = {
        "trace": str(trace) if trace is not None else new_trace_id(),
        "span": _new_span_id(),
        "parent": _current_span.get(),
        "name": name,
        "component": component,
        "ts": round(time(), 6),
        "dur_ms": round(dur_ms, 3),
    }
    if fields:
        data.update(fields)
    (recorder or get_recorder()).record(data)
    return data
