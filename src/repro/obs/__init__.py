"""`repro.obs` — the unified observability layer (docs/DESIGN.md §11, §13).

The point-in-time half (PR 6), shared by every serving/cluster process:

* :mod:`repro.obs.registry` — counters, gauges, and **mergeable**
  fixed-bucket histograms with Prometheus text exposition (the exact
  cluster-wide percentile merge lives on these);
* :mod:`repro.obs.log` — structured JSON logging with trace correlation
  and the slow-operation threshold;
* :mod:`repro.obs.trace` — contextvar spans keyed by the wire-level
  ``trace`` field, recorded to a ring + optional NDJSON span log;
* :mod:`repro.obs.exporter` — the ``--metrics-port`` HTTP scrape
  endpoint.

And the continuous half (docs/DESIGN.md §13):

* :mod:`repro.obs.profile` — opt-in sampling wall-clock profiler
  (``REPRO_PROFILE=1``): folded stacks + per-engine-phase attribution;
* :mod:`repro.obs.timeseries` — bounded NDJSON metrics history with
  downsampling (the ``history`` op / ``repro dash`` trajectory source);
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn-rate
  alerting (``alerts`` op, ``repro_slo_burn``/``repro_slo_breach``).
"""

from repro.obs.log import (
    StructuredLogger,
    get_logger,
    slow_threshold_ms,
)
from repro.obs.registry import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_histograms,
)
from repro.obs.trace import (
    SpanRecorder,
    current_trace_id,
    get_recorder,
    new_trace_id,
    obs_enabled,
    record_span,
    reset_recorder,
    span,
)
from repro.obs.exporter import CONTENT_TYPE, MetricsExporter
from repro.obs.profile import (
    PHASE_MARKERS,
    SamplingProfiler,
    attribute_folded,
    dump_if_enabled,
    get_profiler,
    profile_enabled,
    reset_profiler,
    start_if_enabled,
)
from repro.obs.slo import SLO, SLOEvaluator, default_slos, load_slos, parse_slos
from repro.obs.timeseries import TimeSeriesRecorder, peak_rss_kb, read_series

__all__ = [
    "LATENCY_BOUNDS",
    "COUNT_BOUNDS",
    "Histogram",
    "merge_histograms",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "get_registry",
    "StructuredLogger",
    "get_logger",
    "slow_threshold_ms",
    "SpanRecorder",
    "get_recorder",
    "reset_recorder",
    "span",
    "record_span",
    "new_trace_id",
    "current_trace_id",
    "obs_enabled",
    "MetricsExporter",
    "CONTENT_TYPE",
    "PHASE_MARKERS",
    "SamplingProfiler",
    "attribute_folded",
    "profile_enabled",
    "get_profiler",
    "reset_profiler",
    "start_if_enabled",
    "dump_if_enabled",
    "TimeSeriesRecorder",
    "read_series",
    "peak_rss_kb",
    "SLO",
    "SLOEvaluator",
    "parse_slos",
    "load_slos",
    "default_slos",
]
