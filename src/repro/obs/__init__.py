"""`repro.obs` — the unified observability layer (docs/DESIGN.md §11).

Four small pieces, shared by every serving/cluster process:

* :mod:`repro.obs.registry` — counters, gauges, and **mergeable**
  fixed-bucket histograms with Prometheus text exposition (the exact
  cluster-wide percentile merge lives on these);
* :mod:`repro.obs.log` — structured JSON logging with trace correlation
  and the slow-operation threshold;
* :mod:`repro.obs.trace` — contextvar spans keyed by the wire-level
  ``trace`` field, recorded to a ring + optional NDJSON span log;
* :mod:`repro.obs.exporter` — the ``--metrics-port`` HTTP scrape
  endpoint.
"""

from repro.obs.log import (
    StructuredLogger,
    get_logger,
    slow_threshold_ms,
)
from repro.obs.registry import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_histograms,
)
from repro.obs.trace import (
    SpanRecorder,
    current_trace_id,
    get_recorder,
    new_trace_id,
    obs_enabled,
    record_span,
    reset_recorder,
    span,
)
from repro.obs.exporter import CONTENT_TYPE, MetricsExporter

__all__ = [
    "LATENCY_BOUNDS",
    "COUNT_BOUNDS",
    "Histogram",
    "merge_histograms",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "get_registry",
    "StructuredLogger",
    "get_logger",
    "slow_threshold_ms",
    "SpanRecorder",
    "get_recorder",
    "reset_recorder",
    "span",
    "record_span",
    "new_trace_id",
    "current_trace_id",
    "obs_enabled",
    "MetricsExporter",
    "CONTENT_TYPE",
]
