"""A minimal asyncio HTTP exporter for Prometheus scrapes.

``repro serve --metrics-port N`` (and the cluster router via
``serve-cluster``) binds this next to the NDJSON listener: every GET
gets the registry's text exposition back over HTTP/1.0 with
``Connection: close`` — exactly what a Prometheus scrape (or ``curl``,
or the CI smoke jobs' ``urllib`` probe) needs, with no HTTP framework
in sight.  Anything that is not a GET earns a 405; malformed request
lines a 400.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import ServingError
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsExporter", "CONTENT_TYPE"]

#: The Prometheus text exposition content type (format version 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_HEADER = 16 * 1024  # a scrape request has no business being larger


class MetricsExporter:
    """Serve ``registry.render()`` over HTTP on ``(host, port)``.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the resolved one.  Lifecycle mirrors the NDJSON servers: ``await
    start()`` / ``await stop()`` on the owning event loop.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise ServingError("metrics exporter is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> "MetricsExporter":
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=_MAX_HEADER
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                request_line = b""
            parts = request_line.split()
            if len(parts) < 2:
                await self._write(writer, 400, "Bad Request", "bad request\n")
                return
            method = parts[0].decode("latin-1", "replace").upper()
            # Drain headers so a keep-alive-minded client sees a clean close.
            while True:
                try:
                    header = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if header in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._write(
                    writer, 405, "Method Not Allowed", "GET only\n"
                )
                return
            await self._write(
                writer, 200, "OK", self._registry.render(), CONTENT_TYPE
            )
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
