"""Structured JSON logging for the serving and cluster processes.

One JSON object per line on stderr (or any stream), so a supervisor
running a dozen replica processes produces a machine-mergeable event
stream instead of interleaved prose.  Every record carries ``ts``,
``level``, ``component`` and ``event``; the ambient trace id (if a span
is active — :mod:`repro.obs.trace`) is attached automatically so a log
line can be joined against the span log.

Level filtering comes from ``REPRO_LOG_LEVEL`` (``debug`` / ``info`` /
``warning`` / ``error`` / ``off``; default ``info``) and is re-read on
every call — cheap, and tests can flip it without rebuilding loggers.

The slow-operation threshold (``REPRO_SLOW_MS``, default 250 ms) lives
here too: the server's slow-query log and the service's slow-batch log
share it.
"""

from __future__ import annotations

import json
import sys
import threading
import time

from repro import knobs
from repro.obs.trace import current_trace_id

__all__ = [
    "StructuredLogger",
    "get_logger",
    "log_threshold",
    "slow_threshold_ms",
]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}
_DEFAULT_SLOW_MS = 250.0

_write_lock = threading.Lock()


def log_threshold() -> int:
    """The numeric level below which records are dropped."""
    name = knobs.get("REPRO_LOG_LEVEL")
    return _LEVELS.get(name, _LEVELS["info"])


def slow_threshold_ms() -> float:
    """Operations slower than this (milliseconds) earn a warning record
    (``REPRO_SLOW_MS``; non-numeric values fall back to the default)."""
    value = knobs.get("REPRO_SLOW_MS")
    return _DEFAULT_SLOW_MS if value is None else float(value)


class StructuredLogger:
    """One component's JSON-lines logger.

    >>> import io
    >>> buf = io.StringIO()
    >>> log = StructuredLogger("server", stream=buf)
    >>> log.info("started", port=8355)
    >>> record = json.loads(buf.getvalue())
    >>> record["component"], record["event"], record["port"]
    ('server', 'started', 8355)
    """

    __slots__ = ("component", "_stream")

    def __init__(self, component: str, stream=None) -> None:
        self.component = component
        self._stream = stream

    def log(self, level: str, event: str, **fields) -> None:
        if _LEVELS.get(level, 0) < log_threshold():
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        trace = current_trace_id()
        if trace is not None:
            record["trace"] = trace
        if fields:
            record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with _write_lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):  # pragma: no cover - closed stream
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(component: str) -> StructuredLogger:
    """The (cached) logger for one component name."""
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = StructuredLogger(component)
            _loggers[component] = logger
        return logger
