"""``python -m repro`` — build, persist, query and update oracles from files.

The library-level entry point for users who want the paper's system as a
tool rather than an API (the benchmark harness has its own entry point,
``python -m repro.bench``).  Subcommands:

* ``build``   — construct an oracle from an edge list and save it;
* ``query``   — answer ``u v`` distance queries from a saved oracle;
* ``path``    — print one exact shortest path;
* ``insert``  / ``delete`` — apply updates (IncHL+ / DecHL) and re-save;
* ``stats``   — labelling and highway statistics;
* ``serve``   — warm-start the TCP query service from a saved oracle
  (:mod:`repro.serving`; newline-delimited JSON protocol);
* ``serve-cluster`` — the replicated deployment: N replica processes
  behind a WAL-backed router speaking the same protocol
  (:mod:`repro.cluster`);
* ``top``     — live stats of a running server or cluster, refreshed
  like ``top(1)`` (reads the ``stats`` op; works against both;
  ``--watch N`` clears and redraws in place every N seconds);
* ``dash``    — live terminal dashboard: metric sparklines from the
  server's history recorder (falling back to client-side sampling) plus
  active SLO alerts;
* ``profile`` — inspect/control the sampling profiler of a running
  server (``REPRO_PROFILE=1``): per-phase attribution table and
  flamegraph-compatible folded stacks;
* ``lint``    — project-specific static analysis (:mod:`repro.lint`):
  lock discipline, frozen-snapshot immutability, async hygiene, NDJSON
  protocol drift, structured logging, env-knob registry;
* ``knobs``   — list every ``REPRO_*`` tuning knob with defaults and
  current values (:mod:`repro.knobs`).

Both serving commands take ``--metrics-port`` to additionally expose the
Prometheus text metrics of :mod:`repro.obs` over HTTP, ``--history`` to
record metrics history to an NDJSON file (the ``history`` op / ``dash``
source), and ``--slo`` to enable multi-window burn-rate alerting
(``default`` for the built-in rules, or a JSON rules file — see
:mod:`repro.obs.slo` for the format).

Both serving commands shut down gracefully on SIGTERM/SIGINT: in-flight
requests drain, the WAL closes cleanly, replicas exit 0.

All file formats are the library's own: SNAP-style edge lists (``.gz``
transparently) in, ``save_oracle`` JSON (``.gz`` transparently) out.

Examples::

    python -m repro build graph.txt -o oracle.json.gz --landmarks 20 --csr
    python -m repro query oracle.json.gz 17 4242
    python -m repro path oracle.json.gz 17 4242
    python -m repro insert oracle.json.gz 17 4242
    python -m repro stats oracle.json.gz
    python -m repro serve oracle.json.gz --port 8355 --workers 0
    python -m repro serve-cluster oracle.json.gz --replicas 2 --port 8360
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError

__all__ = ["main", "format_top", "format_dash", "sparkline"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Dynamic exact-distance oracle (IncHL+/DecHL over a highway "
            "cover labelling) as a command-line tool."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build an oracle from an edge list")
    build.add_argument("edge_list", help="whitespace edge list (.gz ok)")
    build.add_argument("-o", "--out", required=True, help="oracle output path")
    build.add_argument("--landmarks", type=int, default=20, help="|R| (default 20)")
    build.add_argument(
        "--strategy", default="degree",
        choices=("degree", "random", "betweenness", "spread"),
        help="landmark selection strategy",
    )
    build.add_argument(
        "--csr", action="store_true",
        help="use the numpy CSR construction fast path",
    )
    build.add_argument("--seed", type=int, default=2021, help="selection seed")

    query = sub.add_parser("query", help="exact distance between two vertices")
    query.add_argument("oracle", help="saved oracle path")
    query.add_argument("u", type=int)
    query.add_argument("v", type=int)

    path = sub.add_parser("path", help="one exact shortest path")
    path.add_argument("oracle", help="saved oracle path")
    path.add_argument("u", type=int)
    path.add_argument("v", type=int)

    insert = sub.add_parser("insert", help="insert an edge (IncHL+ repair)")
    insert.add_argument("oracle", help="saved oracle path (updated in place)")
    insert.add_argument("u", type=int)
    insert.add_argument("v", type=int)
    insert.add_argument("-o", "--out", default=None,
                        help="write to a different path (default: in place)")

    delete = sub.add_parser("delete", help="delete an edge (DecHL repair)")
    delete.add_argument("oracle", help="saved oracle path (updated in place)")
    delete.add_argument("u", type=int)
    delete.add_argument("v", type=int)
    delete.add_argument("-o", "--out", default=None,
                        help="write to a different path (default: in place)")

    stats = sub.add_parser("stats", help="labelling / highway statistics")
    stats.add_argument("oracle", help="saved oracle path")

    serve = sub.add_parser(
        "serve",
        help="serve queries over TCP while absorbing updates (repro.serving)",
    )
    serve.add_argument("oracle", help="saved oracle path (warm start)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8355,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="parallel-engine workers for batched inserts "
                            "(0 = all CPUs)")
    serve.add_argument("--max-batch", type=int, default=128, metavar="K",
                       help="max update events coalesced per writer sweep")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="P",
                       help="also serve Prometheus text metrics over HTTP "
                            "on this port (0 = ephemeral)")
    serve.add_argument("--history", default=None, metavar="PATH",
                       help="record metrics history to this NDJSON file "
                            "(enables the history op / `repro dash`)")
    serve.add_argument("--history-interval", type=float, default=5.0,
                       metavar="S", help="seconds between history samples "
                                         "(default 5)")
    serve.add_argument("--slo", default=None, metavar="RULES",
                       help="enable burn-rate alerting: 'default' for the "
                            "built-in rules, or a JSON rules file")

    cluster = sub.add_parser(
        "serve-cluster",
        help="replicated serving: N replica processes behind a WAL-backed "
             "router (repro.cluster)",
    )
    cluster.add_argument("oracle", help="saved oracle path (replica warm start)")
    cluster.add_argument("--replicas", type=int, default=2, metavar="N",
                         help="replica worker processes per shard group "
                              "(default 2)")
    cluster.add_argument("--shards", type=int, default=1, metavar="N",
                         help="landmark shard groups; each holds only its "
                              "owned landmarks' label rows and reads "
                              "scatter-gather across groups (default 1)")
    cluster.add_argument("--host", default="127.0.0.1", help="router bind address")
    cluster.add_argument("--port", type=int, default=8360,
                         help="router bind port (0 = ephemeral)")
    cluster.add_argument("--cluster-dir", default=None, metavar="DIR",
                         help="checkpoint + WAL directory "
                              "(default: <oracle>.cluster)")
    cluster.add_argument("--fsync", default="batch",
                         choices=("always", "batch", "never"),
                         help="WAL durability policy (default: batch)")
    cluster.add_argument("--workers", type=int, default=None, metavar="N",
                         help="parallel-engine workers inside each replica "
                              "(0 = all CPUs)")
    cluster.add_argument("--max-batch", type=int, default=128, metavar="K",
                         help="max update events coalesced per replica sweep")
    cluster.add_argument("--compact-every", type=int, default=50_000,
                         metavar="N",
                         help="checkpoint + compact the WAL every N logged "
                              "events (0 disables)")
    cluster.add_argument("--no-restart", action="store_true",
                         help="do not respawn crashed replicas")
    cluster.add_argument("--metrics-port", type=int, default=None, metavar="P",
                         help="also serve router Prometheus text metrics over "
                              "HTTP on this port (0 = ephemeral)")
    cluster.add_argument("--history", default=None, metavar="PATH",
                         help="record router metrics history to this NDJSON "
                              "file (enables the history op / `repro dash`)")
    cluster.add_argument("--history-interval", type=float, default=5.0,
                         metavar="S", help="seconds between history samples "
                                           "(default 5)")
    cluster.add_argument("--slo", default=None, metavar="RULES",
                         help="enable burn-rate alerting: 'default' for the "
                              "built-in router rules, or a JSON rules file")

    top = sub.add_parser(
        "top",
        help="live stats of a running server or cluster (like top(1))",
    )
    top.add_argument("--host", default="127.0.0.1", help="server address")
    top.add_argument("--port", type=int, default=8355, help="server port")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="seconds between refreshes (default 2)")
    top.add_argument("--count", type=int, default=None, metavar="N",
                     help="stop after N refreshes (default: until Ctrl-C)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (same as --count 1)")
    top.add_argument("--watch", type=float, default=None, metavar="S",
                     help="clear the screen and redraw in place every S "
                          "seconds (instead of appending frames)")

    dash = sub.add_parser(
        "dash",
        help="live dashboard: metric sparklines + SLO alerts of a running "
             "server or cluster",
    )
    dash.add_argument("--host", default="127.0.0.1", help="server address")
    dash.add_argument("--port", type=int, default=8355, help="server port")
    dash.add_argument("--interval", type=float, default=2.0, metavar="S",
                      help="seconds between refreshes (default 2)")
    dash.add_argument("--count", type=int, default=None, metavar="N",
                      help="stop after N refreshes (default: until Ctrl-C)")
    dash.add_argument("--once", action="store_true",
                      help="print one frame and exit (same as --count 1)")
    dash.add_argument("--points", type=int, default=120, metavar="N",
                      help="history points to chart (default 120)")

    profile = sub.add_parser(
        "profile",
        help="sampling profiler of a running server: phase attribution + "
             "folded stacks (server must run with REPRO_PROFILE=1)",
    )
    profile.add_argument("--host", default="127.0.0.1", help="server address")
    profile.add_argument("--port", type=int, default=8355, help="server port")
    profile.add_argument("--action", default="dump",
                         choices=("dump", "start", "stop", "reset"),
                         help="profiler action (default: dump)")
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="write flamegraph-compatible folded stacks to "
                              "PATH ('-' for stdout)")
    profile.add_argument("--top", type=int, default=5, metavar="N",
                         help="hottest stacks to print inline (default 5)")

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (reprolint): lock "
             "discipline, frozen snapshots, async hygiene, protocol "
             "drift, structured logs, env knobs",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or dirs to lint (default: src/repro)")
    lint.add_argument("--root", default=".",
                      help="repo root findings are relative to (default: cwd)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default: text)")
    lint.add_argument("--select", metavar="RULES",
                      help="comma-separated rule ids (default: all)")
    lint.add_argument("--baseline", metavar="PATH",
                      help="baseline file (default: tools/reprolint-baseline"
                           ".json under --root, if present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--update-baseline", action="store_true",
                      help="write current findings to the baseline and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")

    knobs = sub.add_parser(
        "knobs",
        help="list every REPRO_* tuning knob (registry, defaults, "
             "current values)",
    )
    knobs.add_argument("--format", choices=("table", "json", "markdown"),
                       default="table",
                       help="output format (default: table; markdown is the "
                            "README 'Tuning knobs' section)")
    return parser


def _cmd_build(args) -> int:
    from repro.core.dynamic import DynamicHCL
    from repro.graph.io import read_edge_list
    from repro.utils.serialization import save_oracle

    graph = read_edge_list(args.edge_list)
    print(f"loaded |V|={graph.num_vertices:,} |E|={graph.num_edges:,} "
          f"from {args.edge_list}")
    oracle = DynamicHCL.build(
        graph,
        num_landmarks=min(args.landmarks, graph.num_vertices),
        strategy=args.strategy,
        rng=args.seed,
        construction="csr" if args.csr else "python",
    )
    save_oracle(oracle, args.out)
    print(f"built |R|={len(oracle.landmarks)} size(L)={oracle.label_entries:,} "
          f"entries -> {args.out}")
    return 0


def _load(path):
    from repro.utils.serialization import load_oracle

    return load_oracle(path)


def _cmd_query(args) -> int:
    distance = _load(args.oracle).query(args.u, args.v)
    print("unreachable" if distance == float("inf") else int(distance))
    return 0


def _cmd_path(args) -> int:
    path = _load(args.oracle).shortest_path(args.u, args.v)
    if path is None:
        print("unreachable")
    else:
        print(" -> ".join(str(v) for v in path))
    return 0


def _cmd_insert(args) -> int:
    from repro.utils.serialization import save_oracle

    oracle = _load(args.oracle)
    stats = oracle.insert_edge(args.u, args.v)
    out = args.out or args.oracle
    save_oracle(oracle, out)
    print(f"inserted ({args.u}, {args.v}); affected {stats.affected_union} "
          f"vertices; size(L)={oracle.label_entries:,} -> {out}")
    return 0


def _cmd_delete(args) -> int:
    from repro.utils.serialization import save_oracle

    oracle = _load(args.oracle)
    stats = oracle.remove_edge(args.u, args.v)
    out = args.out or args.oracle
    save_oracle(oracle, out)
    print(f"deleted ({args.u}, {args.v}); affected {stats.affected_union} "
          f"vertices; size(L)={oracle.label_entries:,} -> {out}")
    return 0


def _cmd_stats(args) -> int:
    from repro.analysis import highway_stats, label_stats, landmark_entry_counts

    oracle = _load(args.oracle)
    graph = oracle.graph
    lstats = label_stats(oracle.labelling, graph.num_vertices)
    hstats = highway_stats(oracle.labelling)
    counts = landmark_entry_counts(oracle.labelling)
    print(f"graph      |V|={graph.num_vertices:,} |E|={graph.num_edges:,} "
          f"avg deg={graph.average_degree():.2f}")
    print(f"landmarks  |R|={hstats.num_landmarks} "
          f"highway connectivity={hstats.connectivity:.0%} "
          f"mean highway dist={hstats.mean_distance:.2f}")
    print(f"labels     size(L)={lstats.total_entries:,} entries "
          f"({lstats.size_bytes:,} bytes)  l={lstats.mean_label_size:.2f} "
          f"max={lstats.max_label_size}")
    busiest = max(counts, key=counts.get)
    idlest = min(counts, key=counts.get)
    print(f"coverage   busiest landmark {busiest} ({counts[busiest]:,} entries), "
          f"idlest {idlest} ({counts[idlest]:,})")
    return 0


def _resolve_slos(spec: str | None, role: str):
    """``--slo`` value -> rule list: ``None`` stays off, ``default`` is
    the built-in set for the role, anything else is a JSON rules file."""
    if spec is None:
        return None
    from repro.obs.slo import default_slos, load_slos

    if spec == "default":
        return default_slos(role)
    return load_slos(spec)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serving.server import OracleServer

    server = OracleServer.from_file(
        args.oracle,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        metrics_port=args.metrics_port,
        history_path=args.history,
        history_interval=args.history_interval,
        slos=_resolve_slos(args.slo, "server"),
    )
    oracle = server.service.oracle
    print(f"loaded |V|={oracle.graph.num_vertices:,} "
          f"|E|={oracle.graph.num_edges:,} |R|={len(oracle.landmarks)} "
          f"size(L)={oracle.label_entries:,} from {args.oracle}")

    def _started(srv) -> None:
        host, port = srv.address
        print(f"serving on {host}:{port} "
              f"(newline-delimited JSON; ops: query, query_many, path, "
              f"update, updates, stats, metrics, spans, profile, history, "
              f"alerts, snapshot, ping; SIGTERM/SIGINT drain and stop)")
        if srv.metrics_address is not None:
            mhost, mport = srv.metrics_address
            print(f"metrics on http://{mhost}:{mport}/ (Prometheus text)")

    try:
        # run() serves until SIGTERM/SIGINT, then drains in-flight
        # requests and stops the writer before returning.
        asyncio.run(server.run(on_started=_started))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("interrupted; shutting down")
    return 0


def _cmd_serve_cluster(args) -> int:
    import asyncio

    from repro.cluster.supervisor import ClusterSupervisor

    cluster_dir = args.cluster_dir or f"{args.oracle}.cluster"
    router_kwargs = {}
    if args.metrics_port is not None:
        router_kwargs["metrics_port"] = args.metrics_port
    if args.history is not None:
        router_kwargs["history_path"] = args.history
        router_kwargs["history_interval"] = args.history_interval
    slos = _resolve_slos(args.slo, "router")
    if slos is not None:
        router_kwargs["slos"] = slos
        router_kwargs.setdefault("history_interval", args.history_interval)
    supervisor = ClusterSupervisor(
        args.oracle,
        cluster_dir=cluster_dir,
        replicas=args.replicas,
        shards=args.shards,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        fsync=args.fsync,
        restart=not args.no_restart,
        compact_every=args.compact_every or None,
        router_kwargs=router_kwargs,
    )

    def _started(sup) -> None:
        host, port = sup.address
        topology = (f"{args.shards} shard group(s) x {args.replicas} "
                    f"replica(s)" if args.shards > 1
                    else f"{args.replicas} replica(s)")
        print(f"cluster router on {host}:{port} with {topology}; "
              f"WAL in {cluster_dir} (fsync={args.fsync})")
        if sup.router.metrics_address is not None:
            mhost, mport = sup.router.metrics_address
            print(f"metrics on http://{mhost}:{mport}/ (Prometheus text)")
        for name, worker in sorted(sup.workers_by_name.items()):
            print(f"  replica {name}: pid={worker.process.pid} "
                  f"addr={worker.address}")
        print("same protocol as `serve`; updates return an `epoch` usable "
              "as `min_epoch` for read-your-writes; SIGTERM/SIGINT drain "
              "and stop")

    try:
        asyncio.run(supervisor.run(on_started=_started))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("interrupted; shutting down")
    return 0


def _fmt_summary(summary: dict | None) -> str:
    """One line for a latency summary (queries/updates sub-dict)."""
    if not summary or not summary.get("count"):
        return "n=0"
    parts = [f"n={summary['count']:,}"]
    if summary.get("qps"):
        parts.append(f"qps={summary['qps']:,}")
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        if summary.get(key) is not None:
            parts.append(f"{key[:-3]}={summary[key]:.3g}ms")
    if summary.get("merge"):
        parts.append(f"merge={summary['merge']}")
    return " ".join(parts)


def _fmt_brief(brief: dict | None, unit: str = "") -> str:
    """One line for a ``_hist_brief`` dict (phases/aff sub-dicts)."""
    if not brief or not brief.get("count"):
        return "n=0"
    parts = [f"n={brief['count']:,}", f"total={brief['total']:,}{unit}"]
    for key in ("p50", "p99"):
        if brief.get(key) is not None:
            parts.append(f"{key}={brief[key]:,}{unit}")
    return " ".join(parts)


def format_top(stats: dict) -> str:
    """Render one `repro top` frame from a ``stats`` response — pure
    (testable) string building; works for both a single ``serve`` node and
    a ``serve-cluster`` router."""
    lines: list[str] = []
    if stats.get("role") == "router":
        wal = stats.get("wal", {})
        growth = wal.get("wal_growth_bytes_per_s")
        lines.append(
            f"cluster   log head={stats['log_head']:,} "
            f"base={stats['log_base']:,} "
            f"wal={wal.get('segments', 0)} segs/{wal.get('bytes', 0):,}B "
            f"fsync={stats.get('fsync')}"
            + (f" growth={growth:,.0f}B/s" if growth is not None else "")
        )
        lines.append(
            f"router    reads={stats.get('reads_routed', 0):,} "
            f"writes={stats.get('writes_appended', 0):,} "
            f"fanout_batches={stats.get('fanout_batches', 0):,}"
        )
        router = stats.get("router", {})
        lines.append(f"  reads   {_fmt_summary(router.get('queries'))}")
        lines.append(f"  appends {_fmt_summary(router.get('updates'))}")
        aggregate = stats.get("aggregate", {})
        lines.append(
            f"cluster-wide  applied={aggregate.get('events_applied', 0):,} "
            f"rejected={aggregate.get('events_rejected', 0):,} "
            f"snapshots={aggregate.get('snapshots_published', 0):,}"
        )
        lines.append(f"  queries {_fmt_summary(aggregate.get('queries'))}")
        lines.append(f"  updates {_fmt_summary(aggregate.get('updates'))}")
        for index in sorted(stats.get("shards") or {}, key=int):
            group = stats["shards"][index]
            lag = group.get("lag")
            lines.append(
                f"shard s{index}   healthy={group.get('healthy', 0)}/"
                f"{group.get('replicas', 0)} "
                f"acked={group.get('acked_seq', 0):,} "
                f"lag={'?' if lag is None else f'{lag:,}'} "
                f"rss_max={group.get('rss_kb_max', 0):,}KiB"
            )
        sharded = stats.get("num_shards", 1) > 1
        for name in sorted(stats.get("replicas", {})):
            entry = stats["replicas"][name]
            health = "healthy" if entry.get("healthy") else "UNHEALTHY"
            lag = entry.get("lag")
            lines.append(
                f"replica {name}  "
                + (f"shard=s{entry.get('shard')} " if sharded else "")
                + f"{health} "
                f"acked={entry.get('acked_seq', 0):,} "
                f"lag={'?' if lag is None else f'{lag:,}'}"
            )
            service = entry.get("service")
            if service:
                lines.append(
                    f"  epoch={service.get('epoch', 0):,} "
                    f"pending={service.get('pending', 0):,} "
                    f"queries[{_fmt_summary(service.get('queries'))}]"
                )
        return "\n".join(lines)

    lines.append(
        f"oracle    epoch={stats.get('epoch', 0):,} "
        f"|V|={stats.get('num_vertices', 0):,} "
        f"|E|={stats.get('num_edges', 0):,} "
        f"size(L)={stats.get('label_entries', 0):,}"
    )
    degraded = stats.get("degraded")
    lines.append(
        f"writer    pending={stats.get('pending', 0):,} "
        f"running={stats.get('running')}"
        + (f" DEGRADED: {degraded}" if degraded else "")
    )
    lines.append(
        f"events    applied={stats.get('events_applied', 0):,} "
        f"rejected={stats.get('events_rejected', 0):,} "
        f"batches(insert={stats.get('insert_batches', 0):,} "
        f"mixed={stats.get('mixed_batches', 0):,}) "
        f"snapshots={stats.get('snapshots_published', 0):,}"
    )
    lines.append(f"queries   {_fmt_summary(stats.get('queries'))}")
    lines.append(f"updates   {_fmt_summary(stats.get('updates'))}")
    for name, brief in (stats.get("phases") or {}).items():
        lines.append(f"  {name:<8}{_fmt_brief(brief, 'ms')}")
    aff = stats.get("aff")
    if aff and aff.get("count"):
        lines.append(f"aff/batch {_fmt_brief(aff)}")
    return "\n".join(lines)


#: ANSI clear-screen + cursor-home, the ``--watch`` redraw prefix.
_CLEAR = "\x1b[2J\x1b[H"


def _cmd_top(args) -> int:
    import time

    from repro.serving.client import ServingClient

    count = 1 if args.once else args.count
    watch = getattr(args, "watch", None)
    interval = watch if watch is not None else args.interval
    shown = 0
    while True:
        try:
            with ServingClient(args.host, args.port) as client:
                stats = client.stats()
        except OSError as exc:
            raise ReproError(
                f"cannot reach {args.host}:{args.port}: {exc}"
            ) from exc
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        if watch is not None:
            print(_CLEAR, end="")
        print(f"--- {args.host}:{args.port} "
              f"at {time.strftime('%H:%M:%S')} ---")
        print(format_top(stats))
        shown += 1
        if count is not None and shown >= count:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


_SPARK_CHARS = "▁▂▃▄▅▆▇█"
#: Dashboard row order; history keys not listed here chart after these,
#: alphabetically.
_DASH_PREFERRED = (
    "qps",
    "query_p50_ms",
    "query_p99_ms",
    "error_rate",
    "pending",
    "max_lag",
    "healthy_replicas",
    "wal_bytes",
    "wal_growth_bytes_per_s",
    "rss_kb",
)


def sparkline(values, width: int = 48) -> str:
    """Unicode sparkline of the last ``width`` values (min-max scaled;
    non-numeric/missing samples render as spaces) — pure and testable.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    tail = list(values)[-width:]
    numeric = [
        v
        for v in tail
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    if not numeric:
        return " " * len(tail)
    lo, hi = min(numeric), max(numeric)
    span = hi - lo
    chars = []
    for v in tail:
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_CHARS[0])
        else:
            index = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
    return "".join(chars)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}"
    return f"{value:,}"


def format_dash(points: list[dict], alerts: dict | None = None,
                width: int = 48) -> str:
    """Render one ``repro dash`` frame from history points and an
    ``alerts`` response — pure (testable) string building."""
    lines: list[str] = []
    if not points:
        lines.append("history   (no points yet)")
    else:
        span_s = points[-1].get("ts", 0) - points[0].get("ts", 0)
        lines.append(f"history   n={len(points)} span={span_s:,.0f}s")
        keys = [k for k in _DASH_PREFERRED if any(k in p for p in points)]
        keys += sorted(
            {
                k
                for p in points
                for k, v in p.items()
                if k != "ts"
                and k not in keys
                and isinstance(v, (int, float))
                and not isinstance(v, bool)
            }
        )
        for key in keys:
            series = [p.get(key) for p in points]
            last = next((v for v in reversed(series) if v is not None), None)
            lines.append(
                f"{key:<24}{sparkline(series, width)}"
                + (f"  {_fmt_value(last)}" if last is not None else "")
            )
    evaluations = (alerts or {}).get("evaluations") or []
    for ev in evaluations:
        status = "FIRING" if ev.get("firing") else "ok    "
        lines.append(
            f"slo {status} {ev.get('slo', '?'):<16}"
            f"burn={ev.get('burn', 0):,.2f} "
            f"({ev.get('metric')} {ev.get('direction')} "
            f"{_fmt_value(ev.get('objective'))})"
        )
    if alerts is not None and not evaluations:
        slos = alerts.get("slos") or []
        lines.append(
            f"slo       {len(slos)} rule(s), no evaluations yet"
            if slos
            else "slo       (none configured)"
        )
    return "\n".join(lines)


def _dash_sample(stats: dict) -> dict:
    """Client-side fallback sample, synthesized from the ``stats`` op for
    servers running without a history recorder."""
    import time

    point: dict = {"ts": round(time.time(), 3)}
    if stats.get("role") == "router":
        queries = (stats.get("router") or {}).get("queries") or {}
        wal = stats.get("wal") or {}
        replicas = (stats.get("replicas") or {}).values()
        lags = [e.get("lag") for e in replicas if e.get("lag") is not None]
        point.update(
            qps=queries.get("qps"),
            query_p99_ms=queries.get("p99_ms"),
            max_lag=max(lags, default=0),
            healthy_replicas=sum(1 for e in replicas if e.get("healthy")),
            wal_bytes=wal.get("bytes"),
            wal_growth_bytes_per_s=wal.get("wal_growth_bytes_per_s"),
        )
    else:
        queries = stats.get("queries") or {}
        point.update(
            qps=queries.get("qps"),
            query_p50_ms=queries.get("p50_ms"),
            query_p99_ms=queries.get("p99_ms"),
            pending=stats.get("pending"),
            events_applied=stats.get("events_applied"),
        )
    return point


def _cmd_dash(args) -> int:
    import time

    from repro.serving.client import ServingClient

    count = 1 if args.once else args.count
    #: Fallback buffer when the server records no history of its own.
    local: list[dict] = []
    shown = 0
    while True:
        try:
            with ServingClient(args.host, args.port) as client:
                alerts = None
                try:
                    response = client.history(limit=args.points)
                    alerts = client.alerts()
                except ReproError:
                    # Pre-§13 server: no history/alerts ops at all.
                    response = {"points": [], "recording": False}
                points = response.get("points") or []
                if not response.get("recording"):
                    local.append(_dash_sample(client.stats()))
                    del local[: -args.points]
                    points = list(local)
        except OSError as exc:
            raise ReproError(
                f"cannot reach {args.host}:{args.port}: {exc}"
            ) from exc
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        frame = format_dash(points, alerts)
        if count != 1:
            print(_CLEAR, end="")
        print(f"--- {args.host}:{args.port} "
              f"at {time.strftime('%H:%M:%S')} ---")
        print(frame)
        shown += 1
        if count is not None and shown >= count:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def _cmd_profile(args) -> int:
    from repro.serving.client import ServingClient

    want_folded = args.action in ("dump", "stop")
    try:
        with ServingClient(args.host, args.port) as client:
            response = client.profile(action=args.action, folded=want_folded)
    except OSError as exc:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {exc}"
        ) from exc
    prof = response["profile"]
    print(f"profiler  running={prof.get('running')} "
          f"enabled={prof.get('enabled')} "
          f"interval={prof.get('interval_ms')}ms "
          f"samples={prof.get('samples', 0):,} "
          f"distinct={prof.get('distinct_stacks', 0):,} "
          f"elapsed={prof.get('elapsed_s', 0):,.1f}s")
    phases = prof.get("phases") or {}
    for phase, entry in sorted(
        phases.items(), key=lambda kv: -kv[1]["samples"]
    ):
        print(f"  {phase:<10}{entry['samples']:>8,}  {entry['pct']:5.1f}%")
    folded = response.get("folded")
    if not folded:
        if want_folded and not prof.get("samples"):
            print("no samples; start the server with REPRO_PROFILE=1 "
                  "(or send action=start) and apply some load")
        return 0
    if args.folded == "-":
        print(folded, end="")
    elif args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(folded)
        print(f"folded stacks -> {args.folded}")
    elif args.top > 0:
        print(f"hottest {args.top} stack(s):")
        for line in folded.splitlines()[: args.top]:
            print(f"  {line}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = list(args.paths)
    argv += ["--root", args.root, "--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_knobs(args) -> int:
    import json as _json

    from repro import knobs as _knobs

    if args.format == "markdown":
        print(_knobs.render_table())
        return 0
    rows = _knobs.current_values()
    if args.format == "json":
        print(_json.dumps(rows, indent=2, default=str))
        return 0
    width = max(len(r["name"]) for r in rows)
    for row in rows:
        default = "(unset)" if row["default"] is None else repr(row["default"])
        marker = "*" if row["set"] else " "
        print(f"{marker} {row['name']:<{width}}  default={default:<12} "
              f"value={row['value']!r}")
    print("\n(* = set in the environment; see README 'Tuning knobs')")
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "query": _cmd_query,
    "path": _cmd_path,
    "insert": _cmd_insert,
    "delete": _cmd_delete,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "serve-cluster": _cmd_serve_cluster,
    "top": _cmd_top,
    "dash": _cmd_dash,
    "profile": _cmd_profile,
    "lint": _cmd_lint,
    "knobs": _cmd_knobs,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
