"""The 12 dataset stand-ins for the paper's Table 2 networks.

The paper evaluates on 12 real networks from 1.7M to 1.7B vertices.  Those
inputs (and the hardware to hold them) are unavailable here, so each is
replaced by a *topology-class-matched* synthetic stand-in (docs/DESIGN.md §3):

* social networks  → preferential attachment (Barabási–Albert) or the
  Holme–Kim clustered variant: heavy-tailed degrees, small avg distance;
* web graphs       → community-ring graphs: dense "sites" with sparse
  cross-site links, matching the large average distances (7+) of Table 2;
* computer network → Watts–Strogatz small-world.

Per dataset we preserve (i) the topology class, (ii) the *relative* size
ordering, (iii) the *relative* density ordering, and (iv) the avg-distance
regime (small for social, large for web), because those are the properties
the paper's observations hinge on (e.g. "On Indochina and IT, IncHL+
performs relatively worse because these networks have large average
distances").  Absolute scale shrinks to interpreter-feasible sizes.

Profiles: ``smoke`` (tests/CI), ``default`` (benchmarks), ``full`` (longer
runs); select via the ``profile`` argument or ``REPRO_BENCH_PROFILE``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    community_web_graph,
    ensure_connected,
    powerlaw_cluster,
    watts_strogatz,
)

__all__ = ["DatasetSpec", "DATASETS", "build_dataset", "dataset_names", "PROFILES"]

PROFILES = ("smoke", "default", "full")

#: Vertex-count multiplier per profile (edge parameters stay proportional).
_PROFILE_SCALE = {"smoke": 0.1, "default": 1.0, "full": 3.0}


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in dataset: identity, provenance, generator, defaults."""

    name: str
    network_class: str  # "comp" | "social" | "web"
    stands_in_for: str  # the paper's dataset name
    paper_vertices: str  # Table 2 |V| (display form, e.g. "1.7M")
    paper_edges: str  # Table 2 |E|
    paper_avg_degree: float  # Table 2 avg. deg
    paper_avg_distance: float  # Table 2 avg. dist
    base_vertices: int  # |V| at the default profile
    num_landmarks: int  # |R| used by Table 1 (paper: 20; Clueweb09: 150)
    builder: Callable[[int, random.Random], DynamicGraph]
    pll_feasible: bool  # whether IncPLL is built (paper: 5 of 12 datasets)

    def build(self, profile: str = "default", seed: int = 2021) -> DynamicGraph:
        """Instantiate the stand-in graph for ``profile`` (deterministic)."""
        if profile not in _PROFILE_SCALE:
            raise WorkloadError(
                f"unknown profile {profile!r}; expected one of {PROFILES}"
            )
        n = max(64, int(self.base_vertices * _PROFILE_SCALE[profile]))
        rng = random.Random((seed, self.name, profile).__hash__() & 0x7FFFFFFF)
        graph = self.builder(n, rng)
        return ensure_connected(graph, rng=rng)


def _social(attach: int):
    def build(n: int, rng: random.Random) -> DynamicGraph:
        return barabasi_albert(n, attach=attach, rng=rng)

    return build


def _clustered_social(attach: int, triangle_prob: float):
    def build(n: int, rng: random.Random) -> DynamicGraph:
        return powerlaw_cluster(n, attach=attach, triangle_prob=triangle_prob, rng=rng)

    return build


def _small_world(k: int, beta: float):
    def build(n: int, rng: random.Random) -> DynamicGraph:
        return watts_strogatz(n, k=k, beta=beta, rng=rng)

    return build


def _web(num_communities: int, intra_attach: int, inter: int, chords: int):
    def build(n: int, rng: random.Random) -> DynamicGraph:
        community_size = max(intra_attach + 2, n // num_communities)
        return community_web_graph(
            n,
            community_size=community_size,
            intra_attach=intra_attach,
            inter_edges_per_community=inter,
            long_range_edges=chords,
            rng=rng,
        )

    return build


#: Registry in the paper's Table 2 order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="skitter-s", network_class="comp", stands_in_for="Skitter",
            paper_vertices="1.7M", paper_edges="11M",
            paper_avg_degree=13.081, paper_avg_distance=5.1,
            base_vertices=4000, num_landmarks=20,
            builder=_small_world(k=12, beta=0.12), pll_feasible=True,
        ),
        DatasetSpec(
            name="flickr-s", network_class="social", stands_in_for="Flickr",
            paper_vertices="1.7M", paper_edges="16M",
            paper_avg_degree=18.133, paper_avg_distance=5.3,
            base_vertices=4000, num_landmarks=20,
            builder=_social(attach=9), pll_feasible=True,
        ),
        DatasetSpec(
            name="hollywood-s", network_class="social", stands_in_for="Hollywood",
            paper_vertices="1.1M", paper_edges="114M",
            paper_avg_degree=98.913, paper_avg_distance=3.9,
            base_vertices=3000, num_landmarks=20,
            builder=_clustered_social(attach=24, triangle_prob=0.4),
            pll_feasible=True,
        ),
        DatasetSpec(
            name="orkut-s", network_class="social", stands_in_for="Orkut",
            paper_vertices="3.1M", paper_edges="117M",
            paper_avg_degree=76.281, paper_avg_distance=4.2,
            base_vertices=6000, num_landmarks=20,
            builder=_social(attach=19), pll_feasible=False,
        ),
        DatasetSpec(
            name="enwiki-s", network_class="social", stands_in_for="Enwiki",
            paper_vertices="4.2M", paper_edges="101M",
            paper_avg_degree=43.746, paper_avg_distance=3.4,
            base_vertices=7000, num_landmarks=20,
            builder=_social(attach=11), pll_feasible=True,
        ),
        DatasetSpec(
            name="livejournal-s", network_class="social", stands_in_for="Livejournal",
            paper_vertices="4.8M", paper_edges="69M",
            paper_avg_degree=17.679, paper_avg_distance=5.6,
            base_vertices=8000, num_landmarks=20,
            builder=_clustered_social(attach=9, triangle_prob=0.2),
            pll_feasible=False,
        ),
        DatasetSpec(
            name="indochina-s", network_class="web", stands_in_for="Indochina",
            paper_vertices="7.4M", paper_edges="194M",
            paper_avg_degree=40.725, paper_avg_distance=7.7,
            base_vertices=9000, num_landmarks=20,
            builder=_web(num_communities=26, intra_attach=8, inter=3, chords=22),
            pll_feasible=True,
        ),
        DatasetSpec(
            name="it-s", network_class="web", stands_in_for="IT",
            paper_vertices="41M", paper_edges="1.2B",
            paper_avg_degree=49.768, paper_avg_distance=7.0,
            base_vertices=14000, num_landmarks=20,
            builder=_web(num_communities=24, intra_attach=12, inter=4, chords=26),
            pll_feasible=False,
        ),
        DatasetSpec(
            name="twitter-s", network_class="social", stands_in_for="Twitter",
            paper_vertices="42M", paper_edges="1.5B",
            paper_avg_degree=57.741, paper_avg_distance=3.6,
            base_vertices=14000, num_landmarks=20,
            builder=_social(attach=14), pll_feasible=False,
        ),
        DatasetSpec(
            name="friendster-s", network_class="social", stands_in_for="Friendster",
            paper_vertices="66M", paper_edges="1.8B",
            paper_avg_degree=55.056, paper_avg_distance=5.0,
            base_vertices=16000, num_landmarks=20,
            builder=_social(attach=13), pll_feasible=False,
        ),
        DatasetSpec(
            name="uk-s", network_class="web", stands_in_for="UK",
            paper_vertices="106M", paper_edges="3.7B",
            paper_avg_degree=62.772, paper_avg_distance=6.9,
            base_vertices=18000, num_landmarks=20,
            builder=_web(num_communities=22, intra_attach=15, inter=4, chords=28),
            pll_feasible=False,
        ),
        DatasetSpec(
            name="clueweb09-s", network_class="web", stands_in_for="Clueweb09",
            paper_vertices="1.7B", paper_edges="7.8B",
            paper_avg_degree=9.27, paper_avg_distance=7.4,
            base_vertices=24000, num_landmarks=60,
            builder=_web(num_communities=28, intra_attach=4, inter=3, chords=40),
            pll_feasible=False,
        ),
    ]
}


def dataset_names() -> list[str]:
    """All registry names in the paper's Table 2 order."""
    return list(DATASETS)


def build_dataset(
    name: str, profile: str = "default", seed: int = 2021
) -> tuple[DatasetSpec, DynamicGraph]:
    """Look up ``name`` and instantiate its graph; returns ``(spec, graph)``.

    >>> spec, graph = build_dataset("skitter-s", profile="smoke")
    >>> spec.stands_in_for
    'Skitter'
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        ) from None
    return spec, spec.build(profile=profile, seed=seed)
