"""Query workloads — Section 6: "we evaluate the average query time with
100,000 randomly sampled pairs of vertices from each network"."""

from __future__ import annotations

import random

from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

__all__ = ["sample_query_pairs"]


def sample_query_pairs(
    graph,
    count: int,
    rng: int | random.Random | None = None,
    distinct_endpoints: bool = True,
) -> list[tuple[int, int]]:
    """``count`` uniformly random vertex pairs (with replacement across
    pairs, as in the paper's methodology).

    >>> from repro.graph.generators import grid_graph
    >>> pairs = sample_query_pairs(grid_graph(4, 4), 5, rng=1)
    >>> len(pairs)
    5
    """
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    rng = ensure_rng(rng)
    vertices = list(graph.vertices())
    if not vertices:
        raise WorkloadError("graph has no vertices")
    if distinct_endpoints and len(vertices) < 2:
        raise WorkloadError("need at least two vertices for distinct pairs")
    pairs = []
    n = len(vertices)
    while len(pairs) < count:
        u = vertices[rng.randrange(n)]
        v = vertices[rng.randrange(n)]
        if distinct_endpoints and u == v:
            continue
        pairs.append((u, v))
    return pairs
