"""Update workloads — Section 6, "Updates and queries".

The paper: "For each network, we randomly sampled 1,000 pairs of vertices
as edge insertions, denoted as EI, where EI ∩ E = ∅".  The sampler below
reproduces that: uniformly random vertex pairs that are not current edges,
not self-loops, and pairwise distinct (they are inserted sequentially, so
each must still be a non-edge when its turn comes).
"""

from __future__ import annotations

import random

from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

__all__ = ["sample_edge_insertions", "sample_vertex_insertions", "held_out_edges"]


def sample_edge_insertions(
    graph,
    count: int,
    rng: int | random.Random | None = None,
    max_attempts_factor: int = 200,
) -> list[tuple[int, int]]:
    """Sample ``count`` distinct non-edges ``EI`` with ``EI ∩ E = ∅``.

    >>> from repro.graph.generators import grid_graph
    >>> edges = sample_edge_insertions(grid_graph(5, 5), 10, rng=0)
    >>> len(edges)
    10
    """
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    rng = ensure_rng(rng)
    vertices = list(graph.vertices())
    n = len(vertices)
    capacity = n * (n - 1) // 2 - graph.num_edges
    if count > capacity:
        raise WorkloadError(
            f"cannot sample {count} non-edges: only {capacity} exist"
        )
    chosen: set[tuple[int, int]] = set()
    sampled: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(count, 1)
    while len(sampled) < count:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"sampling stalled after {attempts} attempts "
                f"({len(sampled)}/{count} found); graph too dense for "
                f"rejection sampling"
            )
        u = vertices[rng.randrange(n)]
        v = vertices[rng.randrange(n)]
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in chosen or graph.has_edge(u, v):
            continue
        chosen.add(key)
        sampled.append(key)
    return sampled


def sample_vertex_insertions(
    graph,
    count: int,
    degree: int,
    rng: int | random.Random | None = None,
) -> list[tuple[int, list[int]]]:
    """Sample ``count`` vertex insertions, each wiring a fresh vertex to
    ``degree`` distinct existing vertices (Section 3's node insertion).

    Returns ``[(new_vertex_id, neighbours), ...]``; ids continue from the
    current maximum so they never collide.
    """
    if degree < 1:
        raise WorkloadError(f"degree must be >= 1, got {degree}")
    if degree > graph.num_vertices:
        raise WorkloadError(
            f"cannot attach {degree} neighbours in a {graph.num_vertices}-vertex graph"
        )
    rng = ensure_rng(rng)
    vertices = list(graph.vertices())
    next_id = graph.max_vertex_id() + 1
    insertions = []
    for i in range(count):
        neighbors = rng.sample(vertices, degree)
        insertions.append((next_id + i, neighbors))
    return insertions


def held_out_edges(
    graph,
    count: int,
    rng: int | random.Random | None = None,
) -> list[tuple[int, int]]:
    """Remove ``count`` random edges from ``graph`` and return them.

    Produces a "replay" workload: build the labelling on the shrunken graph,
    then re-insert the held-out (real!) edges one by one.  This is the
    realistic alternative to random-pair insertion and is used by the
    ablation experiments.
    """
    if count > graph.num_edges:
        raise WorkloadError(
            f"cannot hold out {count} of {graph.num_edges} edges"
        )
    rng = ensure_rng(rng)
    edges = list(graph.edges())
    held = rng.sample(edges, count)
    for u, v in held:
        graph.remove_edge(u, v)
    return held
