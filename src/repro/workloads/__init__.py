"""Workloads: update streams, query streams, and the dataset registry."""

from repro.workloads.updates import (
    sample_edge_insertions,
    sample_vertex_insertions,
    held_out_edges,
)
from repro.workloads.queries import sample_query_pairs
from repro.workloads.datasets import (
    DATASETS,
    DatasetSpec,
    build_dataset,
    dataset_names,
)
from repro.workloads.streams import (
    ReplayRecord,
    UpdateEvent,
    densification_stream,
    insertion_stream,
    mixed_stream,
    replay,
    sliding_window_stream,
    split_events,
)

__all__ = [
    "sample_edge_insertions",
    "sample_vertex_insertions",
    "held_out_edges",
    "sample_query_pairs",
    "DATASETS",
    "DatasetSpec",
    "build_dataset",
    "dataset_names",
    "UpdateEvent",
    "ReplayRecord",
    "insertion_stream",
    "mixed_stream",
    "densification_stream",
    "sliding_window_stream",
    "replay",
    "split_events",
]
