"""Typed update streams: mixed insert/delete workloads and replay.

The paper evaluates pure insertion streams (Section 6, "Updates and
queries"); its conclusion names decremental updates as future work.  This
module generates the richer workloads the extensions need:

* :func:`insertion_stream` — the paper's workload as events;
* :func:`mixed_stream` — interleaved insertions and deletions at a
  configurable ratio (deletions pick live edges, insertions pick live
  non-edges, both against the *evolving* graph);
* :func:`densification_stream` — preferential-attachment-biased
  insertions, modelling the densification law the paper cites for why
  real networks mainly grow [Leskovec et al., TKDD 2007];
* :func:`sliding_window_stream` — each arrival inserts a fresh edge and
  evicts the oldest live one, the bounded-memory streaming model;
* :func:`replay` — drive any oracle with a stream, timing each event.

All generators are deterministic under a seed and validate against the
provided graph *simulation* so that a generated stream is always
applicable in order (no duplicate inserts, no deletes of absent edges).
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from time import perf_counter

from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

__all__ = [
    "UpdateEvent",
    "ReplayRecord",
    "insertion_stream",
    "mixed_stream",
    "densification_stream",
    "sliding_window_stream",
    "replay",
    "split_events",
]

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class UpdateEvent:
    """One update: ``kind`` is ``"insert"`` or ``"delete"``."""

    kind: str
    edge: tuple[int, int]

    def __post_init__(self) -> None:
        if self.kind not in (INSERT, DELETE):
            raise WorkloadError(f"unknown event kind {self.kind!r}")

    @property
    def is_insert(self) -> bool:
        """Whether this event is an insertion."""
        return self.kind == INSERT


@dataclass(frozen=True)
class ReplayRecord:
    """Timing of one replayed event."""

    event: UpdateEvent
    seconds: float


def _sample_non_edge(
    graph_sim: "_GraphSimulation", rng: random.Random, max_tries: int = 200
) -> tuple[int, int] | None:
    vertices = graph_sim.vertex_list
    for _ in range(max_tries):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u != v and not graph_sim.has_edge(u, v):
            return (u, v) if u < v else (v, u)
    return None


class _GraphSimulation:
    """A cheap edge-set mirror of the evolving graph.

    Stream generation must not mutate the caller's graph, so the
    generators evolve this simulation instead and emit events the real
    graph can replay in order.
    """

    def __init__(self, graph) -> None:
        self.vertex_list = sorted(graph.vertices())
        self.edges = {self._key(u, v) for u, v in graph.edges()}
        self.degrees = {v: graph.degree(v) for v in self.vertex_list}

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def has_edge(self, u: int, v: int) -> bool:
        return self._key(u, v) in self.edges

    def insert(self, u: int, v: int) -> None:
        self.edges.add(self._key(u, v))
        self.degrees[u] += 1
        self.degrees[v] += 1

    def delete(self, u: int, v: int) -> None:
        self.edges.remove(self._key(u, v))
        self.degrees[u] -= 1
        self.degrees[v] -= 1


def insertion_stream(
    graph, count: int, rng: int | random.Random | None = None
) -> list[UpdateEvent]:
    """``count`` edge-insertion events with ``EI ∩ E = ∅`` (Section 6).

    Later insertions avoid earlier ones as well as the original edges, so
    the stream replays without duplicates.
    """
    rng = ensure_rng(rng)
    sim = _GraphSimulation(graph)
    events: list[UpdateEvent] = []
    for _ in range(count):
        edge = _sample_non_edge(sim, rng)
        if edge is None:
            raise WorkloadError(
                f"graph too dense to sample {count} distinct non-edges"
            )
        sim.insert(*edge)
        events.append(UpdateEvent(INSERT, edge))
    return events


def mixed_stream(
    graph,
    count: int,
    insert_ratio: float = 0.8,
    rng: int | random.Random | None = None,
) -> list[UpdateEvent]:
    """Interleaved insert/delete events against the evolving graph.

    ``insert_ratio`` is the probability of an insertion per event (the
    paper observes real networks are insertion-dominated, so the default
    is biased accordingly).  Deletions never remove an original-graph
    bridge blindly — they pick uniformly among *live* edges, which may
    disconnect the graph; that is intended, the decremental algorithms
    must handle it.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise WorkloadError(f"insert_ratio must be in [0, 1], got {insert_ratio}")
    rng = ensure_rng(rng)
    sim = _GraphSimulation(graph)
    events: list[UpdateEvent] = []
    for _ in range(count):
        do_insert = rng.random() < insert_ratio or not sim.edges
        if do_insert:
            edge = _sample_non_edge(sim, rng)
            if edge is None:
                do_insert = False  # dense graph: fall back to a deletion
        if do_insert:
            sim.insert(*edge)
            events.append(UpdateEvent(INSERT, edge))
        else:
            if not sim.edges:
                raise WorkloadError("no edges left to delete")
            edge = rng.choice(sorted(sim.edges))
            sim.delete(*edge)
            events.append(UpdateEvent(DELETE, edge))
    return events


def densification_stream(
    graph, count: int, rng: int | random.Random | None = None
) -> list[UpdateEvent]:
    """Degree-biased insertion events (densification / rich-get-richer).

    Each event picks both endpoints with probability proportional to
    their *current* degree plus one, then retries until the pair is a
    non-edge — a discrete-time approximation of the densification power
    law on a fixed vertex set.
    """
    rng = ensure_rng(rng)
    sim = _GraphSimulation(graph)
    events: list[UpdateEvent] = []

    def weighted_vertex() -> int:
        total = sum(sim.degrees[v] + 1 for v in sim.vertex_list)
        target = rng.random() * total
        acc = 0.0
        for v in sim.vertex_list:
            acc += sim.degrees[v] + 1
            if acc >= target:
                return v
        return sim.vertex_list[-1]

    for _ in range(count):
        edge = None
        for _ in range(200):
            u, v = weighted_vertex(), weighted_vertex()
            if u != v and not sim.has_edge(u, v):
                edge = (u, v) if u < v else (v, u)
                break
        if edge is None:
            raise WorkloadError(
                f"graph too dense to sample {count} degree-biased non-edges"
            )
        sim.insert(*edge)
        events.append(UpdateEvent(INSERT, edge))
    return events


def sliding_window_stream(
    graph,
    count: int,
    window: int | None = None,
    rng: int | random.Random | None = None,
) -> list[UpdateEvent]:
    """Insert a fresh edge per step; evict the oldest once ``window`` is full.

    The classic bounded-memory streaming model: the first ``window``
    events are pure insertions, after which every step emits an insert
    *and* a delete (the oldest live inserted edge).  ``window`` defaults
    to ``count // 2``.
    """
    if window is None:
        window = max(1, count // 2)
    if window < 1:
        raise WorkloadError(f"window must be >= 1, got {window}")
    rng = ensure_rng(rng)
    sim = _GraphSimulation(graph)
    live: deque[tuple[int, int]] = deque()
    events: list[UpdateEvent] = []
    for _ in range(count):
        edge = _sample_non_edge(sim, rng)
        if edge is None:
            raise WorkloadError("graph too dense for a sliding-window stream")
        sim.insert(*edge)
        live.append(edge)
        events.append(UpdateEvent(INSERT, edge))
        if len(live) > window:
            old = live.popleft()
            sim.delete(*old)
            events.append(UpdateEvent(DELETE, old))
    return events


def replay(oracle, events: Iterable[UpdateEvent]) -> list[ReplayRecord]:
    """Apply a stream to an oracle, timing each event.

    The oracle must expose ``insert_edge(u, v)`` and ``remove_edge(u, v)``
    (:class:`~repro.core.dynamic.DynamicHCL` and the baseline oracles do).
    """
    records: list[ReplayRecord] = []
    for event in events:
        u, v = event.edge
        start = perf_counter()
        if event.is_insert:
            oracle.insert_edge(u, v)
        else:
            oracle.remove_edge(u, v)
        records.append(ReplayRecord(event, perf_counter() - start))
    return records


def split_events(
    events: Sequence[UpdateEvent],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Partition a stream into (insertions, deletions) edge lists."""
    inserts = [e.edge for e in events if e.is_insert]
    deletes = [e.edge for e in events if not e.is_insert]
    return inserts, deletes
