"""A dynamic, undirected, unweighted simple graph.

This is the substrate the paper evaluates on: undirected, unweighted graphs
subject to *edge insertions* and *vertex insertions* (Section 3).  Edge
removal is also provided because the reproduction implements the paper's
stated future work (decremental updates) as an extension.

Design notes
------------
Vertices are non-negative integers.  Adjacency is a ``dict[int, list[int]]``
— lists iterate faster than sets in CPython, which matters because every
algorithm in this library is BFS-bound.  Hot loops may obtain the raw
adjacency mapping via :meth:`DynamicGraph.adjacency`; it must be treated as
read-only.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """An undirected, unweighted simple graph supporting online updates.

    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.add_edge(0, 2)
    >>> sorted(g.neighbors(0))
    [1, 2]
    """

    __slots__ = ("_adj", "_num_edges", "_shared")

    def __init__(self, vertices: Iterable[int] = ()) -> None:
        self._adj: dict[int, list[int]] = {}
        self._num_edges = 0
        # Vertices whose neighbour lists are shared with live snapshots
        # (see :meth:`snapshot_adjacency`); ``None`` until first snapshot.
        self._shared: set[int] | None = None
        for v in vertices:
            self.add_vertex(v)

    def _cow(self, v: int) -> None:
        """Detach ``v``'s neighbour list from any live snapshot."""
        shared = self._shared
        if shared is not None and v in shared:
            self._adj[v] = list(self._adj[v])
            shared.discard(v)

    def snapshot_adjacency(self) -> dict[int, list[int]]:
        """Freeze hook for :mod:`repro.serving.snapshot`.

        Returns a *shallow* copy of the adjacency mapping whose neighbour
        lists are shared copy-on-write: later updates through this graph
        copy an affected list before mutating it, so the returned mapping
        is a stable point-in-time view at pointer-copy cost.
        """
        self._shared = set(self._adj)
        return dict(self._adj)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "DynamicGraph":
        """Build a graph from an iterable of edges.

        ``num_vertices`` pre-registers vertices ``0..num_vertices-1`` so that
        isolated vertices survive; otherwise vertices are created on demand.
        Duplicate edges and self-loops raise, as in :meth:`add_edge`.
        """
        graph = cls(range(num_vertices) if num_vertices is not None else ())
        for u, v in edges:
            graph.add_vertex(u)
            graph.add_vertex(v)
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "DynamicGraph":
        """Return an independent deep copy of this graph."""
        clone = DynamicGraph()
        clone._adj = {v: list(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges currently in the graph."""
        return self._num_edges

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a vertex of this graph."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return False
        return v in nbrs

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def vertices(self) -> Iterator[int]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over each undirected edge exactly once, as ``(u, v)`` with
        the endpoint that sorts first reported first."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def neighbors(self, v: int) -> list[int]:
        """Neighbours of ``v``.  The returned list must not be mutated."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFoundError(v) from None

    def adjacency(self) -> dict[int, list[int]]:
        """Raw adjacency mapping for read-only use in hot loops."""
        return self._adj

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> bool:
        """Add an isolated vertex.  Returns ``True`` if it was new.

        Adding an existing vertex is a harmless no-op (so that bulk loaders
        can register endpoints blindly), but non-integral or negative ids
        are rejected to keep array-backed consumers sound.
        """
        if not isinstance(v, int) or isinstance(v, bool):
            raise TypeError(f"vertex ids must be ints, got {v!r}")
        if v < 0:
            raise ValueError(f"vertex ids must be non-negative, got {v}")
        if v in self._adj:
            return False
        self._adj[v] = []
        return True

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)``.

        Mirrors the paper's edge-insertion precondition: both endpoints must
        already exist and the edge must be absent.  Use :meth:`insert_vertex`
        for the paper's vertex-insertion operation.
        """
        if u == v:
            raise SelfLoopError(u)
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        if v in self._adj[u]:
            raise EdgeExistsError(u, v)
        self._cow(u)
        self._cow(v)
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._num_edges += 1

    def insert_vertex(self, v: int, neighbors: Iterable[int]) -> list[tuple[int, int]]:
        """The paper's *vertex insertion*: a new vertex plus edges to existing
        vertices, returned as the list of edge insertions it decomposes into.

        Section 3: "a node insertion is to add a new node into G together
        with a set of edge insertions that connect v to existing vertices".
        """
        neighbor_list = list(neighbors)
        if v in self._adj:
            raise ValueError(
                f"vertex {v!r} already exists; vertex insertion requires a new vertex"
            )
        if v in neighbor_list:
            raise SelfLoopError(v)
        for w in neighbor_list:
            if w not in self._adj:
                raise VertexNotFoundError(w)
        if len(set(neighbor_list)) != len(neighbor_list):
            raise ValueError("duplicate neighbours in vertex insertion")
        self.add_vertex(v)
        inserted = []
        for w in neighbor_list:
            self.add_edge(v, w)
            inserted.append((v, w))
        return inserted

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)`` (decremental extension)."""
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        if v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._cow(u)
        self._cow(v)
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1

    def remove_vertex(self, v: int) -> list[tuple[int, int]]:
        """Remove ``v`` and all incident edges (decremental extension).

        Returns the removed edges as ``(v, neighbour)`` pairs — the
        decomposition mirror of :meth:`insert_vertex`.
        """
        if v not in self._adj:
            raise VertexNotFoundError(v)
        removed = [(v, w) for w in self._adj[v]]
        for w in self._adj[v]:
            self._cow(w)
            self._adj[w].remove(v)
        self._num_edges -= len(removed)
        del self._adj[v]
        if self._shared is not None:
            self._shared.discard(v)
        return removed

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Average vertex degree (``2|E| / |V|``); 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def max_vertex_id(self) -> int:
        """Largest vertex id present; -1 for the empty graph."""
        return max(self._adj, default=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, |E|={self.num_edges})"
        )
