"""A dynamic, undirected graph with positive edge weights.

Supports the paper's Section 5 extension: "Our method can also be easily
extended to handling weighted graphs by using Dijkstra's algorithm instead
of BFSs."  Weights must be strictly positive, matching the paper's
``N+``-valued highway decoding function (we allow positive floats too, which
strictly generalises it).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected simple graph with strictly positive edge weights.

    Adjacency maps each vertex to a list of ``(neighbor, weight)`` pairs.

    >>> g = WeightedGraph.from_edges([(0, 1, 2.5), (1, 2, 1.0)])
    >>> g.weight(0, 1)
    2.5
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, vertices: Iterable[int] = ()) -> None:
        self._adj: dict[int, list[tuple[int, float]]] = {}
        self._num_edges = 0
        for v in vertices:
            self.add_vertex(v)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        num_vertices: int | None = None,
    ) -> "WeightedGraph":
        """Build from ``(u, v, weight)`` triples."""
        graph = cls(range(num_vertices) if num_vertices is not None else ())
        for u, v, w in edges:
            graph.add_vertex(u)
            graph.add_vertex(v)
            graph.add_edge(u, v, w)
        return graph

    def copy(self) -> "WeightedGraph":
        """Independent deep copy of this graph."""
        clone = WeightedGraph()
        clone._adj = {v: list(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) weighted edges."""
        return self._num_edges

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a vertex of this graph."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return False
        return any(w == v for w, _ in nbrs)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate each undirected edge once as ``(u, v, weight)``."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs:
                if u < v:
                    yield (u, v, w)

    def neighbors(self, v: int) -> list[tuple[int, float]]:
        """``(neighbor, weight)`` pairs.  Must not be mutated by callers."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        return len(self.neighbors(v))

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``."""
        for w, weight in self.neighbors(u):
            if w == v:
                return weight
        raise EdgeNotFoundError(u, v)

    def adjacency(self) -> dict[int, list[tuple[int, float]]]:
        """Raw adjacency for read-only use in hot loops."""
        return self._adj

    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> bool:
        """Add an isolated vertex.  Returns ``True`` if it was new."""
        if not isinstance(v, int) or isinstance(v, bool):
            raise TypeError(f"vertex ids must be ints, got {v!r}")
        if v < 0:
            raise ValueError(f"vertex ids must be non-negative, got {v}")
        if v in self._adj:
            return False
        self._adj[v] = []
        return True

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert the undirected edge ``(u, v)`` with the given weight."""
        if u == v:
            raise SelfLoopError(u)
        if not weight > 0:
            raise ValueError(f"edge weights must be positive, got {weight!r}")
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        if self.has_edge(u, v):
            raise EdgeExistsError(u, v)
        self._adj[u].append((v, float(weight)))
        self._adj[v].append((u, float(weight)))
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)``."""
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        before = len(self._adj[u])
        self._adj[u] = [(w, wt) for w, wt in self._adj[u] if w != v]
        if len(self._adj[u]) == before:
            raise EdgeNotFoundError(u, v)
        self._adj[v] = [(w, wt) for w, wt in self._adj[v] if w != u]
        self._num_edges -= 1

    def average_degree(self) -> float:
        """Average vertex degree (``2|E| / |V|``); 0.0 when empty."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, |E|={self.num_edges})"
        )
