"""DynCSR — an incrementally maintainable CSR overlay for the update path.

:class:`~repro.graph.csr.CSRGraph` is deliberately immutable: construction
and ground-truth sweeps snapshot once and read forever.  The update hot
path (IncHL+ find/repair, :mod:`repro.core.inchl_fast`) cannot afford a
full re-snapshot per insertion — ``CSRGraph.from_graph`` is ``O(m)`` while
an update touches ``O(|Λ|)`` vertices — so this module keeps the CSR shape
*valid across insertions*:

* a **base** CSR (``indptr``/``indices``) holding the bulk of the edges,
  with a per-vertex live length (``base_len``) so deletions shrink a row
  in place instead of forcing a re-snapshot;
* a per-vertex **delta** adjacency (small Python lists, plus a numpy
  ``delta_count`` array so the no-delta common case costs one vectorized
  mask) absorbing insertions;
* periodic **compaction** folding the delta back into a fresh base once it
  grows past a fraction of the base, so gather stays ``O(frontier degree)``
  amortized and the delta never dominates.

Edge deletion (:meth:`remove_edge`) is *swap-removal*: the victim entry in
a vertex's live base slice is overwritten by the slice's last live entry
and the live length drops by one (delta entries are removed from their
list directly).  Neighbour order within a row is therefore not stable
across deletions — no kernel depends on it: affected sets and levels are
sorted before use, and the repair predicate is order-independent.

Vertex ids map to compact indices exactly as in :class:`CSRGraph`, except
the mapping is *append-only*: new vertices (ids unseen at snapshot time)
get the next free index, and the capacity of every per-vertex array grows
geometrically.  Kernels therefore hold plain array views and survive any
number of ``insert_edge`` / ``insert_edges_batch`` calls in between.

>>> from repro.graph.generators import grid_graph
>>> dyn = DynCSR.from_graph(grid_graph(3, 3))
>>> int(dyn.bfs_compact(dyn.index(0))[dyn.index(8)])
4
>>> dyn.insert_edge(0, 8)
>>> int(dyn.bfs_compact(dyn.index(0))[dyn.index(8)])
1
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import GraphError, VertexNotFoundError

__all__ = ["DynCSR", "UNREACH"]

#: Distance sentinel for "unreachable" in the int32 kernels.  Large enough
#: that ``UNREACH >= depth`` always holds for any real BFS depth, small
#: enough that ``UNREACH + 1`` cannot overflow int32.
UNREACH = np.int32(2**30)


class DynCSR:
    """A CSR snapshot that stays valid across edge insertions.

    The read surface (:meth:`gather`, :meth:`neighbors_compact`,
    :meth:`bfs_compact`) always reflects every insertion applied so far;
    :meth:`compact` (called automatically once the delta outgrows a
    quarter of the base) folds the delta adjacency into a fresh base CSR.
    """

    __slots__ = (
        "_ids",
        "_n",
        "_index_of",
        "_indptr",
        "_base_indices",
        "_base_len",
        "_base_n",
        "_delta",
        "_delta_count",
        "_delta_total",
        "_num_edges",
        "_views",
    )

    def __init__(self) -> None:
        self._ids = np.empty(0, dtype=np.int64)  # original id by index
        self._n = 0  # live vertex count (<= capacity)
        self._index_of: dict[int, int] = {}
        # Base CSR.  ``_indptr`` is padded to capacity + 1: indices past
        # ``_base_n`` repeat the total, so vertices added after the last
        # compaction read an empty base slice through the same arrays.
        # ``_base_len[i]`` is the *live* length of row ``i`` — the slice
        # ``indices[indptr[i] : indptr[i] + base_len[i]]`` — which drops
        # below the allocated row width after swap-removals.
        self._indptr = np.zeros(1, dtype=np.int64)
        self._base_indices = np.empty(0, dtype=np.int64)
        self._base_len = np.zeros(0, dtype=np.int64)
        self._base_n = 0  # vertices covered by the base CSR
        # Delta adjacency: compact index -> list of compact neighbour
        # indices, mirrored by a per-vertex count array for cheap masks.
        self._delta: dict[int, list[int]] = {}
        self._delta_count = np.zeros(0, dtype=np.int64)
        self._delta_total = 0  # directed delta entries
        self._num_edges = 0  # undirected edges overall
        self._views = None  # cached scalar_views tuple

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph) -> "DynCSR":
        """Snapshot a :class:`~repro.graph.dynamic_graph.DynamicGraph`.

        Same layout contract as :meth:`CSRGraph.from_graph` (ids sorted,
        compact indices in sorted-id order) so ground-truth comparisons
        line up index for index.
        """
        from itertools import chain

        adj = graph.adjacency()
        if not adj:
            raise GraphError("cannot snapshot an empty graph")
        dyn = cls()
        ids = np.array(sorted(adj), dtype=np.int64)
        n = len(ids)
        degrees = np.fromiter(
            (len(adj[int(v)]) for v in ids), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        flat = np.fromiter(
            chain.from_iterable(adj[int(v)] for v in ids),
            dtype=np.int64,
            count=total,
        )
        dyn._ids = ids
        dyn._n = n
        dyn._index_of = {int(v): i for i, v in enumerate(ids)}
        dyn._indptr = indptr
        dyn._base_indices = np.searchsorted(ids, flat)
        dyn._base_len = degrees.copy()
        dyn._base_n = n
        dyn._delta_count = np.zeros(n, dtype=np.int64)
        dyn._num_edges = total // 2
        return dyn

    # ------------------------------------------------------------------
    # Size, membership, id mapping
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently registered."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Undirected edge count (base + delta)."""
        return self._num_edges

    @property
    def num_delta_edges(self) -> int:
        """Undirected edges still living in the delta overlay."""
        return self._delta_total // 2

    @property
    def capacity(self) -> int:
        """Allocated per-vertex slots (>= :attr:`num_vertices`).

        Consumers that keep per-vertex side arrays (the update engine's
        distance rows and scratch buffers) size them to this so vertex
        growth re-allocates everything in the same geometric steps.
        """
        return len(self._ids)

    @property
    def ids(self) -> np.ndarray:
        """Original vertex ids by compact index.  Must not be mutated."""
        return self._ids[: self._n]

    def index(self, v: int) -> int:
        """Compact index of original vertex id ``v``."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def index_map(self) -> dict[int, int]:
        """Copy of the id -> compact-index mapping.

        Snapshot consumers (shard-scoped query paths) pair this with a
        copy of per-vertex side arrays so later ``ensure_vertex`` calls
        on the live structure cannot skew a pinned view.
        """
        return dict(self._index_of)

    def vertex(self, i: int) -> int:
        """Original id of compact index ``i``."""
        return int(self._ids[i])

    def __contains__(self, v: int) -> bool:
        return v in self._index_of

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _grow_to(self, capacity: int) -> None:
        """Geometrically grow every per-vertex array to >= ``capacity``."""
        current = len(self._ids)
        if capacity <= current:
            return
        self._views = None
        new_cap = max(capacity, current * 2, 16)
        ids = np.empty(new_cap, dtype=np.int64)
        ids[:current] = self._ids
        self._ids = ids
        # Pad the base row pointer: new vertices have empty base slices.
        indptr = np.empty(new_cap + 1, dtype=np.int64)
        indptr[: len(self._indptr)] = self._indptr
        indptr[len(self._indptr) :] = self._indptr[-1]
        self._indptr = indptr
        counts = np.zeros(new_cap, dtype=np.int64)
        counts[: len(self._delta_count)] = self._delta_count
        self._delta_count = counts
        base_len = np.zeros(new_cap, dtype=np.int64)
        base_len[: len(self._base_len)] = self._base_len
        self._base_len = base_len

    def ensure_vertex(self, v: int) -> int:
        """Register id ``v`` if unseen; returns its compact index.

        New vertices start isolated; they join the base CSR at the next
        compaction.
        """
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise GraphError(f"vertex ids must be non-negative ints, got {v!r}")
        idx = self._index_of.get(v)
        if idx is not None:
            return idx
        idx = self._n
        self._grow_to(idx + 1)
        self._ids[idx] = v
        self._index_of[v] = idx
        self._n = idx + 1
        return idx

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)`` (by original id).

        Endpoints are registered on demand; duplicate edges and self-loops
        are the caller's responsibility (the owning
        :class:`~repro.graph.dynamic_graph.DynamicGraph` already rejects
        them).  Triggers compaction when the delta outgrows the base.
        """
        self._views = None
        ui = self.ensure_vertex(u)
        vi = self.ensure_vertex(v)
        self._delta.setdefault(ui, []).append(vi)
        self._delta.setdefault(vi, []).append(ui)
        self._delta_count[ui] += 1
        self._delta_count[vi] += 1
        self._delta_total += 2
        self._num_edges += 1
        if self._delta_total > max(256, len(self._base_indices) >> 2):
            self.compact()

    def insert_edges_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        """Insert a burst of edges (compaction checked once at the end)."""
        self._views = None
        for u, v in edges:
            ui = self.ensure_vertex(u)
            vi = self.ensure_vertex(v)
            self._delta.setdefault(ui, []).append(vi)
            self._delta.setdefault(vi, []).append(ui)
            self._delta_count[ui] += 1
            self._delta_count[vi] += 1
            self._delta_total += 2
            self._num_edges += 1
        if self._delta_total > max(256, len(self._base_indices) >> 2):
            self.compact()

    def _remove_directed(self, ui: int, vi: int) -> None:
        """Drop the directed entry ``ui -> vi`` from delta or base.

        Delta first (a deleted edge that was recently inserted still lives
        there), then the live base slice by swap-removal: the victim slot
        takes the slice's last live entry and ``base_len`` shrinks by one.
        """
        extra = self._delta.get(ui)
        if extra is not None and vi in extra:
            extra.remove(vi)
            if not extra:
                del self._delta[ui]
            self._delta_count[ui] -= 1
            self._delta_total -= 1
            return
        start = int(self._indptr[ui])
        length = int(self._base_len[ui])
        base = self._base_indices
        for pos in range(start, start + length):
            if base[pos] == vi:
                base[pos] = base[start + length - 1]
                self._base_len[ui] = length - 1
                return
        raise GraphError(
            f"edge ({self.vertex(ui)}, {self.vertex(vi)}) not present"
        )

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)`` (by original id).

        Both endpoints must be registered and the edge present — the
        owning :class:`~repro.graph.dynamic_graph.DynamicGraph` validates
        first, but the overlay re-raises :class:`GraphError` on a missing
        entry so a desynchronized caller fails loudly.  Vertices are never
        unregistered: an isolated index simply reads empty slices.
        """
        self._views = None
        ui = self.index(u)
        vi = self.index(v)
        self._remove_directed(ui, vi)
        self._remove_directed(vi, ui)
        self._num_edges -= 1

    def remove_edges_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        """Remove a burst of edges (no compaction: deletions only shrink)."""
        self._views = None
        for u, v in edges:
            ui = self.index(u)
            vi = self.index(v)
            self._remove_directed(ui, vi)
            self._remove_directed(vi, ui)
            self._num_edges -= 1

    def compact(self) -> None:
        """Fold the delta adjacency into a fresh base CSR.

        ``O(m)``: base entries move with one vectorized scatter (the same
        repeat/cumsum flattening :func:`_gather_neighbors` uses), delta
        entries append per dirty vertex.  After compaction every vertex —
        including ones added since the last snapshot — reads from the base.
        """
        self._views = None
        n = self._n
        base_counts = self._base_len[:n].copy()
        counts = base_counts + self._delta_count[:n]
        new_indptr = np.zeros(len(self._ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1 : n + 1])
        new_indptr[n + 1 :] = new_indptr[n]
        total = int(new_indptr[n])
        new_indices = np.empty(total, dtype=np.int64)
        base_total = int(base_counts.sum())
        if base_total:
            # Source/target slot of each *live* base entry, row-major: row
            # start in the old/new layout plus the entry's offset within
            # its live slice (dead tail slots left by deletions stay
            # behind).
            live = base_counts > 0
            old_starts = self._indptr[:n][live]
            new_starts = new_indptr[:n][live]
            live_counts = base_counts[live]
            cumulative = np.cumsum(live_counts)
            offsets = np.arange(base_total, dtype=np.int64) - np.repeat(
                cumulative - live_counts, live_counts
            )
            sources = np.repeat(old_starts, live_counts) + offsets
            positions = np.repeat(new_starts, live_counts) + offsets
            new_indices[positions] = self._base_indices[sources]
        for vi, extra in self._delta.items():
            start = int(new_indptr[vi]) + int(base_counts[vi])
            new_indices[start : start + len(extra)] = extra
        self._indptr = new_indptr
        self._base_indices = new_indices
        base_len = np.zeros(len(self._ids), dtype=np.int64)
        base_len[:n] = counts
        self._base_len = base_len
        self._base_n = n
        self._delta = {}
        self._delta_count[:] = 0
        self._delta_total = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def neighbors_compact(self, i: int) -> np.ndarray:
        """Neighbour indices of compact index ``i`` (base + delta)."""
        start = self._indptr[i]
        base = self._base_indices[start : start + self._base_len[i]]
        extra = self._delta.get(i)
        if extra is None:
            return base
        return np.concatenate([base, np.array(extra, dtype=np.int64)])

    def neighbors_list(self, i: int) -> list[int]:
        """Neighbour indices of ``i`` as a plain list (scalar hot path)."""
        start = self._indptr[i]
        base = self._base_indices[start : start + self._base_len[i]].tolist()
        extra = self._delta.get(i)
        if extra is not None:
            base.extend(extra)
        return base

    def scalar_views(self):
        """Zero-copy buffers for the scalar kernel paths.

        Returns ``(indptr, base_len, indices, delta, delta_count)`` where
        the array members are memoryviews — scalar reads yield plain
        Python ints at a fraction of a numpy getitem — and ``delta`` is
        the live per-vertex overflow dict.  A vertex's live base slice is
        ``indices[indptr[v] : indptr[v] + base_len[v]]`` (deletions leave
        dead tail slots behind, so ``indptr[v + 1]`` is only an upper
        bound).  The views alias the current arrays: refetch after any
        mutation (compaction swaps the buffers) — or rely on the built-in
        cache, which every mutation drops.
        """
        views = self._views
        if views is None:
            views = self._views = (
                memoryview(self._indptr),
                memoryview(self._base_len),
                memoryview(self._base_indices),
                self._delta,
                memoryview(self._delta_count),
            )
        return views

    def gather(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All ``(source, neighbour)`` pairs leaving ``frontier``.

        The base contribution is one vectorized gather; delta lists are
        appended only for frontier vertices that actually have them
        (detected with one mask over ``delta_count``, so an empty delta —
        the common state right after compaction — costs nothing).
        """
        _, positions, neighbours = self._base_positions(frontier)
        sources = frontier[positions]
        if self._delta_total:
            mask = self._delta_count[frontier] > 0
            if mask.any():
                delta = self._delta
                extra_src: list[int] = []
                extra_nbr: list[int] = []
                for vi in frontier[mask].tolist():
                    nbrs = delta[vi]
                    extra_src.extend([vi] * len(nbrs))
                    extra_nbr.extend(nbrs)
                sources = np.concatenate(
                    [sources, np.array(extra_src, dtype=np.int64)]
                )
                neighbours = np.concatenate(
                    [neighbours, np.array(extra_nbr, dtype=np.int64)]
                )
        return sources, neighbours

    def _base_positions(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Base-CSR flattening: ``(counts, flat_positions, neighbours)``."""
        starts = self._indptr[frontier]
        counts = self._base_len[frontier]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return counts, empty, empty
        cumulative = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            cumulative - counts, counts
        )
        neighbours = self._base_indices[np.repeat(starts, counts) + offsets]
        return counts, np.repeat(np.arange(len(frontier)), counts), neighbours

    def gather_neighbours(self, frontier: np.ndarray) -> np.ndarray:
        """Flattened neighbours of ``frontier`` (duplicates included).

        The find kernel's expansion needs only the target side of each
        edge, so this skips materializing the source column.
        """
        _, _, neighbours = self._base_positions(frontier)
        if self._delta_total:
            mask = self._delta_count[frontier] > 0
            if mask.any():
                delta = self._delta
                extra: list[int] = []
                for vi in frontier[mask].tolist():
                    extra.extend(delta[vi])
                neighbours = np.concatenate(
                    [neighbours, np.array(extra, dtype=np.int64)]
                )
        return neighbours

    def gather_with_positions(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(positions, neighbours)`` pairs leaving ``frontier``.

        ``positions[k]`` indexes into ``frontier`` (not vertex space) —
        exactly the scatter target the repair kernel needs, saving it a
        searchsorted back-mapping.
        """
        _, positions, neighbours = self._base_positions(frontier)
        if self._delta_total:
            mask = self._delta_count[frontier] > 0
            if mask.any():
                delta = self._delta
                extra_pos: list[int] = []
                extra_nbr: list[int] = []
                for position in np.nonzero(mask)[0].tolist():
                    nbrs = delta[int(frontier[position])]
                    extra_pos.extend([position] * len(nbrs))
                    extra_nbr.extend(nbrs)
                positions = np.concatenate(
                    [positions, np.array(extra_pos, dtype=np.int64)]
                )
                neighbours = np.concatenate(
                    [neighbours, np.array(extra_nbr, dtype=np.int64)]
                )
        return positions, neighbours

    def bfs_compact(self, source_index: int) -> np.ndarray:
        """Distances from ``source_index`` over base + delta edges.

        Returns an int32 array with :data:`UNREACH` for unreachable
        vertices — the layout the update kernels keep per landmark.
        """
        dist = np.full(self._n, UNREACH, dtype=np.int32)
        dist[source_index] = 0
        frontier = np.array([source_index], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            _, neighbours = self.gather(frontier)
            if neighbours.size == 0:
                break
            neighbours = neighbours[dist[neighbours] == UNREACH]
            if neighbours.size == 0:
                break
            frontier = np.unique(neighbours)
            dist[frontier] = depth
        return dist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynCSR(|V|={self._n}, |E|={self._num_edges}, "
            f"delta={self.num_delta_edges})"
        )
