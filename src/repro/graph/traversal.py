"""Graph traversal primitives: BFS, bounded/bidirectional searches, Dijkstra.

Everything in this library is traversal-bound, so these functions operate on
the raw adjacency mapping (``graph.adjacency()``) and use flat ``dict``-based
distance maps.  ``float("inf")`` (exported as :data:`INF`) denotes
unreachable, matching the paper's ``d_G(u, v) = ∞`` convention.

The bounded bidirectional searches implement the paper's query step: an exact
distance search over the *sparsified* graph ``G[V \\ R]`` (landmarks excluded
from path interiors) under the labelling-derived upper bound ``d⊤`` (Eq. 2).
"""

from __future__ import annotations

import heapq
from collections.abc import Collection

from repro.exceptions import VertexNotFoundError

INF = float("inf")

__all__ = [
    "INF",
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_with_parents",
    "bidirectional_bfs",
    "dijkstra_distances",
    "bidirectional_dijkstra",
    "bfs_distances_directed",
]

_EMPTY: frozenset[int] = frozenset()


def bfs_distances(graph, source: int) -> dict[int, int]:
    """Exact BFS distances from ``source`` to every reachable vertex.

    Works on :class:`~repro.graph.dynamic_graph.DynamicGraph`; unreachable
    vertices are absent from the result.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    dist = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for v in frontier:
            for w in adj[v]:
                if w not in dist:
                    dist[w] = depth
                    next_frontier.append(w)
        frontier = next_frontier
    return dist


def bfs_distances_bounded(
    graph, source: int, bound: float, skip: Collection[int] = _EMPTY
) -> dict[int, int]:
    """BFS distances from ``source`` up to (and including) depth ``bound``.

    Vertices in ``skip`` are treated as deleted (never discovered nor
    expanded), except ``source`` itself, which is always seeded.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    dist = {source: 0}
    frontier = [source]
    depth = 0
    while frontier and depth < bound:
        depth += 1
        next_frontier = []
        for v in frontier:
            for w in adj[v]:
                if w not in dist and w not in skip:
                    dist[w] = depth
                    next_frontier.append(w)
        frontier = next_frontier
    return dist


def bfs_with_parents(
    graph, source: int
) -> tuple[dict[int, int], dict[int, list[int]]]:
    """BFS distances plus the full shortest-path DAG.

    Returns ``(dist, parents)`` where ``parents[v]`` lists *every* neighbour
    ``u`` with ``dist[u] + 1 == dist[v]`` — i.e. the predecessors of ``v``
    across all shortest paths from ``source``.  Used by the validation module
    to reason about the set ``P_G(source, v)`` of all shortest paths.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    dist = {source: 0}
    parents: dict[int, list[int]] = {source: []}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for v in frontier:
            for w in adj[v]:
                if w not in dist:
                    dist[w] = depth
                    parents[w] = [v]
                    next_frontier.append(w)
                elif dist[w] == depth:
                    parents[w].append(v)
        frontier = next_frontier
    return dist, parents


def bidirectional_bfs(
    graph,
    source: int,
    target: int,
    bound: float = INF,
    skip: Collection[int] = _EMPTY,
) -> float:
    """Exact ``source``–``target`` distance if it is ``<= bound``, else INF.

    Path *interiors* avoid every vertex in ``skip``; the endpoints themselves
    are always allowed (this realises the paper's search over ``G[V \\ R]``
    when ``skip`` is the landmark set — queries with landmark endpoints are
    answered from the labelling instead and never reach this function, but
    permitting endpoints in ``skip`` keeps the primitive total).

    Levels are expanded smaller-frontier-first; the search stops as soon as
    the sum of the two search radii reaches ``min(best, bound)``, which is
    exactly when no shorter path can remain undiscovered.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    if target not in adj:
        raise VertexNotFoundError(target)
    if source == target:
        return 0
    if bound < 1:
        return INF

    dist_s: dict[int, int] = {source: 0}
    dist_t: dict[int, int] = {target: 0}
    frontier_s = [source]
    frontier_t = [target]
    radius_s = 0
    radius_t = 0
    best = INF

    while frontier_s and frontier_t and radius_s + radius_t < min(best, bound):
        if len(frontier_s) <= len(frontier_t):
            frontier, radius = frontier_s, radius_s + 1
            dist_own, dist_other = dist_s, dist_t
        else:
            frontier, radius = frontier_t, radius_t + 1
            dist_own, dist_other = dist_t, dist_s
        next_frontier = []
        for v in frontier:
            base = dist_own[v] + 1
            for w in adj[v]:
                other = dist_other.get(w)
                if other is not None:
                    total = base + other
                    if total < best:
                        best = total
                if w not in dist_own and w not in skip:
                    dist_own[w] = base
                    next_frontier.append(w)
        if dist_own is dist_s:
            frontier_s, radius_s = next_frontier, radius
        else:
            frontier_t, radius_t = next_frontier, radius

    return best if best <= bound else INF


def dijkstra_distances(
    graph, source: int, bound: float = INF, skip: Collection[int] = _EMPTY
) -> dict[int, float]:
    """Dijkstra distances from ``source`` on a :class:`WeightedGraph`.

    Supports the paper's weighted extension.  Vertices in ``skip`` are never
    expanded nor discovered (except the seeded ``source``); distances beyond
    ``bound`` are not reported.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        if d > bound:
            break
        dist[v] = d
        for w, weight in adj[v]:
            if w not in dist and w not in skip:
                nd = d + weight
                if nd <= bound:
                    heapq.heappush(heap, (nd, w))
    return dist


def bidirectional_dijkstra(
    graph,
    source: int,
    target: int,
    bound: float = INF,
    skip: Collection[int] = _EMPTY,
) -> float:
    """Exact weighted ``source``–``target`` distance if ``<= bound``, else INF.

    Weighted counterpart of :func:`bidirectional_bfs`, with the same
    ``skip``-as-interior-exclusion semantics.  Uses the classic two-heap
    scheme with the ``top_s + top_t >= best`` stopping rule.
    """
    adj = graph.adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    if target not in adj:
        raise VertexNotFoundError(target)
    if source == target:
        return 0.0

    dist_s: dict[int, float] = {}
    dist_t: dict[int, float] = {}
    heap_s: list[tuple[float, int]] = [(0.0, source)]
    heap_t: list[tuple[float, int]] = [(0.0, target)]
    seen_s: dict[int, float] = {source: 0.0}
    seen_t: dict[int, float] = {target: 0.0}
    best = INF

    while heap_s and heap_t:
        if heap_s[0][0] + heap_t[0][0] >= min(best, bound):
            break
        if heap_s[0][0] <= heap_t[0][0]:
            heap, dist_own, seen_own = heap_s, dist_s, seen_s
            seen_other = seen_t
        else:
            heap, dist_own, seen_own = heap_t, dist_t, seen_t
            seen_other = seen_s
        d, v = heapq.heappop(heap)
        if v in dist_own:
            continue
        dist_own[v] = d
        for w, weight in adj[v]:
            nd = d + weight
            other = seen_other.get(w)
            if other is not None:
                total = nd + other
                if total < best:
                    best = total
            if w in skip or w in dist_own:
                continue
            known = seen_own.get(w)
            if known is None or nd < known:
                seen_own[w] = nd
                heapq.heappush(heap, (nd, w))

    return best if best <= bound else INF


def bfs_distances_directed(
    digraph, source: int, forward: bool = True
) -> dict[int, int]:
    """BFS distances on a digraph, following out-edges (``forward=True``) or
    in-edges (``forward=False``).  Supports the directed extension."""
    adj = digraph.out_adjacency() if forward else digraph.in_adjacency()
    if source not in adj:
        raise VertexNotFoundError(source)
    dist = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for v in frontier:
            for w in adj[v]:
                if w not in dist:
                    dist[w] = depth
                    next_frontier.append(w)
        frontier = next_frontier
    return dist
