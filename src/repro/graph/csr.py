"""Compressed-sparse-row graph snapshots with numpy-vectorized BFS.

The paper's implementation is C++ compiled with ``-O3``; the calibration
note for this reproduction ("interpreter too slow for large-graph
labelling; needs C extensions") anticipates that pure-Python BFS limits
the graph sizes the harness can drive.  This module is the substitute for
those C extensions: an immutable CSR snapshot of a
:class:`~repro.graph.dynamic_graph.DynamicGraph` whose BFS runs as a
handful of numpy array operations per level instead of one Python
iteration per edge.

A snapshot is *static* by design — updates go through the dynamic graph
and a new snapshot is taken when a fresh bulk computation is needed.  This
mirrors how the paper separates index construction (offline, bulk) from
maintenance (online, incremental): the CSR fast path serves construction
and ground-truth computations, while IncHL+ works on the mutable graph.

>>> from repro.graph.generators import grid_graph
>>> csr = CSRGraph.from_graph(grid_graph(3, 3))
>>> int(csr.bfs(0)[csr.index(8)])
4
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError, VertexNotFoundError

__all__ = ["CSRGraph"]


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(source, neighbour)`` pairs leaving ``frontier``, flattened.

    Returns ``(sources, neighbours)`` where ``sources[k]`` is the frontier
    vertex whose adjacency slice contributed ``neighbours[k]``.  This is
    the standard repeat/cumsum flattening that turns per-vertex adjacency
    slices into one fancy-indexing gather.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=indices.dtype)
        return empty, empty
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=starts.dtype) - np.repeat(
        cumulative - counts, counts
    )
    positions = np.repeat(starts, counts) + offsets
    return np.repeat(frontier, counts), indices[positions]


class CSRGraph:
    """An immutable CSR snapshot of an undirected graph.

    Vertex ids need not be contiguous: the snapshot maps original ids to
    compact indices ``0..n-1`` (in sorted id order) and exposes the mapping
    through :meth:`index` and :meth:`vertex`.  All array-returning methods
    work in compact index space.
    """

    __slots__ = ("_ids", "_indptr", "_indices", "_index_of")

    def __init__(
        self, ids: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self._ids = ids
        self._indptr = indptr
        self._indices = indices
        self._index_of = {int(v): i for i, v in enumerate(ids)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.dynamic_graph.DynamicGraph`.

        One pass over the adjacency; isolated vertices are kept.  The
        original-id → compact-index remap runs as one ``searchsorted``
        over the flattened neighbour array (``ids`` is sorted, so the
        insertion position of an existing id *is* its index), keeping the
        snapshot cost numpy-bound rather than dict-lookup-bound.
        """
        from itertools import chain

        adj = graph.adjacency()
        if not adj:
            raise GraphError("cannot snapshot an empty graph")
        ids = np.array(sorted(adj), dtype=np.int64)
        degrees = np.fromiter(
            (len(adj[int(v)]) for v in ids), dtype=np.int64, count=len(ids)
        )
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        flat = np.fromiter(
            chain.from_iterable(adj[int(v)] for v in ids),
            dtype=np.int64,
            count=total,
        )
        indices = np.searchsorted(ids, flat)
        return cls(ids, indptr, indices)

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "CSRGraph":
        """Snapshot an edge list directly (both directions are added).

        ``num_vertices`` pre-registers ids ``0..num_vertices-1`` so that
        isolated vertices survive, as in ``DynamicGraph.from_edges``.
        """
        edge_list = list(edges)
        seen: set[int] = set(range(num_vertices)) if num_vertices else set()
        for u, v in edge_list:
            seen.add(u)
            seen.add(v)
        if not seen:
            raise GraphError("cannot snapshot an empty graph")
        ids = np.array(sorted(seen), dtype=np.int64)
        index_of = {int(v): i for i, v in enumerate(ids)}
        if edge_list:
            endpoint_u = np.fromiter(
                (index_of[u] for u, _ in edge_list), dtype=np.int64
            )
            endpoint_v = np.fromiter(
                (index_of[v] for _, v in edge_list), dtype=np.int64
            )
            sources = np.concatenate([endpoint_u, endpoint_v])
            targets = np.concatenate([endpoint_v, endpoint_u])
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=len(ids)), out=indptr[1:])
        return cls(ids, indptr, targets)

    # ------------------------------------------------------------------
    # Size, membership, id mapping
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice internally)."""
        return len(self._indices) // 2

    @property
    def ids(self) -> np.ndarray:
        """Original vertex ids by compact index.  Must not be mutated."""
        return self._ids

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices in compact space (read-only)."""
        return self._indices

    def index(self, v: int) -> int:
        """Compact index of original vertex id ``v``."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def vertex(self, i: int) -> int:
        """Original id of compact index ``i``."""
        return int(self._ids[i])

    def __contains__(self, v: int) -> bool:
        return v in self._index_of

    def __len__(self) -> int:
        return len(self._ids)

    def degree_array(self) -> np.ndarray:
        """Vertex degrees by compact index."""
        return np.diff(self._indptr)

    def neighbors(self, i: int) -> np.ndarray:
        """Compact neighbour indices of compact index ``i`` (read-only)."""
        return self._indices[self._indptr[i] : self._indptr[i + 1]]

    # ------------------------------------------------------------------
    # Vectorized traversal
    # ------------------------------------------------------------------
    def bfs(self, source_id: int) -> np.ndarray:
        """Distances from ``source_id`` by compact index; ``-1`` unreachable."""
        return self.bfs_compact(self.index(source_id))

    def bfs_compact(self, source_index: int) -> np.ndarray:
        """Distances from compact index ``source_index``; ``-1`` unreachable."""
        dist = np.full(self.num_vertices, -1, dtype=np.int32)
        dist[source_index] = 0
        frontier = np.array([source_index], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            _, neighbours = _gather_neighbors(self._indptr, self._indices, frontier)
            if neighbours.size == 0:
                break
            neighbours = neighbours[dist[neighbours] < 0]
            if neighbours.size == 0:
                break
            frontier = np.unique(neighbours)
            dist[frontier] = depth
        return dist

    def bfs_many(self, source_ids: Sequence[int]) -> np.ndarray:
        """Stacked BFS distances, one row per source id."""
        if len(source_ids) == 0:
            return np.empty((0, self.num_vertices), dtype=np.int32)
        return np.stack([self.bfs(s) for s in source_ids])

    def multi_source_bfs(self, source_ids: Sequence[int]) -> np.ndarray:
        """Distance to the *nearest* of several sources (compact space)."""
        if not source_ids:
            raise GraphError("multi_source_bfs needs at least one source")
        dist = np.full(self.num_vertices, -1, dtype=np.int32)
        frontier = np.unique(
            np.fromiter((self.index(s) for s in source_ids), dtype=np.int64)
        )
        dist[frontier] = 0
        depth = 0
        while frontier.size:
            depth += 1
            _, neighbours = _gather_neighbors(self._indptr, self._indices, frontier)
            if neighbours.size == 0:
                break
            neighbours = neighbours[dist[neighbours] < 0]
            if neighbours.size == 0:
                break
            frontier = np.unique(neighbours)
            dist[frontier] = depth
        return dist

    def distances_from(self, source_id: int) -> dict[int, int]:
        """BFS distances as ``{original_id: distance}`` (reachable only).

        Interop helper for code written against the dict-returning
        :func:`repro.graph.traversal.bfs_distances`.
        """
        dist = self.bfs(source_id)
        reachable = np.nonzero(dist >= 0)[0]
        ids = self._ids
        return {int(ids[i]): int(dist[i]) for i in reachable}

    def eccentricity(self, source_id: int) -> int:
        """Largest finite BFS distance from ``source_id``."""
        return int(self.bfs(source_id).max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
