"""Synthetic network generators (from scratch, seeded, no external deps).

These provide the topology-matched stand-ins for the paper's 12 real-world
networks (docs/DESIGN.md §3): social networks → preferential attachment /
power-law configuration models; web graphs → community-ring graphs with
high average distance; computer networks → small-world graphs.

All generators return a :class:`~repro.graph.dynamic_graph.DynamicGraph`
(simple, undirected) and accept ``rng`` as an int seed or
:class:`random.Random` for exact reproducibility.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_cluster",
    "community_web_graph",
    "forest_fire",
    "ring_of_cliques",
    "random_tree",
    "grid_graph",
    "ensure_connected",
]


def _add_sampled_edges(graph: DynamicGraph, edges: set[tuple[int, int]]) -> None:
    for u, v in edges:
        graph.add_edge(u, v)


def erdos_renyi(n: int, num_edges: int, rng: int | random.Random | None = None) -> DynamicGraph:
    """G(n, m): ``num_edges`` distinct edges sampled uniformly at random.

    >>> g = erdos_renyi(50, 100, rng=7)
    >>> (g.num_vertices, g.num_edges)
    (50, 100)
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} edges in a simple graph on {n} vertices "
            f"(max {max_edges})"
        )
    rng = ensure_rng(rng)
    graph = DynamicGraph(range(n))
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        edges.add((u, v))
    _add_sampled_edges(graph, edges)
    return graph


def barabasi_albert(
    n: int, attach: int, rng: int | random.Random | None = None
) -> DynamicGraph:
    """Barabási–Albert preferential attachment: each new vertex attaches to
    ``attach`` distinct existing vertices chosen proportionally to degree.

    Produces the heavy-tailed degree distributions and small average
    distances characteristic of the paper's social-network datasets
    (Flickr, Orkut, Twitter, Friendster, ...).
    """
    if attach < 1:
        raise GraphError(f"attach must be >= 1, got {attach}")
    if n < attach + 1:
        raise GraphError(f"need n > attach, got n={n}, attach={attach}")
    rng = ensure_rng(rng)
    graph = DynamicGraph(range(n))
    # Repeated-endpoints list: sampling uniformly from it is sampling
    # proportionally to degree.
    endpoint_pool: list[int] = []
    # Seed: a star on the first attach+1 vertices (keeps everything connected).
    for v in range(1, attach + 1):
        graph.add_edge(0, v)
        endpoint_pool.extend((0, v))
    for v in range(attach + 1, n):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(rng.choice(endpoint_pool))
        for t in targets:
            graph.add_edge(v, t)
            endpoint_pool.extend((v, t))
    return graph


def watts_strogatz(
    n: int, k: int, beta: float, rng: int | random.Random | None = None
) -> DynamicGraph:
    """Watts–Strogatz small-world graph: ring lattice with degree ``k`` and
    rewiring probability ``beta``.

    Used for the computer-network stand-in (Skitter): moderate clustering,
    moderate average distance.
    """
    if k % 2 != 0:
        raise GraphError(f"k must be even, got {k}")
    if not 0 <= beta <= 1:
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    if k >= n:
        raise GraphError(f"need k < n, got k={k}, n={n}")
    rng = ensure_rng(rng)
    graph = DynamicGraph(range(n))
    edges: set[tuple[int, int]] = set()
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            w = (v + offset) % n
            edges.add((min(v, w), max(v, w)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(edges):
        if rng.random() < beta:
            for _ in range(64):  # bounded retries; keep the edge on failure
                w = rng.randrange(n)
                if w == u:
                    continue
                cand = (min(u, w), max(u, w))
                if cand not in edges and cand not in rewired:
                    rewired.add(cand)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    _add_sampled_edges(graph, rewired)
    return graph


def powerlaw_cluster(
    n: int,
    attach: int,
    triangle_prob: float,
    rng: int | random.Random | None = None,
) -> DynamicGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but, with probability ``triangle_prob``, a
    new edge closes a triangle with a neighbour of the previous target.
    Matches the clustered social networks (Hollywood, LiveJournal).
    """
    if not 0 <= triangle_prob <= 1:
        raise GraphError(f"triangle_prob must be in [0, 1], got {triangle_prob}")
    if attach < 1:
        raise GraphError(f"attach must be >= 1, got {attach}")
    if n < attach + 1:
        raise GraphError(f"need n > attach, got n={n}, attach={attach}")
    rng = ensure_rng(rng)
    graph = DynamicGraph(range(n))
    endpoint_pool: list[int] = []
    for v in range(1, attach + 1):
        graph.add_edge(0, v)
        endpoint_pool.extend((0, v))
    for v in range(attach + 1, n):
        added: set[int] = set()
        last_target: int | None = None
        while len(added) < attach:
            candidate: int | None = None
            if last_target is not None and rng.random() < triangle_prob:
                nbrs = [w for w in graph.neighbors(last_target) if w != v and w not in added]
                if nbrs:
                    candidate = rng.choice(nbrs)
            if candidate is None:
                candidate = rng.choice(endpoint_pool)
                if candidate == v or candidate in added:
                    continue
            added.add(candidate)
            last_target = candidate
        for t in added:
            graph.add_edge(v, t)
            endpoint_pool.extend((v, t))
    return graph


def community_web_graph(
    n: int,
    community_size: int,
    intra_attach: int,
    inter_edges_per_community: int,
    long_range_edges: int = 0,
    rng: int | random.Random | None = None,
) -> DynamicGraph:
    """Web-graph stand-in: dense communities arranged on a ring.

    Web crawls (Indochina, IT, UK, Clueweb09) combine locally dense link
    structure with *large average distances* (7+ in Table 2).  This generator
    reproduces that: each community of ``community_size`` vertices is a small
    preferential-attachment graph ("a site"); ``inter_edges_per_community``
    random edges join each community to the next one on a ring ("cross-site
    links"), so distances grow linearly with ring position;
    ``long_range_edges`` optional chords mimic hub sites and temper the
    diameter.
    """
    if community_size < intra_attach + 1:
        raise GraphError(
            f"community_size must exceed intra_attach, got "
            f"{community_size} <= {intra_attach}"
        )
    if n < community_size:
        raise GraphError(f"need n >= community_size, got {n} < {community_size}")
    if inter_edges_per_community < 1:
        raise GraphError("inter_edges_per_community must be >= 1")
    rng = ensure_rng(rng)
    num_communities = n // community_size
    graph = DynamicGraph(range(num_communities * community_size))

    def community_vertices(c: int) -> range:
        """Vertex ids of community ``i`` (for tests and examples)."""
        return range(c * community_size, (c + 1) * community_size)

    # Intra-community preferential attachment.
    for c in range(num_communities):
        base = c * community_size
        endpoint_pool: list[int] = []
        for v in range(base + 1, base + intra_attach + 1):
            graph.add_edge(base, v)
            endpoint_pool.extend((base, v))
        for v in range(base + intra_attach + 1, base + community_size):
            targets: set[int] = set()
            while len(targets) < intra_attach:
                targets.add(rng.choice(endpoint_pool))
            for t in targets:
                graph.add_edge(v, t)
                endpoint_pool.extend((v, t))

    # Ring of communities.
    for c in range(num_communities):
        nxt = (c + 1) % num_communities
        if nxt == c:
            break
        placed = 0
        while placed < inter_edges_per_community:
            u = rng.choice(community_vertices(c))
            v = rng.choice(community_vertices(nxt))
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                placed += 1

    # Long-range chords between random distinct communities.
    placed = 0
    while placed < long_range_edges and num_communities > 2:
        c1 = rng.randrange(num_communities)
        c2 = rng.randrange(num_communities)
        if c1 == c2 or abs(c1 - c2) == 1 or abs(c1 - c2) == num_communities - 1:
            continue
        u = rng.choice(community_vertices(c1))
        v = rng.choice(community_vertices(c2))
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> DynamicGraph:
    """``num_cliques`` cliques of ``clique_size``, adjacent ones joined by a
    single edge.  Deterministic; handy for tests with known distances."""
    if clique_size < 1 or num_cliques < 1:
        raise GraphError("num_cliques and clique_size must be >= 1")
    graph = DynamicGraph(range(num_cliques * clique_size))
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j)
    for c in range(num_cliques):
        nxt = (c + 1) % num_cliques
        if nxt == c:
            break
        u = c * clique_size
        v = nxt * clique_size + (1 % clique_size)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def random_tree(n: int, rng: int | random.Random | None = None) -> DynamicGraph:
    """Uniform random recursive tree on ``n`` vertices (connected, acyclic)."""
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    rng = ensure_rng(rng)
    graph = DynamicGraph(range(n))
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    return graph


def grid_graph(rows: int, cols: int) -> DynamicGraph:
    """``rows x cols`` grid; vertex ``r * cols + c``.  Deterministic."""
    if rows < 1 or cols < 1:
        raise GraphError("rows and cols must be >= 1")
    graph = DynamicGraph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def forest_fire(
    n: int,
    forward_prob: float = 0.35,
    rng: int | random.Random | None = None,
    max_burn: int = 200,
) -> DynamicGraph:
    """Forest-fire graph of Leskovec et al. (TKDD 2007), undirected form.

    The densification model behind the paper's premise that real networks
    "are large and frequently updated, primarily accommodating insertions"
    [its reference 15]: each arriving vertex picks a random *ambassador*
    and "burns" outward from it — at every burned vertex a geometric
    number (mean ``p/(1-p)``) of unburned neighbours catches fire — then
    links to every burned vertex.  Higher ``forward_prob`` burns deeper,
    densifying the graph and shrinking its diameter as it grows.

    ``max_burn`` caps one arrival's fire (the classic implementation
    guard against burning the whole graph at high ``p``).  Always
    connected by construction.

    >>> g = forest_fire(50, forward_prob=0.3, rng=1)
    >>> g.num_vertices, g.num_edges >= 49
    (50, True)
    """
    if n < 2:
        raise GraphError(f"forest_fire needs n >= 2, got {n}")
    if not 0.0 <= forward_prob < 1.0:
        raise GraphError(
            f"forward_prob must be in [0, 1), got {forward_prob}"
        )
    rng = ensure_rng(rng)
    graph = DynamicGraph([0, 1])
    graph.add_edge(0, 1)
    adj = graph.adjacency()
    for v in range(2, n):
        ambassador = rng.randrange(v)
        burned = {ambassador}
        frontier = [ambassador]
        while frontier and len(burned) < max_burn:
            w = frontier.pop()
            # Geometric(1 - p) links out of w: keep drawing while p hits.
            candidates = [x for x in adj[w] if x not in burned]
            rng.shuffle(candidates)
            for x in candidates:
                if rng.random() >= forward_prob:
                    break
                burned.add(x)
                frontier.append(x)
                if len(burned) >= max_burn:
                    break
        graph.add_vertex(v)
        for w in burned:
            graph.add_edge(v, w)
    return graph


def ensure_connected(
    graph: DynamicGraph, rng: int | random.Random | None = None
) -> DynamicGraph:
    """Connect a graph in place by joining consecutive components with one
    random edge each; returns the same graph for chaining."""
    rng = ensure_rng(rng)
    remaining = set(graph.vertices())
    components: list[list[int]] = []
    adj = graph.adjacency()
    while remaining:
        root = next(iter(remaining))
        seen = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        components.append(sorted(seen))
        remaining -= seen
    for prev, nxt in zip(components, components[1:]):
        u = rng.choice(prev)
        v = rng.choice(nxt)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph
