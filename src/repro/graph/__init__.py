"""Graph substrate: dynamic graphs, generators, traversal, statistics, I/O.

The labelling algorithms in :mod:`repro.core` and the baselines in
:mod:`repro.baselines` all operate on the graph types defined here.  The
substrate is deliberately self-contained — the paper's evaluation runs on
plain adjacency structures, and so does this reproduction.
"""

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.dyncsr import DynCSR
from repro.graph.weighted import WeightedGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_bounded,
    bidirectional_bfs,
    dijkstra_distances,
    bidirectional_dijkstra,
)

__all__ = [
    "DynamicGraph",
    "DynamicDiGraph",
    "DynCSR",
    "WeightedGraph",
    "bfs_distances",
    "bfs_distances_bounded",
    "bidirectional_bfs",
    "dijkstra_distances",
    "bidirectional_dijkstra",
]
