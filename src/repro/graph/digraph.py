"""A dynamic, directed, unweighted simple graph.

Supports the paper's Section 5 extension ("Directed and weighted graphs"):
directed highway cover labelling stores forward and backward labels obtained
from forward and backward BFSs, so the digraph exposes both out- and
in-adjacency.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

__all__ = ["DynamicDiGraph"]


class DynamicDiGraph:
    """A directed, unweighted simple graph supporting online updates.

    >>> g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
    >>> g.out_neighbors(0), g.in_neighbors(2)
    ([1], [1])
    """

    __slots__ = ("_out", "_in", "_num_edges")

    def __init__(self, vertices: Iterable[int] = ()) -> None:
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._num_edges = 0
        for v in vertices:
            self.add_vertex(v)

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "DynamicDiGraph":
        """Build a digraph from directed ``(u, v)`` pairs."""
        graph = cls(range(num_vertices) if num_vertices is not None else ())
        for u, v in edges:
            graph.add_vertex(u)
            graph.add_vertex(v)
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "DynamicDiGraph":
        """Return an independent deep copy of this digraph."""
        clone = DynamicDiGraph()
        clone._out = {v: list(nbrs) for v, nbrs in self._out.items()}
        clone._in = {v: list(nbrs) for v, nbrs in self._in.items()}
        clone._num_edges = self._num_edges
        return clone

    def reverse(self) -> "DynamicDiGraph":
        """Return the digraph with every edge direction flipped."""
        clone = DynamicDiGraph()
        clone._out = {v: list(nbrs) for v, nbrs in self._in.items()}
        clone._in = {v: list(nbrs) for v, nbrs in self._out.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the digraph."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (arcs)."""
        return self._num_edges

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a vertex of this digraph."""
        return v in self._out

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u → v`` is present."""
        nbrs = self._out.get(u)
        return nbrs is not None and v in nbrs

    def __contains__(self, v: int) -> bool:
        return v in self._out

    def __len__(self) -> int:
        return len(self._out)

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._out)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def out_neighbors(self, v: int) -> list[int]:
        """Successors of ``v``.  The returned list must not be mutated."""
        try:
            return self._out[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def in_neighbors(self, v: int) -> list[int]:
        """Predecessors of ``v``.  The returned list must not be mutated."""
        try:
            return self._in[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        return len(self.out_neighbors(v))

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        return len(self.in_neighbors(v))

    def out_adjacency(self) -> dict[int, list[int]]:
        """Raw out-adjacency for read-only use in hot loops."""
        return self._out

    def in_adjacency(self) -> dict[int, list[int]]:
        """Raw in-adjacency for read-only use in hot loops."""
        return self._in

    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> bool:
        """Add an isolated vertex; returns ``True`` if it was new."""
        if not isinstance(v, int) or isinstance(v, bool):
            raise TypeError(f"vertex ids must be ints, got {v!r}")
        if v < 0:
            raise ValueError(f"vertex ids must be non-negative, got {v}")
        if v in self._out:
            return False
        self._out[v] = []
        self._in[v] = []
        return True

    def add_edge(self, u: int, v: int) -> None:
        """Insert the directed edge ``u -> v``."""
        if u == v:
            raise SelfLoopError(u)
        if u not in self._out:
            raise VertexNotFoundError(u)
        if v not in self._out:
            raise VertexNotFoundError(v)
        if v in self._out[u]:
            raise EdgeExistsError(u, v)
        self._out[u].append(v)
        self._in[v].append(u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the directed edge ``u -> v``."""
        if u not in self._out:
            raise VertexNotFoundError(u)
        if v not in self._out:
            raise VertexNotFoundError(v)
        try:
            self._out[u].remove(v)
        except ValueError:
            raise EdgeNotFoundError(u, v) from None
        self._in[v].remove(u)
        self._num_edges -= 1

    def average_degree(self) -> float:
        """Average out-degree (``|E| / |V|``); 0.0 for the empty graph."""
        if not self._out:
            return 0.0
        return self._num_edges / len(self._out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, |E|={self.num_edges})"
        )
