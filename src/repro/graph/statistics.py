"""Graph statistics used by Table 2 and the dataset registry.

The paper's Table 2 reports ``|V|``, ``|E|``, average degree, and average
distance per dataset.  Average distance on large graphs is estimated by
sampling BFS sources, exactly as done in practice for the original datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.traversal import bfs_distances
from repro.utils.rng import ensure_rng

__all__ = [
    "GraphSummary",
    "connected_components",
    "largest_component_fraction",
    "average_distance",
    "effective_diameter",
    "clustering_coefficient",
    "degree_histogram",
    "summarize",
]


@dataclass(frozen=True)
class GraphSummary:
    """Table 2 row: the headline statistics of one network."""

    num_vertices: int
    num_edges: int
    average_degree: float
    average_distance: float

    def as_row(self) -> dict[str, float]:
        """Render as a report row (keys match the Table 2 headers)."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "avg. deg": round(self.average_degree, 3),
            "avg. dist": round(self.average_distance, 1),
        }


def connected_components(graph) -> list[list[int]]:
    """All connected components, each sorted, largest first."""
    adj = graph.adjacency()
    remaining = set(adj)
    components: list[list[int]] = []
    while remaining:
        root = next(iter(remaining))
        seen = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        components.append(sorted(seen))
        remaining -= seen
    components.sort(key=len, reverse=True)
    return components


def largest_component_fraction(graph) -> float:
    """Fraction of vertices in the largest connected component."""
    if graph.num_vertices == 0:
        raise GraphError("graph has no vertices")
    return len(connected_components(graph)[0]) / graph.num_vertices


def average_distance(
    graph,
    num_sources: int | None = None,
    rng: int | random.Random | None = None,
) -> float:
    """Mean shortest-path distance over reachable pairs.

    With ``num_sources=None`` every vertex is used as a BFS source (exact);
    otherwise ``num_sources`` sources are sampled uniformly, which is the
    standard estimator for the "avg dist" column of Table 2.
    """
    vertices = list(graph.vertices())
    if not vertices:
        raise GraphError("graph has no vertices")
    if num_sources is not None and num_sources < len(vertices):
        rng = ensure_rng(rng)
        sources = rng.sample(vertices, num_sources)
    else:
        sources = vertices
    total = 0
    pairs = 0
    for s in sources:
        dist = bfs_distances(graph, s)
        total += sum(dist.values())
        pairs += len(dist) - 1  # exclude the zero self-distance
    if pairs == 0:
        return 0.0
    return total / pairs


def effective_diameter(
    graph,
    percentile: float = 0.9,
    num_sources: int | None = 32,
    rng: int | random.Random | None = None,
) -> float:
    """Distance at which ``percentile`` of reachable pairs are connected.

    The standard robust alternative to the exact diameter on real
    networks (Leskovec et al.'s densification work, which the paper cites,
    reports shrinking *effective* diameters).  Estimated from sampled BFS
    sources like :func:`average_distance`; linear interpolation between
    the bracketing distances follows the usual definition.
    """
    if not 0.0 < percentile < 1.0:
        raise GraphError(f"percentile must be in (0, 1), got {percentile}")
    vertices = list(graph.vertices())
    if not vertices:
        raise GraphError("graph has no vertices")
    if num_sources is not None and num_sources < len(vertices):
        rng = ensure_rng(rng)
        sources = rng.sample(vertices, num_sources)
    else:
        sources = vertices
    counts: dict[int, int] = {}
    for s in sources:
        for d in bfs_distances(graph, s).values():
            if d > 0:
                counts[d] = counts.get(d, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return 0.0
    target = percentile * total
    cumulative = 0
    previous_cumulative = 0
    for d in sorted(counts):
        previous_cumulative = cumulative
        cumulative += counts[d]
        if cumulative >= target:
            # Interpolate within the step from d-ish coverage.
            step = cumulative - previous_cumulative
            fraction = (target - previous_cumulative) / step
            return (d - 1) + fraction
    return float(max(counts))


def clustering_coefficient(
    graph,
    num_samples: int | None = 1000,
    rng: int | random.Random | None = None,
) -> float:
    """Mean local clustering coefficient (sampled when ``num_samples`` set).

    The fraction of closed wedges around a vertex, averaged over vertices
    of degree ≥ 2 — the statistic that separates the clustered social
    stand-ins (Hollywood, Orkut) from web crawls in the dataset registry.
    """
    candidates = [v for v in graph.vertices() if graph.degree(v) >= 2]
    if not candidates:
        return 0.0
    if num_samples is not None and num_samples < len(candidates):
        rng = ensure_rng(rng)
        candidates = rng.sample(candidates, num_samples)
    adj = graph.adjacency()
    total = 0.0
    for v in candidates:
        neighbours = adj[v]
        k = len(neighbours)
        closed = sum(
            1
            for i, u in enumerate(neighbours)
            for w in neighbours[i + 1 :]
            if w in adj[u]  # membership in list; fine for sparse graphs
        )
        total += 2.0 * closed / (k * (k - 1))
    return total / len(candidates)


def degree_histogram(graph) -> dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    histogram: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return dict(sorted(histogram.items()))


def summarize(
    graph,
    num_sources: int | None = 32,
    rng: int | random.Random | None = None,
) -> GraphSummary:
    """Compute the Table 2 row for ``graph``."""
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        average_distance=average_distance(graph, num_sources=num_sources, rng=rng),
    )
