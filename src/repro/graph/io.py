"""Reading and writing graphs as edge lists.

The paper's datasets ship as whitespace-separated edge lists (SNAP / LAW /
KONECT conventions): one ``u v`` pair per line, ``#`` or ``%`` comments,
usually gzip-compressed for distribution.  These helpers parse that format
into the library's graph types and write it back (paths ending in ``.gz``
are compressed transparently), so users can drop in real datasets where
the reproduction uses synthetic stand-ins.
"""

from __future__ import annotations

import gzip
import os
from collections.abc import Iterable

from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.weighted import WeightedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_directed_edge_list",
    "read_weighted_edge_list",
    "write_weighted_edge_list",
]

_COMMENT_PREFIXES = ("#", "%")


def _open(path: str | os.PathLike, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_lines(path: str | os.PathLike, expected_fields: int) -> Iterable[list[str]]:
    with _open(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            fields = line.split()
            if len(fields) < expected_fields:
                raise GraphError(
                    f"{path}:{lineno}: expected at least {expected_fields} "
                    f"fields, got {len(fields)}: {line!r}"
                )
            yield fields


def read_edge_list(
    path: str | os.PathLike,
    deduplicate: bool = True,
    drop_self_loops: bool = True,
) -> DynamicGraph:
    """Read an undirected graph from a whitespace-separated edge list.

    Real-world edge lists routinely contain duplicate edges (both
    orientations listed) and self-loops; by default both are silently
    normalised away, matching how the paper treats its inputs ("we treated
    these networks as undirected and unweighted graphs").
    """
    graph = DynamicGraph()
    seen: set[tuple[int, int]] = set()
    for fields in _parse_lines(path, 2):
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            if drop_self_loops:
                continue
            raise GraphError(f"self-loop ({u}, {u}) in {path}")
        key = (u, v) if u < v else (v, u)
        if key in seen:
            if deduplicate:
                continue
            raise GraphError(f"duplicate edge {key} in {path}")
        seen.add(key)
        graph.add_vertex(u)
        graph.add_vertex(v)
        graph.add_edge(u, v)
    return graph


def write_edge_list(graph: DynamicGraph, path: str | os.PathLike) -> None:
    """Write an undirected graph as one ``u v`` line per edge (gzip if
    the name ends in ``.gz``)."""
    with _open(path, "w") as handle:
        handle.write(f"# undirected |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_directed_edge_list(path: str | os.PathLike) -> DynamicDiGraph:
    """Read a digraph from a whitespace-separated edge list."""
    graph = DynamicDiGraph()
    seen: set[tuple[int, int]] = set()
    for fields in _parse_lines(path, 2):
        u, v = int(fields[0]), int(fields[1])
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        graph.add_vertex(u)
        graph.add_vertex(v)
        graph.add_edge(u, v)
    return graph


def read_weighted_edge_list(path: str | os.PathLike) -> WeightedGraph:
    """Read a weighted graph from ``u v weight`` lines."""
    graph = WeightedGraph()
    seen: set[tuple[int, int]] = set()
    for fields in _parse_lines(path, 3):
        u, v, w = int(fields[0]), int(fields[1]), float(fields[2])
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        graph.add_vertex(u)
        graph.add_vertex(v)
        graph.add_edge(u, v, w)
    return graph


def write_weighted_edge_list(graph: WeightedGraph, path: str | os.PathLike) -> None:
    """Write a weighted graph as ``u v weight`` lines (gzip if the name
    ends in ``.gz``)."""
    with _open(path, "w") as handle:
        handle.write(f"# weighted |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")
