"""Replica workers: one full copy of the oracle per process.

A replica is an :class:`~repro.serving.server.OracleServer` plus cluster
semantics (:class:`ReplicaServer`):

* **`apply`** — the router's fan-out op: a batch of ``(seq, kind, u, v)``
  log records, applied through the single-writer
  :class:`~repro.serving.service.OracleService` (runs of consecutive
  insertions coalesce into one vectorized batch sweep, ``fast=True``) and
  acknowledged only once applied *and* published — the router's
  ``acked_seq`` for a replica is therefore always a state the replica can
  serve.  Records at or below the replica's ``applied_seq`` are skipped
  (idempotent redelivery); a sequence gap is refused (the replica must
  restart from checkpoint + WAL instead of silently forking).
* **`query` / `query_many` / `path` with `min_epoch`** — read-your-writes
  gating: the replica refuses to answer below the requested log position;
  read responses report the replica's ``applied_seq`` as their ``epoch``.
* **`checkpoint`** — persist a pinned snapshot as a
  ``save_oracle`` + ``{"log_seq": N}`` file (atomic rename), feeding WAL
  compaction.  The snapshot is immutable, so the save runs in an executor
  while the writer keeps applying.

:func:`build_replica` is the warm-start path (checkpoint → WAL suffix
replay → serving), shared byte-for-byte between the spawned process entry
:func:`run_replica` and the in-process servers the tests and benches use.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.cluster.wal import scan_wal, write_checkpoint
from repro.exceptions import ClusterError
from repro.obs.log import get_logger
from repro.serving.server import OracleServer
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent

__all__ = [
    "ReplicaSpec",
    "ReplicaServer",
    "build_replica",
    "replica_process_entry",
    "run_replica",
]

_APPLY_TIMEOUT = 300.0  # seconds an `apply` waits for the writer to publish


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 where the
    ``resource`` module is unavailable).  Reported per replica so the
    sharded cluster can show per-shard memory in ``repro top``."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs to boot (picklable: crosses the
    ``multiprocessing`` spawn boundary)."""

    name: str
    checkpoint_path: str
    wal_dir: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    workers: int | None = None
    max_batch: int = 128
    fast: bool = True
    delete_strategy: str = "partial"
    #: Landmark sharding: with ``num_shards > 1`` the replica restricts
    #: the restored oracle to shard ``shard_index``'s owned landmarks
    #: (:mod:`repro.cluster.shards`) before serving.  The checkpoint may
    #: be the full seed oracle or a previously written shard checkpoint
    #: — restriction is idempotent, so both warm-start identically.
    shard_index: int | None = None
    num_shards: int = 1


class ReplicaServer(OracleServer):
    """An :class:`OracleServer` that participates in a cluster."""

    obs_component = "replica"

    def __init__(
        self,
        service: OracleService,
        *,
        name: str = "replica",
        host: str = "127.0.0.1",
        port: int = 0,
        applied_seq: int = 0,
        checkpoint_path: str | None = None,
        metrics_port: int | None = None,
        shard_index: int | None = None,
        shard_meta: dict | None = None,
    ) -> None:
        super().__init__(service, host=host, port=port, metrics_port=metrics_port)
        self.name = name
        self._applied_seq = applied_seq
        self._checkpoint_path = checkpoint_path
        self.shard_index = shard_index
        self._shard_meta = shard_meta
        self._async_ops.update(
            {"apply": self._op_apply, "checkpoint": self._op_checkpoint}
        )
        seq_gauge = self._registry.gauge(
            "repro_replica_applied_seq",
            "Highest log seq this replica has applied and published.",
        )
        self._registry.on_collect(lambda: seq_gauge.set(self._applied_seq))

    @property
    def applied_seq(self) -> int:
        """Highest log seq applied *and* published (the replica's epoch)."""
        return self._applied_seq

    # ------------------------------------------------------------------
    # Cluster ops
    # ------------------------------------------------------------------
    async def _op_apply(self, request: dict) -> dict:
        events: list[UpdateEvent] = []
        last_accepted = self._applied_seq
        for raw in request["events"]:
            seq, kind, u, v = raw
            seq = int(seq)
            if seq <= self._applied_seq:
                continue  # redelivered (router reconnect); already applied
            if seq != last_accepted + 1:
                return {
                    "ok": False,
                    "error": (
                        f"log gap: expected seq {last_accepted + 1}, got {seq}; "
                        f"replica must restart from checkpoint"
                    ),
                    "applied_seq": self._applied_seq,
                }
            events.append(UpdateEvent(kind, (int(u), int(v))))
            last_accepted = seq
        if events:
            service = self._service
            service.submit_many(events)
            barrier = service.request_publish()
            loop = asyncio.get_running_loop()
            done = await loop.run_in_executor(None, barrier.wait, _APPLY_TIMEOUT)
            if not done:
                return {
                    "ok": False,
                    "error": "apply timed out waiting for the writer",
                    "applied_seq": self._applied_seq,
                }
            if service.degraded is not None:
                return {
                    "ok": False,
                    "error": f"replica degraded: {service.degraded}",
                    "applied_seq": self._applied_seq,
                }
            self._applied_seq = last_accepted
        return {
            "ok": True,
            "applied_seq": self._applied_seq,
            "epoch": self._applied_seq,
        }

    async def _op_checkpoint(self, request: dict) -> dict:
        path = request.get("path") or self._checkpoint_path
        if not path:
            return {"ok": False, "error": "no checkpoint path configured"}
        # Read the seq *before* pinning the snapshot: applied_seq only ever
        # advances after a publish, so the snapshot contains at least
        # everything up to seq_now and the meta may only understate —
        # replaying an already-applied suffix is harmless (see wal.py).
        seq_now = self._applied_seq
        snapshot = self._service.snapshot
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, write_checkpoint, snapshot, path, seq_now, self._shard_meta
        )
        return {"ok": True, "log_seq": seq_now, "path": str(path)}

    # ------------------------------------------------------------------
    # Read gating
    # ------------------------------------------------------------------
    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op in ("update", "updates"):
            # A write that bypasses the log would silently fork this
            # replica from the cluster (no seq, no fan-out) — the
            # byte-identical invariant only holds for logged events.
            return {
                "ok": False,
                "error": (
                    f"replica {self.name} accepts updates only from the "
                    f"cluster log (op 'apply'); send writes to the router"
                ),
            }
        if op in ("query", "query_many", "path"):
            # Capture before the base dispatch pins its snapshot: applies
            # bump applied_seq only after publishing, so the pinned
            # snapshot contains at least everything up to seq_now.
            seq_now = self._applied_seq
            min_epoch = request.get("min_epoch")
            if min_epoch is not None and seq_now < int(min_epoch):
                return {
                    "ok": False,
                    "error": (
                        f"replica {self.name} is at epoch {seq_now}, "
                        f"below the requested min_epoch {int(min_epoch)}"
                    ),
                    "epoch": seq_now,
                    "retryable": True,
                }
            response = super()._dispatch(request)
            if response.get("ok"):
                response["epoch"] = seq_now  # cluster epoch = log seq
            return response
        response = super()._dispatch(request)
        if op == "stats" and response.get("ok"):
            entry = {
                "name": self.name,
                "applied_seq": self._applied_seq,
                "rss_kb": _peak_rss_kb(),
            }
            if self.shard_index is not None:
                entry["shard"] = self.shard_index
            response["stats"]["replica"] = entry
        return response


def build_replica(spec: ReplicaSpec) -> ReplicaServer:
    """Warm-start a replica: checkpoint, then WAL suffix, then serve.

    The exact boot path a restarted worker takes — the convergence tests
    call it in-process to prove a crash + restart lands byte-identical to
    a sequential replay.  The returned server is not yet started.

    With ``spec.num_shards > 1`` the restored oracle is restricted to
    shard ``spec.shard_index``'s owned landmarks before the WAL replay:
    the shard engine repairs only the owned rows, so replaying the same
    suffix on every shard reconstructs the exact landmark partition of
    the sequential full-oracle replay.
    """
    from repro.utils.serialization import load_oracle_with_meta

    oracle, meta = load_oracle_with_meta(spec.checkpoint_path)
    applied = int(meta.get("log_seq", 0))
    shard_meta = None
    if spec.num_shards > 1:
        from repro.cluster.shards import ShardPlan, make_shard_oracle

        if spec.shard_index is None or not (
            0 <= spec.shard_index < spec.num_shards
        ):
            raise ClusterError(
                f"replica {spec.name}: shard_index {spec.shard_index!r} "
                f"invalid for num_shards={spec.num_shards}"
            )
        plan = ShardPlan.for_landmarks(oracle.landmarks, spec.num_shards)
        if "shard_plan" in meta and ShardPlan.from_meta(meta) != plan:
            raise ClusterError(
                f"replica {spec.name}: checkpoint shard plan does not match "
                f"the {spec.num_shards}-shard striping of its landmarks"
            )
        recorded_index = meta.get("shard_index")
        if recorded_index is not None and int(recorded_index) != spec.shard_index:
            raise ClusterError(
                f"replica {spec.name}: checkpoint belongs to shard "
                f"{recorded_index}, not {spec.shard_index}"
            )
        # The source oracle is discarded right here, so the shard may
        # take its graph by reference instead of copying it.
        oracle = make_shard_oracle(
            oracle, plan, spec.shard_index, copy_graph=False
        )
        shard_meta = {**plan.to_meta(), "shard_index": spec.shard_index}
    oracle.workers = spec.workers
    oracle.fast_updates = spec.fast
    service = OracleService(
        oracle,
        workers=spec.workers,
        max_batch=spec.max_batch,
        fast=spec.fast,
        delete_strategy=spec.delete_strategy,
    )
    if spec.wal_dir:
        records = scan_wal(spec.wal_dir, start_seq=applied + 1)
        if records:
            if records[0].seq > applied + 1:
                raise ClusterError(
                    f"replica {spec.name}: WAL starts at seq {records[0].seq} "
                    f"but the checkpoint covers only up to {applied}"
                )
            service.start()
            service.submit_many(record.event for record in records)
            service.flush()
            applied = records[-1].seq
    return ReplicaServer(
        service,
        name=spec.name,
        host=spec.host,
        port=spec.port,
        applied_seq=applied,
        checkpoint_path=spec.checkpoint_path,
        shard_index=spec.shard_index if spec.num_shards > 1 else None,
        shard_meta=shard_meta,
    )


def run_replica(spec: ReplicaSpec, conn=None) -> int:
    """Process entry point: boot from checkpoint + WAL, serve until
    SIGTERM/SIGINT, exit 0 on a clean drain.

    ``conn`` (a ``multiprocessing`` pipe end) receives the bound
    ``(host, port)`` once the socket is up — the supervisor assigns
    ephemeral ports, so the replica must report where it landed.
    """
    log = get_logger("replica")
    try:
        server = build_replica(spec)
    except Exception as exc:
        log.error("boot_failed", replica=spec.name, err=str(exc))
        if conn is not None:
            conn.close()
        return 1
    log.info("booted", replica=spec.name, applied_seq=server.applied_seq)

    def _report(started_server) -> None:
        if conn is not None:
            conn.send(started_server.address)
            conn.close()

    try:
        asyncio.run(server.run(on_started=_report))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


def replica_process_entry(spec: ReplicaSpec, conn=None) -> None:
    """``multiprocessing.Process`` target wrapping :func:`run_replica`.

    A Process *discards* its target's return value; raising SystemExit
    is what actually sets the child's exit code, so a failed boot shows
    up as exit code 1 (the supervisor and smoke checks assert on it)
    instead of masquerading as a clean shutdown.
    """
    raise SystemExit(run_replica(spec, conn))


if __name__ == "__main__":  # pragma: no cover - manual debugging aid
    from repro import knobs

    raise SystemExit(run_replica(ReplicaSpec(**knobs.get("REPRO_REPLICA_SPEC"))))
