"""`UpdateLog` — the cluster's append-only, epoch-indexed update log.

Every write accepted by the :class:`~repro.cluster.router.ClusterRouter`
is assigned the next **log sequence number** (the cluster's epoch: seq
``N`` names the graph state after events ``1..N``) and appended here
before it is acknowledged.  Replicas apply the log in order, so the log
*is* the replication protocol: any process that replays the same prefix
holds the same graph — and, because IncHL+/DecHL maintain the canonical
minimal labelling, the same labelling byte for byte (docs/DESIGN.md §9).

Durability is optional and tunable.  With a directory, records append to
NDJSON **segment files** (``wal-<firstseq>.ndjson``, one JSON array
``[seq, kind, u, v]`` per line, rotated every ``segment_records``)
under an fsync policy:

* ``"always"`` — flush + fsync before every append acknowledges (each
  acked write survives a host crash);
* ``"batch"`` (default) — flush per append, fsync every
  ``fsync_every`` records and on close (bounded loss window, far fewer
  forced writes);
* ``"never"`` — flush only; the OS decides when bytes hit disk.

A torn final line (crash mid-append) is tolerated on replay; corruption
anywhere else raises :class:`~repro.exceptions.ClusterError` — better to
refuse than to fork replicas.

**Compaction** folds a prefix of the log into a ``save_oracle``
checkpoint (:func:`write_checkpoint` stamps ``meta={"log_seq": N}``),
after which :meth:`UpdateLog.compact` drops the covered segments; a
replica warm-starts from the checkpoint and replays only the suffix
(:func:`scan_wal` reads segments without taking ownership, so replicas
replay a WAL the router is still appending to).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import monotonic
from typing import Iterable, NamedTuple

from repro.exceptions import ClusterError
from repro.workloads.streams import UpdateEvent

__all__ = [
    "FSYNC_POLICIES",
    "LogRecord",
    "UpdateLog",
    "scan_wal",
    "write_checkpoint",
    "restore_checkpoint",
]

FSYNC_POLICIES = ("always", "batch", "never")

_KINDS = ("insert", "delete")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".ndjson"


class LogRecord(NamedTuple):
    """One logged update: ``seq`` is the cluster epoch it produces."""

    seq: int
    kind: str
    u: int
    v: int

    @property
    def event(self) -> UpdateEvent:
        return UpdateEvent(self.kind, (self.u, self.v))


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_files(directory: Path) -> list[Path]:
    """Segment files in ascending first-seq order."""
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(_SEGMENT_PREFIX) and p.name.endswith(_SEGMENT_SUFFIX)
    )


def _parse_record(raw) -> LogRecord:
    seq, kind, u, v = raw
    if kind not in _KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    return LogRecord(int(seq), kind, int(u), int(v))


def scan_wal(directory: str | os.PathLike, start_seq: int = 1) -> list[LogRecord]:
    """Read every record with ``seq >= start_seq`` from a WAL directory.

    Safe against a concurrent appender: a torn trailing line of the last
    segment is ignored (it was never acknowledged under any fsync
    policy).  Corruption elsewhere, or a sequence gap between records,
    raises :class:`ClusterError`.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    records: list[LogRecord] = []
    segments = _segment_files(directory)
    last_seen: int | None = None
    for index, segment in enumerate(segments):
        is_last_segment = index == len(segments) - 1
        with open(segment, "rb") as handle:
            lines = handle.read().split(b"\n")
        for line_no, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = _parse_record(json.loads(line))
            except (ValueError, TypeError, json.JSONDecodeError) as exc:
                at_tail = is_last_segment and line_no == len(lines) - 1
                if at_tail:  # torn final line: crash mid-append, unacked
                    break
                raise ClusterError(
                    f"{segment}:{line_no + 1}: corrupt WAL record: {exc}"
                ) from exc
            if last_seen is not None and record.seq != last_seen + 1:
                raise ClusterError(
                    f"{segment}: WAL sequence gap: {last_seen} -> {record.seq}"
                )
            last_seen = record.seq
            if record.seq >= start_seq:
                records.append(record)
    return records


class UpdateLog:
    """Append-only, epoch-indexed log of update events.

    In-memory always (fan-out and catch-up read from memory); durable to
    NDJSON segments when constructed with a ``directory``.  Single
    writer: exactly one router process appends (the asyncio loop), any
    number of replicas replay via :func:`scan_wal`.

    >>> log = UpdateLog()  # in-memory (tests, benches without a disk)
    >>> log.append("insert", 0, 1)
    1
    >>> log.append_events([("insert", 1, 2), ("delete", 0, 1)])
    3
    >>> [r.seq for r in log.read(2)]
    [2, 3]
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        fsync: str = "batch",
        segment_records: int = 4096,
        fsync_every: int = 64,
        base_seq: int = 0,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ClusterError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if segment_records < 1:
            raise ClusterError(f"segment_records must be >= 1, got {segment_records}")
        self._fsync = fsync
        self._segment_records = segment_records
        self._fsync_every = max(1, fsync_every)
        self._unsynced = 0
        self._dir = Path(directory) if directory is not None else None
        self._handle = None
        self._handle_records = 0
        #: Seq of the last record dropped by compaction: in-memory records
        #: cover ``base + 1 .. head``.
        self._base = base_seq
        self._records: list[LogRecord] = []
        #: ``(monotonic_ts, bytes)`` of the previous :meth:`stats` size
        #: reading, plus the last derived growth rate — so WAL bloat is a
        #: rate, not just a segment count.
        self._size_sample: tuple[float, int] | None = None
        self._growth_bytes_per_s: float | None = None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            _repair_torn_tail(self._dir)
            existing = scan_wal(self._dir)
            if existing:
                first = existing[0].seq
                if first > base_seq + 1:
                    # Segments start past the checkpoint the caller knows
                    # about: records in between are gone for good.
                    raise ClusterError(
                        f"{self._dir}: WAL starts at seq {first} but the "
                        f"checkpoint covers only up to {base_seq}"
                    )
                self._records = [r for r in existing if r.seq > base_seq]
            self._base = base_seq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Seq of the newest record (``base`` when the log is empty)."""
        return self._records[-1].seq if self._records else self._base

    @property
    def base(self) -> int:
        """Seq up to (and including) which the log has been compacted."""
        return self._base

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def directory(self) -> Path | None:
        return self._dir

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> dict:
        """On-disk footprint and position summary for telemetry: ``head``
        and ``base`` seqs plus the number of segment files and their total
        bytes (both 0 for an in-memory log).

        ``wal_growth_bytes_per_s`` is derived from two successive reads
        (the byte delta over the elapsed monotonic time): ``None`` on the
        first call, a rate thereafter — negative after a compaction
        shrinks the log.  Back-to-back calls (under ~50 ms apart) reuse
        the previous rate rather than derive one from a degenerate
        interval.
        """
        segments = 0
        total_bytes = 0
        if self._dir is not None:
            for path in _segment_files(self._dir):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # racing a compaction's unlink
                segments += 1
        now = monotonic()
        if self._size_sample is None:
            self._size_sample = (now, total_bytes)
        else:
            prev_ts, prev_bytes = self._size_sample
            elapsed = now - prev_ts
            if elapsed >= 0.05:
                self._growth_bytes_per_s = round(
                    (total_bytes - prev_bytes) / elapsed, 3
                )
                self._size_sample = (now, total_bytes)
        return {
            "head": self.head,
            "base": self.base,
            "segments": segments,
            "bytes": total_bytes,
            "wal_growth_bytes_per_s": self._growth_bytes_per_s,
        }

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, kind: str, u: int, v: int) -> int:
        """Append one event; returns its assigned seq (the new head)."""
        return self.append_events([(kind, u, v)])

    def append_events(self, events: Iterable[tuple[str, int, int]]) -> int:
        """Append a burst atomically w.r.t. seq assignment; returns the
        new head (unchanged if ``events`` is empty)."""
        records = []
        seq = self.head
        for kind, u, v in events:
            if kind not in _KINDS:
                raise ClusterError(f"unknown event kind {kind!r}")
            seq += 1
            records.append(LogRecord(seq, kind, int(u), int(v)))
        if not records:
            return self.head
        if self._dir is not None:
            self._write_records(records)
        self._records.extend(records)
        return seq

    def _write_records(self, records: list[LogRecord]) -> None:
        for record in records:
            if self._handle is None:
                path = _segment_path(self._dir, record.seq)
                self._handle = open(path, "ab")
                self._handle_records = 0
            self._handle.write(
                json.dumps(list(record), separators=(",", ":")).encode("utf-8")
                + b"\n"
            )
            self._handle_records += 1
            if self._handle_records >= self._segment_records:
                self._rotate()
        self._unsynced += len(records)
        if self._handle is not None:
            self._handle.flush()
            if self._fsync == "always" or (
                self._fsync == "batch" and self._unsynced >= self._fsync_every
            ):
                self.sync()

    def _rotate(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.flush()
            if self._fsync != "never":
                os.fsync(handle.fileno())
            handle.close()
        self._unsynced = 0

    def sync(self) -> None:
        """Force dirty bytes to disk (no-op for in-memory logs)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, start_seq: int, limit: int | None = None) -> list[LogRecord]:
        """Records from ``start_seq`` (inclusive) onwards, oldest first.

        Raises :class:`ClusterError` when ``start_seq`` falls below the
        compaction base — those records only exist folded into the
        checkpoint now.

        Safe against a concurrent append/compaction on another thread
        (the router offloads file I/O to an executor): the record list is
        snapshotted by reference — compaction *rebinds* it, never mutates
        it in place — and the slice index comes from that snapshot's own
        first seq, not from a separately-read base.
        """
        records = self._records  # local ref: immune to rebinding
        if start_seq <= self._base:
            raise ClusterError(
                f"records below seq {self._base + 1} were compacted away "
                f"(requested {start_seq}); restart from the checkpoint"
            )
        if not records:
            return []
        index = start_seq - records[0].seq
        if index < 0:  # pragma: no cover - compaction race window
            raise ClusterError(
                f"records below seq {records[0].seq} were compacted away "
                f"(requested {start_seq}); restart from the checkpoint"
            )
        if limit is None:
            return records[index:]
        return records[index : index + limit]

    def events_since(self, seq: int) -> list[UpdateEvent]:
        """The events after ``seq``, ready to feed an oracle service."""
        return [record.event for record in self.read(seq + 1)]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, through_seq: int) -> int:
        """Drop records (and whole segments) up to ``through_seq``.

        Call only after a checkpoint covering ``through_seq`` is safely on
        disk (:func:`write_checkpoint`) **and** every replica has acked at
        least that far — the supervisor enforces both.  Returns how many
        in-memory records were dropped.  Partially-covered segments are
        kept whole: replay filters by seq, so overlap is harmless.
        """
        if through_seq <= self._base:
            return 0
        if through_seq > self.head:
            raise ClusterError(
                f"cannot compact through {through_seq}: head is {self.head}"
            )
        dropped = through_seq - self._base
        # Base first, then rebind the (never-mutated) record list: a
        # concurrent reader on another thread either sees the old list
        # (indexed by its own first seq) or the new one — `head` never
        # appears to regress mid-compaction.
        self._base = through_seq
        self._records = self._records[dropped:]
        if self._dir is not None:
            segments = _segment_files(self._dir)
            # A segment is deletable when the next segment starts at or
            # below through_seq + 1 (i.e. every record in it is covered).
            for i, segment in enumerate(segments):
                next_first = (
                    _segment_first_seq(segments[i + 1])
                    if i + 1 < len(segments)
                    else None
                )
                if next_first is not None and next_first <= through_seq + 1:
                    segment.unlink()
                else:
                    break
        return dropped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync (policy permitting) and close the active segment
        (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.flush()
            if self._fsync != "never":
                os.fsync(handle.fileno())
            handle.close()
        self._unsynced = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._dir) if self._dir else "memory"
        return (
            f"UpdateLog({where}, base={self._base}, head={self.head}, "
            f"fsync={self._fsync})"
        )


def _segment_first_seq(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _repair_torn_tail(directory: Path) -> None:
    """Truncate a torn (newline-less) final line off the newest segment.

    Run by the log *owner* on open: readers merely tolerate the torn tail
    (:func:`scan_wal`), but leaving it in place would strand a corrupt
    line mid-log once a new segment starts after it.
    """
    segments = _segment_files(directory)
    if not segments:
        return
    last = segments[-1]
    data = last.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when no complete line survived
    with open(last, "r+b") as handle:
        handle.truncate(keep)
    if keep == 0:
        last.unlink()


def write_checkpoint(
    oracle_like,
    path: str | os.PathLike,
    log_seq: int,
    extra_meta: dict | None = None,
) -> None:
    """Atomically persist an oracle (or a pinned
    :class:`~repro.serving.snapshot.OracleSnapshot`) as a checkpoint
    covering log position ``log_seq``.

    Written to a temporary sibling first, then ``os.replace``d into
    place, so a crash mid-write never clobbers the previous checkpoint.
    ``log_seq`` may *understate* what the state contains (a replica
    checkpoints a moving target): replaying already-applied events is
    harmless — a duplicate insert or absent-edge delete is rejected
    deterministically, and re-applied survivors land on the same
    canonical minimal labelling.

    ``extra_meta`` merges additional keys into the file's meta dict —
    the sharded cluster records the shard plan
    (:meth:`repro.cluster.shards.ShardPlan.to_meta`) so a restart can
    verify it restores the same landmark partition.
    """
    from repro.utils.serialization import save_oracle

    path = Path(path)
    meta: dict = {"log_seq": int(log_seq)}
    if extra_meta:
        meta.update(extra_meta)
    tmp = path.parent / ("~" + path.name)  # same suffix => same compression
    save_oracle(oracle_like, tmp, meta=meta)
    os.replace(tmp, path)


def restore_checkpoint(path: str | os.PathLike):
    """Load a checkpoint; returns ``(oracle, log_seq)``.

    Plain ``save_oracle`` files (no meta) restore at ``log_seq == 0`` —
    the full log replays on top.
    """
    from repro.utils.serialization import load_oracle_with_meta

    oracle, meta = load_oracle_with_meta(path)
    return oracle, int(meta.get("log_seq", 0))
