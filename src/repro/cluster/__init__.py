"""Replicated multi-process serving: one writer log, N oracle replicas.

A single Python process caps aggregate read throughput far below the
"heavy traffic" target no matter how cheap each query is — the GIL
serialises the label merges.  This package scales *reads* horizontally
while keeping the paper's update semantics exact (docs/DESIGN.md §9):

* :mod:`repro.cluster.wal` — :class:`UpdateLog`, the append-only,
  epoch-indexed event log (optional on-disk NDJSON WAL with a
  configurable fsync policy), replayable from any offset and compactable
  into a ``save_oracle`` checkpoint;
* :mod:`repro.cluster.replica` — :class:`ReplicaServer` /
  :func:`run_replica`, a spawned process that warm-starts from
  checkpoint + WAL replay, applies batched updates through the
  vectorized fast path, and serves the standard NDJSON query protocol
  with per-request ``min_epoch`` gating;
* :mod:`repro.cluster.router` — :class:`ClusterRouter`, the asyncio
  front door speaking the same client protocol: writes append to the log
  and fan out to every replica, reads route round-robin over caught-up
  replicas, stats aggregate across the fleet;
* :mod:`repro.cluster.supervisor` — :class:`ClusterSupervisor`, process
  lifecycle (spawn, health-check, restart, catch-up, WAL compaction) and
  the ``python -m repro serve-cluster`` entry point;
* :mod:`repro.cluster.shards` — :class:`ShardPlan` /
  :func:`make_shard_oracle`, deterministic landmark sharding
  (docs/DESIGN.md §12): N shard groups each hold only their owned
  landmarks' label rows, updates repair shard-locally, and the router
  scatter-gathers reads with an element-wise min reduction that stays
  globally exact.

Every replica applies the same log through the same deterministic
validation, and IncHL+/DecHL maintain the *canonical minimal* labelling
— so all replicas (and any sequential :class:`~repro.core.dynamic.DynamicHCL`
replaying the log) hold byte-identical state.
"""

from repro.cluster.replica import ReplicaServer, ReplicaSpec, build_replica, run_replica
from repro.cluster.router import ClusterRouter
from repro.cluster.shards import ShardPlan, make_shard_oracle
from repro.cluster.supervisor import ClusterSupervisor, ReplicaWorker
from repro.cluster.wal import (
    LogRecord,
    UpdateLog,
    restore_checkpoint,
    scan_wal,
    write_checkpoint,
)

__all__ = [
    "ClusterRouter",
    "ClusterSupervisor",
    "LogRecord",
    "ReplicaServer",
    "ReplicaSpec",
    "ReplicaWorker",
    "ShardPlan",
    "UpdateLog",
    "build_replica",
    "make_shard_oracle",
    "restore_checkpoint",
    "run_replica",
    "scan_wal",
    "write_checkpoint",
]
