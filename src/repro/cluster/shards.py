"""Deterministic landmark -> shard assignment for the sharded cluster.

A :class:`ShardPlan` stripes the oracle's landmark list across ``N``
shards by position (``shard_of(k-th landmark) = k % N``): deterministic
for a given landmark order, balanced to within one landmark per shard,
and — because landmark order is part of every ``save_oracle`` file —
derivable from any checkpoint.  The plan is also persisted explicitly in
each shard checkpoint's meta (:meth:`ShardPlan.to_meta`), so a restart
can verify the files on disk describe the partition it is about to
serve rather than silently mixing shards from different deployments.

:func:`make_shard_oracle` is the offline counterpart of what each shard
replica does at warm start: restrict the full labelling to a shard's
owned landmarks and wrap it in a shard-mode
:class:`~repro.core.dynamic.DynamicHCL` whose updates repair only the
owned rows and whose queries are shard-local
(:mod:`repro.core.sharding`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["ShardPlan", "make_shard_oracle"]


@dataclass(frozen=True)
class ShardPlan:
    """Landmark partition for an ``N``-shard cluster.

    >>> plan = ShardPlan.for_landmarks([10, 11, 12, 13, 14], 2)
    >>> plan.owned(0), plan.owned(1)
    ([10, 12, 14], [11, 13])
    >>> plan.shard_of(13)
    1
    >>> ShardPlan.from_meta(plan.to_meta()) == plan
    True
    """

    landmarks: tuple[int, ...]
    num_shards: int

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {self.num_shards}")
        if len(set(self.landmarks)) != len(self.landmarks):
            raise ReproError("shard plan landmarks must be unique")
        if self.num_shards > max(1, len(self.landmarks)):
            raise ReproError(
                f"{self.num_shards} shards for {len(self.landmarks)} "
                f"landmarks would leave empty shards"
            )

    @classmethod
    def for_landmarks(
        cls, landmarks: Sequence[int], num_shards: int
    ) -> "ShardPlan":
        """Stripe ``landmarks`` (selection order) across ``num_shards``."""
        return cls(tuple(int(r) for r in landmarks), int(num_shards))

    def shard_of(self, r: int) -> int:
        """The shard index owning landmark ``r``."""
        try:
            return self.landmarks.index(r) % self.num_shards
        except ValueError:
            raise ReproError(f"{r} is not a landmark of this plan") from None

    def owned(self, index: int) -> list[int]:
        """Landmarks owned by shard ``index``, in selection order."""
        if not 0 <= index < self.num_shards:
            raise ReproError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        return [
            r
            for k, r in enumerate(self.landmarks)
            if k % self.num_shards == index
        ]

    def assignment(self) -> list[list[int]]:
        """Owned landmark lists for every shard, by shard index."""
        return [self.owned(i) for i in range(self.num_shards)]

    def to_meta(self) -> dict:
        """JSON-encodable form for checkpoint meta (``{"shard_plan": ...}``)."""
        return {
            "shard_plan": {
                "num_shards": self.num_shards,
                "landmarks": list(self.landmarks),
                "assignment": self.assignment(),
            }
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_meta` output (or a checkpoint's
        meta dict); validates the recorded assignment is the striped one.
        """
        payload = meta.get("shard_plan")
        if not payload:
            raise ReproError("meta carries no shard_plan")
        plan = cls.for_landmarks(payload["landmarks"], payload["num_shards"])
        recorded = [list(map(int, owned)) for owned in payload["assignment"]]
        if recorded != plan.assignment():
            raise ReproError(
                "checkpoint shard assignment does not match the striped "
                "plan for its landmark order"
            )
        return plan


def make_shard_oracle(oracle, plan: ShardPlan, index: int, *, copy_graph: bool = True):
    """Shard ``index``'s oracle: full graph, owned label rows only.

    ``oracle`` is an unsharded :class:`~repro.core.dynamic.DynamicHCL`
    (typically just restored from the seed checkpoint).  The restriction
    is a pure function of the labelling, so every shard derived from the
    same checkpoint and replaying the same WAL suffix reaches the same
    state regardless of process or host.  ``copy_graph=False`` reuses
    the oracle's graph by reference — only safe when the source oracle
    is discarded (the replica warm-start path); in-process multi-shard
    setups must keep the default so each shard mutates its own graph.
    """
    from repro.core.dynamic import DynamicHCL
    from repro.core.sharding import restrict_labelling

    if list(plan.landmarks) != oracle.labelling.landmarks:
        raise ReproError(
            "shard plan landmarks do not match the oracle's landmark list"
        )
    owned = plan.owned(index)
    graph = oracle.graph.copy() if copy_graph else oracle.graph
    return DynamicHCL(
        graph,
        restrict_labelling(oracle.labelling, owned),
        workers=oracle.workers,
        owned_landmarks=owned,
    )
