"""`ClusterRouter` — one front door for N replicated oracle processes.

Speaks the exact client protocol of :mod:`repro.serving.server` (a
:class:`~repro.serving.client.ServingClient` cannot tell a router from a
single node), but:

* **writes** append to the :class:`~repro.cluster.wal.UpdateLog` (durable
  per its fsync policy) and are acknowledged with the assigned log seq as
  ``epoch`` — the token a client passes back as ``min_epoch`` for
  read-your-writes.  Fan-out is asynchronous: one **pump task per
  replica** streams the log suffix ``acked_seq+1 .. head`` in batches and
  advances ``acked_seq`` on each applied-and-published acknowledgement.
  The same pump performs catch-up — a replica that reconnects (or
  restarts from an older checkpoint) is simply a replica whose
  ``acked_seq`` is further behind.
* **reads** are routed round-robin over the healthy replicas whose
  ``acked_seq`` satisfies the request's ``min_epoch`` (laggards beyond
  ``max_stale`` are skipped while fresher replicas exist).  Request and
  response lines are forwarded *verbatim* — the router never re-encodes
  the hot path.  If no replica is caught up yet the read parks (bounded
  by ``read_timeout``) until a pump acks; a ``min_epoch`` beyond the log
  head is rejected outright — it names a write that never happened.
* **stats** aggregates :class:`~repro.serving.metrics.ServiceMetrics`
  across replicas (counts and qps add, tails take the max) next to the
  router's own log/lag/routing counters; **snapshot** drains: it returns
  once every registered replica has acked the current head.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter

from repro.cluster.wal import UpdateLog
from repro.exceptions import ClusterError
from repro.obs.exporter import CONTENT_TYPE
from repro.obs.timeseries import peak_rss_kb
from repro.obs.trace import get_recorder, span
from repro.serving.metrics import ServiceMetrics, merge_summaries
from repro.serving.server import LineServer, decode_line

__all__ = ["ClusterRouter"]

_MAX_LINE = 1 << 20
_DRAIN_TIMEOUT = 60.0  # seconds a `snapshot` op waits for replicas to catch up
_VALID_KINDS = ("insert", "delete")


def _valid_vertex_id(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def _min_distance(values):
    """UNREACH-aware element-wise min: ``None`` encodes ``inf`` on the
    wire, so it loses to any finite distance and survives only when every
    shard reports unreachable."""
    finite = [v for v in values if v is not None]
    return min(finite) if finite else None


class _ReplicaLink:
    """Router-side state for one replica."""

    __slots__ = (
        "name", "host", "port", "shard", "generation", "acked_seq", "healthy",
        "unhealthy_since", "last_error", "rss_kb", "kick", "query_lock",
        "query_conn", "pump_task",
    )

    def __init__(self, name: str, host: str, port: int, shard: int = 0) -> None:
        self.name = name
        self.host = host
        self.port = port
        #: Shard-group index (always 0 on an unsharded cluster).
        self.shard = shard
        #: Last observed peak RSS of the replica process (KiB; 0 until a
        #: stats round-trip reports it).
        self.rss_kb = 0
        #: Bumped on address changes so a stale pump iteration can tell it
        #: has been superseded and must exit.
        self.generation = 0
        #: Highest log seq the replica acknowledged as applied+published;
        #: -1 until the first handshake.
        self.acked_seq = -1
        self.healthy = False
        self.unhealthy_since: float | None = None
        self.last_error: str | None = None
        self.kick = asyncio.Event()
        self.query_lock = asyncio.Lock()
        self.query_conn: tuple | None = None
        self.pump_task: asyncio.Task | None = None


class ClusterRouter(LineServer):
    """Asyncio front door: WAL writer, fan-out pumps, read routing."""

    obs_component = "router"

    def __init__(
        self,
        log: UpdateLog,
        host: str = "127.0.0.1",
        port: int = 8360,
        *,
        fanout_batch: int = 512,
        read_timeout: float = 5.0,
        apply_timeout: float = 300.0,
        retry_interval: float = 0.2,
        max_stale: int | None = 4096,
        shards: int = 1,
        metrics: ServiceMetrics | None = None,
        metrics_port: int | None = None,
        history_path: str | None = None,
        history_interval: float = 5.0,
        history_max_points: int = 2048,
        slos=None,
    ) -> None:
        super().__init__(
            host,
            port,
            metrics_port=metrics_port,
            history_path=history_path,
            history_interval=history_interval,
            history_max_points=history_max_points,
            slos=slos,
        )
        self._log = log
        self._links: dict[str, _ReplicaLink] = {}
        self._fanout_batch = fanout_batch
        self._read_timeout = read_timeout
        self._apply_timeout = apply_timeout
        self._retry_interval = retry_interval
        self._max_stale = max_stale
        #: Landmark shard groups.  With ``shards > 1`` each replica is
        #: registered under a shard index; ``query``/``query_many``
        #: scatter to one caught-up replica per group and reduce the
        #: element-wise min, while writes still append once and fan out
        #: to every replica of every group.
        self._shards = max(1, int(shards))
        self.metrics = metrics or ServiceMetrics()
        #: Fair round-robin cursors, one per shard group: each names the
        #: next position to try in the stable sorted membership, so
        #: rotation stays uniform even when eligibility fluctuates.
        self._rr: dict[int, int] = {}
        self._reads_routed = 0
        self._writes_appended = 0
        self._fanout_batches = 0
        self._ack_event: asyncio.Event | None = None
        #: Serializes log mutation (seq assignment order == append order)
        #: while the blocking file I/O itself runs in an executor, so an
        #: fsync never stalls read routing on the event loop.
        self._append_lock = asyncio.Lock()
        self._ops = {
            "query": self._op_read,
            "query_many": self._op_read,
            "path": self._op_read,
            "update": self._op_update,
            "updates": self._op_updates,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "spans": self._op_spans,
            "profile": self._op_profile,
            "history": self._op_history,
            "alerts": self._op_alerts,
            "snapshot": self._op_snapshot,
            "ping": self._op_ping,
        }
        self._register_obs()

    def _register_obs(self) -> None:
        """Wire cluster health into this router's metrics registry.

        The router's own latency histograms (append / routed-read) are
        attached; replication lag, health, WAL footprint and routing
        counters refresh lazily on collect — scrapes pay, the hot path
        never does.
        """
        reg = self._registry
        reg.histogram(
            "repro_router_read_latency_seconds",
            "Routed read latency through the router (seconds).",
        ).attach(self.metrics.queries.hist)
        reg.histogram(
            "repro_router_append_latency_seconds",
            "WAL append latency for accepted writes (seconds).",
        ).attach(self.metrics.updates.hist)
        lag_family = reg.gauge(
            "repro_replica_lag",
            "Log entries behind the WAL head, per replica.",
            labelnames=("replica",),
        )
        healthy_family = reg.gauge(
            "repro_replica_healthy",
            "1 while the replica is routable, 0 otherwise.",
            labelnames=("replica",),
        )
        log_head = reg.gauge("repro_wal_head_seq", "Highest appended log seq.")
        log_base = reg.gauge(
            "repro_wal_base_seq", "Oldest retained log seq (compaction floor)."
        )
        segments = reg.gauge("repro_wal_segments", "Live WAL segment files.")
        wal_bytes = reg.gauge("repro_wal_bytes", "Bytes across live WAL segments.")
        wal_growth = reg.gauge(
            "repro_wal_growth_bytes_per_s",
            "WAL growth rate between the last two stats reads (bytes/s; "
            "negative after compaction).",
        )
        reads = reg.counter("repro_reads_routed_total", "Reads routed to replicas.")
        writes = reg.counter("repro_writes_appended_total", "Events appended to the WAL.")
        batches = reg.counter("repro_fanout_batches_total", "Apply batches pumped to replicas.")
        shard_lag_family = reg.gauge(
            "repro_shard_lag",
            "Log entries the freshest replica of the shard group is behind.",
            labelnames=("shard",),
        )
        shard_rss_family = reg.gauge(
            "repro_shard_rss_kb",
            "Peak replica RSS observed in the shard group (KiB).",
            labelnames=("shard",),
        )

        def _collect() -> None:
            head = self._log.head
            shard_lags: dict[int, int] = {}
            shard_rss: dict[int, int] = {}
            for link in list(self._links.values()):
                lag = max(0, head - link.acked_seq) if link.acked_seq >= 0 else head - self._log.base
                lag_family.labels(replica=link.name).set(lag)
                healthy_family.labels(replica=link.name).set(1 if link.healthy else 0)
                best = shard_lags.get(link.shard)
                shard_lags[link.shard] = lag if best is None else min(best, lag)
                shard_rss[link.shard] = max(
                    shard_rss.get(link.shard, 0), link.rss_kb
                )
            for shard, lag in shard_lags.items():
                shard_lag_family.labels(shard=str(shard)).set(lag)
                shard_rss_family.labels(shard=str(shard)).set(shard_rss[shard])
            wal = self._log.stats()
            log_head.set(wal["head"])
            log_base.set(wal["base"])
            segments.set(wal["segments"])
            wal_bytes.set(wal["bytes"])
            if wal["wal_growth_bytes_per_s"] is not None:
                wal_growth.set(wal["wal_growth_bytes_per_s"])
            reads.set(self._reads_routed)
            writes.set(self._writes_appended)
            batches.set(self._fanout_batches)

        reg.on_collect(_collect)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def log(self) -> UpdateLog:
        return self._log

    @property
    def replica_names(self) -> list[str]:
        return sorted(self._links)

    @property
    def num_shards(self) -> int:
        return self._shards

    def replica_states(self) -> dict[str, dict]:
        """Per-replica routing state (the supervisor's health input)."""
        head = self._log.head
        states = {}
        for link in self._links.values():
            states[link.name] = {
                "host": link.host,
                "port": link.port,
                "shard": link.shard,
                "healthy": link.healthy,
                "acked_seq": link.acked_seq,
                "lag": max(0, head - link.acked_seq) if link.acked_seq >= 0 else None,
                "unhealthy_since": link.unhealthy_since,
                "last_error": link.last_error,
            }
        return states

    # ------------------------------------------------------------------
    # Replica membership (run on the router's loop; *_from_thread wrappers
    # serve callers on other threads — tests, threaded supervisors)
    # ------------------------------------------------------------------
    async def add_replica(
        self, name: str, host: str, port: int, shard: int = 0
    ) -> None:
        """Register (or re-address) a replica and start pumping to it.

        ``shard`` places the replica in a shard group (ignored stays 0 on
        an unsharded cluster); a re-address keeps the original group.
        """
        if not 0 <= shard < self._shards:
            raise ClusterError(
                f"shard {shard} out of range [0, {self._shards}) for "
                f"replica {name!r}"
            )
        link = self._links.get(name)
        if link is not None:
            await self._readdress(link, host, port)
            return
        link = _ReplicaLink(name, host, port, shard=shard)
        self._links[name] = link
        link.pump_task = asyncio.get_running_loop().create_task(
            self._pump(link, link.generation), name=f"pump-{name}"
        )

    async def set_replica_address(
        self, name: str, host: str, port: int, shard: int = 0
    ) -> None:
        """Point an existing replica name at a new process (post-restart).

        ``shard`` only matters for a name not seen before; a re-address
        keeps the link's original shard group.
        """
        link = self._links.get(name)
        if link is None:
            await self.add_replica(name, host, port, shard=shard)
            return
        await self._readdress(link, host, port)

    async def remove_replica(self, name: str) -> None:
        link = self._links.pop(name, None)
        if link is None:
            return
        await self._retire_link(link)

    async def _readdress(self, link: _ReplicaLink, host: str, port: int) -> None:
        await self._retire_link(link)
        link.host, link.port = host, port
        link.acked_seq = -1
        self._mark_unhealthy(link, "reconnecting after re-address")
        link.pump_task = asyncio.get_running_loop().create_task(
            self._pump(link, link.generation), name=f"pump-{link.name}"
        )

    async def _retire_link(self, link: _ReplicaLink) -> None:
        task, link.pump_task = link.pump_task, None
        # Invalidate the pump's loop condition *before* cancelling: on
        # Python <= 3.11, asyncio.wait_for can swallow a cancellation that
        # races its own completion (bpo-42130), and a pump that absorbed
        # the cancel would otherwise run — and be awaited — forever.  With
        # the generation bumped it exits at its next condition check even
        # if the CancelledError is lost; the kick wakes an idle wait now.
        link.generation += 1
        link.kick.set()
        if task is not None:
            task.cancel()
            try:
                # wait_for re-cancels on timeout — a second chance for a
                # swallowed cancel; never hang a stop/remove on one task.
                await asyncio.wait_for(task, 5.0)
            except (asyncio.CancelledError, TimeoutError, asyncio.TimeoutError):
                pass
        await self._close_query_conn(link)
        link.healthy = False

    def add_replica_from_thread(
        self, name: str, host: str, port: int, shard: int = 0
    ) -> None:
        asyncio.run_coroutine_threadsafe(
            self.add_replica(name, host, port, shard=shard), self._loop
        ).result()

    def set_replica_address_from_thread(self, name: str, host: str, port: int) -> None:
        asyncio.run_coroutine_threadsafe(
            self.set_replica_address(name, host, port), self._loop
        ).result()

    def remove_replica_from_thread(self, name: str) -> None:
        asyncio.run_coroutine_threadsafe(
            self.remove_replica(name), self._loop
        ).result()

    def request_checkpoint_from_thread(
        self, path, shard: int | None = None
    ) -> int:
        return asyncio.run_coroutine_threadsafe(
            self.request_checkpoint(path, shard=shard), self._loop
        ).result()

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    async def _on_start(self) -> None:
        self._ack_event = asyncio.Event()

    async def _on_stop(self) -> None:
        for link in list(self._links.values()):
            await self._retire_link(link)
        self._log.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _respond(self, line: bytes) -> dict | bytes:
        request, error = decode_line(line)
        if error is not None:
            return error
        op = request.get("op")
        handler = self._ops.get(op)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        trace = request.get("trace")
        start = perf_counter()
        try:
            # Traced requests get a router span; the raw line (trace field
            # included) is forwarded verbatim on reads, so the replica
            # records its own span under the same trace id.
            with span(str(op), self.obs_component, trace=trace, op=op):
                return await handler(request, line)
        except (ClusterError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        finally:
            self._observe_request(op, (perf_counter() - start) * 1000.0, trace)

    async def _op_ping(self, request: dict, line: bytes) -> dict:
        return {"ok": True, "pong": True, "role": "router"}

    async def _op_metrics(self, request: dict, line: bytes) -> dict:
        return {
            "ok": True,
            "content_type": CONTENT_TYPE,
            "metrics": self._registry.render(),
        }

    async def _op_spans(self, request: dict, line: bytes) -> dict:
        limit = request.get("limit")
        return {
            "ok": True,
            "spans": get_recorder().spans(
                trace=request.get("of"),
                limit=int(limit) if limit is not None else 256,
            ),
        }

    async def _op_profile(self, request: dict, line: bytes) -> dict:
        return self._profile_response(request)

    async def _op_history(self, request: dict, line: bytes) -> dict:
        return self._history_response(request)

    async def _op_alerts(self, request: dict, line: bytes) -> dict:
        return self._alerts_response(request)

    def _sample_metrics(self) -> dict:
        """One router metrics-history point: routed-read latency/qps,
        replica freshness, and WAL footprint/growth — the inputs to the
        router's default SLOs and the ``repro dash`` cluster view."""
        queries = self.metrics.queries.summary()
        wal = self._log.stats()
        head = self._log.head
        lags = [
            max(0, head - link.acked_seq)
            for link in self._links.values()
            if link.acked_seq >= 0
        ]
        return {
            "qps": queries["qps"],
            "query_p99_ms": queries["p99_ms"],
            "max_lag": max(lags, default=0),
            "healthy_replicas": sum(
                1 for link in self._links.values() if link.healthy
            ),
            "replicas": len(self._links),
            "log_head": head,
            "wal_bytes": wal["bytes"],
            "wal_growth_bytes_per_s": wal["wal_growth_bytes_per_s"],
            "reads_routed": self._reads_routed,
            "writes_appended": self._writes_appended,
            "rss_kb": peak_rss_kb(),
        }

    # -- writes ---------------------------------------------------------
    async def _op_update(self, request: dict, line: bytes) -> dict:
        return await self._append(
            [(request["kind"], request["u"], request["v"])]
        )

    async def _op_updates(self, request: dict, line: bytes) -> dict:
        return await self._append([(k, u, v) for k, u, v in request["events"]])

    async def _append(self, events: list[tuple]) -> dict:
        for kind, u, v in events:
            if kind not in _VALID_KINDS:
                return {"ok": False, "error": f"unknown event kind {kind!r}"}
            if not (_valid_vertex_id(u) and _valid_vertex_id(v)) or u == v:
                return {
                    "ok": False,
                    "error": f"invalid edge ({u!r}, {v!r}); nothing was logged",
                }
        normalized = [(kind, int(u), int(v)) for kind, u, v in events]
        start = perf_counter()
        loop = asyncio.get_running_loop()
        async with self._append_lock:
            # The write (and its fsync, under "always") blocks a worker
            # thread, not the loop — reads keep routing meanwhile.
            head = await loop.run_in_executor(
                None, self._log.append_events, normalized
            )
        self.metrics.updates.record(perf_counter() - start)
        self._writes_appended += len(events)
        for link in self._links.values():
            link.kick.set()
        return {
            "ok": True,
            "queued": len(events),
            "epoch": head,
            "pending": self._max_lag(),
        }

    async def compact_log(self, through_seq: int) -> int:
        """Compact the log under the append lock (the supervisor's entry
        point — segment deletion must not race an in-flight append)."""
        loop = asyncio.get_running_loop()
        async with self._append_lock:
            return await loop.run_in_executor(
                None, self._log.compact, through_seq
            )

    def _max_lag(self) -> int:
        head = self._log.head
        lags = [
            head - link.acked_seq
            for link in self._links.values()
            if link.acked_seq >= 0
        ]
        return max(lags, default=head - self._log.base)

    # -- reads ----------------------------------------------------------
    async def _op_read(self, request: dict, line: bytes) -> dict | bytes:
        min_epoch = int(request.get("min_epoch") or 0)
        if min_epoch > self._log.head:
            return {
                "ok": False,
                "error": (
                    f"min_epoch {min_epoch} is beyond the log head "
                    f"{self._log.head}: no such write was accepted"
                ),
                "epoch": self._log.head,
            }
        start = perf_counter()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._read_timeout
        if self._shards > 1 and request.get("op") in ("query", "query_many"):
            return await self._scatter_read(request, line, min_epoch, deadline, start)
        # Single-shard clusters (and `path`, which any shard answers
        # exactly by BFS on its full graph copy) route to one replica
        # and pass the response line through verbatim.
        response = await self._routed_read(line, min_epoch, deadline)
        if isinstance(response, bytes):
            self.metrics.queries.record(perf_counter() - start)
        return response

    async def _scatter_read(
        self,
        request: dict,
        line: bytes,
        min_epoch: int,
        deadline: float,
        start: float,
    ) -> dict:
        """Landmark-sharded read: one caught-up replica per shard group,
        element-wise min reduction over the shard-local answers.

        Every shard's answer is exact through its owned landmarks and an
        overestimate otherwise, so the min is the exact global distance
        (:mod:`repro.core.sharding`); ``None`` encodes unreachable and
        survives only if every shard reports it.  The reduced ``epoch``
        is the min over the per-shard epochs — the read-your-writes
        guarantee holds per shard group, and the client may only assume
        the weakest of them.
        """
        results = await asyncio.gather(
            *(
                self._routed_read(line, min_epoch, deadline, shard=shard)
                for shard in range(self._shards)
            )
        )
        responses: list[dict] = []
        for shard, result in enumerate(results):
            if isinstance(result, bytes):
                result = json.loads(result)
            if not result.get("ok"):
                result.setdefault("shard", shard)
                return result
            responses.append(result)
        epoch = min(int(r.get("epoch", 0)) for r in responses)
        if request["op"] == "query":
            merged: dict = {
                "ok": True,
                "distance": _min_distance([r.get("distance") for r in responses]),
                "epoch": epoch,
            }
        else:
            columns = zip(*(r.get("distances") or [] for r in responses))
            merged = {
                "ok": True,
                "distances": [_min_distance(column) for column in columns],
                "epoch": epoch,
            }
        self.metrics.queries.record(perf_counter() - start)
        return merged

    async def _routed_read(
        self,
        line: bytes,
        min_epoch: int,
        deadline: float,
        shard: int | None = None,
    ) -> dict | bytes:
        """Forward ``line`` verbatim to one caught-up replica (of one
        shard group when ``shard`` is given); returns the raw response
        line, or an error dict if no replica could answer in time."""
        loop = asyncio.get_running_loop()
        excluded: set[str] = set()
        while True:
            link = await self._pick(min_epoch, deadline, excluded, shard=shard)
            if link is None:
                message = (
                    f"no replica caught up to epoch {min_epoch}"
                    if min_epoch
                    else "no healthy replica available"
                )
                if shard is not None:
                    message = f"shard {shard}: {message}"
                return {"ok": False, "error": message, "retryable": True}
            try:
                async with link.query_lock:
                    reader, writer = await self._query_conn(link)
                    writer.write(line)
                    await writer.drain()
                    response = await asyncio.wait_for(
                        reader.readline(), max(0.05, deadline - loop.time())
                    )
                if not response:
                    raise ClusterError("replica closed the connection")
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._mark_unhealthy(link, f"read failed: {exc}")
                await self._close_query_conn(link)
                excluded.add(link.name)
                continue
            self._reads_routed += 1
            return bytes(response)  # verbatim passthrough

    async def _pick(
        self,
        min_epoch: int,
        deadline: float,
        excluded: set[str],
        shard: int | None = None,
    ) -> _ReplicaLink | None:
        loop = asyncio.get_running_loop()
        while True:
            members = sorted(
                (
                    link
                    for link in self._links.values()
                    if shard is None or link.shard == shard
                ),
                key=lambda link: link.name,
            )
            # Fair rotation: the cursor names a position in the *stable*
            # sorted membership, not an offset into the per-call eligible
            # subset — so replicas that flicker in and out of eligibility
            # no longer skew selection toward their neighbours.
            cursor_key = -1 if shard is None else shard
            cursor = self._rr.get(cursor_key, 0)
            head = self._log.head
            picked = None
            fallback = None
            for offset in range(len(members)):
                link = members[(cursor + offset) % len(members)]
                if (
                    not link.healthy
                    or link.name in excluded
                    or link.acked_seq < min_epoch
                ):
                    continue
                if (
                    self._max_stale is not None
                    and head - link.acked_seq > self._max_stale
                ):
                    if fallback is None:
                        fallback = (offset, link)
                    continue  # prefer a fresher replica if one exists
                picked = (offset, link)
                break
            chosen = picked or fallback
            if chosen is not None:
                offset, link = chosen
                self._rr[cursor_key] = (cursor + offset + 1) % len(members)
                return link
            remaining = deadline - loop.time()
            if remaining <= 0:
                return None
            event = self._ack_event  # grab before re-checking: no lost wakeup
            try:
                await asyncio.wait_for(event.wait(), min(remaining, 0.25))
            except (TimeoutError, asyncio.TimeoutError):
                pass
            # Re-admit replicas excluded by earlier failures in this
            # request: a replica that died mid-read but recovered (its
            # pump re-acked) must become routable again instead of the
            # read spinning here until its deadline.
            excluded.clear()

    async def _query_conn(self, link: _ReplicaLink):
        if link.query_conn is None:
            link.query_conn = await asyncio.open_connection(
                link.host, link.port, limit=_MAX_LINE
            )
        return link.query_conn

    async def _close_query_conn(self, link: _ReplicaLink) -> None:
        conn, link.query_conn = link.query_conn, None
        if conn is not None:
            _, writer = conn
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- stats / drain --------------------------------------------------
    async def _op_stats(self, request: dict, line: bytes) -> dict:
        head = self._log.head
        replicas: dict[str, dict] = {}
        service_stats: list[dict] = []
        for link in list(self._links.values()):
            entry = {
                "shard": link.shard,
                "healthy": link.healthy,
                "acked_seq": link.acked_seq,
                "lag": max(0, head - link.acked_seq) if link.acked_seq >= 0 else None,
            }
            if link.last_error:
                entry["last_error"] = link.last_error
            if link.healthy:
                try:
                    response = await self._query_roundtrip(link, {"op": "stats"})
                    entry["service"] = response["stats"]
                    service_stats.append(response["stats"])
                    link.rss_kb = int(
                        response["stats"].get("replica", {}).get("rss_kb")
                        or link.rss_kb
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self._mark_unhealthy(link, f"stats failed: {exc}")
                    await self._close_query_conn(link)
                    entry["healthy"] = False
            replicas[link.name] = entry
        # Exact cluster-wide percentiles: the per-replica summaries carry
        # mergeable histograms, and merging histograms is lossless (vector
        # addition), so the aggregate tails are those of the pooled sample
        # population — not the old conservative max.
        aggregate = {
            "queries": merge_summaries(
                [s["queries"] for s in service_stats if "queries" in s]
            ),
            "updates": merge_summaries(
                [s["updates"] for s in service_stats if "updates" in s]
            ),
            "events_applied": sum(s.get("events_applied", 0) for s in service_stats),
            "events_rejected": sum(s.get("events_rejected", 0) for s in service_stats),
            "insert_batches": sum(s.get("insert_batches", 0) for s in service_stats),
            "mixed_batches": sum(s.get("mixed_batches", 0) for s in service_stats),
            "snapshots_published": sum(
                s.get("snapshots_published", 0) for s in service_stats
            ),
        }
        stats = {
            "role": "router",
            "log_head": head,
            "log_base": self._log.base,
            "wal": self._log.stats(),
            "fsync": self._log.fsync_policy,
            "num_shards": self._shards,
            "reads_routed": self._reads_routed,
            "writes_appended": self._writes_appended,
            "fanout_batches": self._fanout_batches,
            "router": self.metrics.stats(),
            "replicas": replicas,
            "aggregate": aggregate,
        }
        if self._shards > 1:
            shards: dict[str, dict] = {}
            for index in range(self._shards):
                group = [
                    link for link in self._links.values() if link.shard == index
                ]
                lags = [
                    max(0, head - link.acked_seq)
                    for link in group
                    if link.acked_seq >= 0
                ]
                shards[str(index)] = {
                    "replicas": len(group),
                    "healthy": sum(1 for link in group if link.healthy),
                    "acked_seq": max(
                        (link.acked_seq for link in group), default=-1
                    ),
                    # The group's effective read lag: scatter-gather needs
                    # one caught-up replica per group, so the freshest
                    # member defines it.
                    "lag": min(lags) if lags else None,
                    "rss_kb_max": max((link.rss_kb for link in group), default=0),
                }
            stats["shards"] = shards
        return {"ok": True, "stats": stats}

    async def _op_snapshot(self, request: dict, line: bytes) -> dict:
        """Drain: resolve once every registered replica acked the current
        head (the cluster analogue of the single node's force-publish)."""
        target = self._log.head
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _DRAIN_TIMEOUT
        while True:
            links = list(self._links.values())
            if all(link.acked_seq >= target for link in links):
                return {
                    "ok": True,
                    "epoch": target,
                    "replicas": {link.name: link.acked_seq for link in links},
                }
            if loop.time() >= deadline:
                laggards = {
                    link.name: link.acked_seq
                    for link in links
                    if link.acked_seq < target
                }
                return {
                    "ok": False,
                    "error": f"drain to epoch {target} timed out: {laggards}",
                }
            event = self._ack_event
            try:
                await asyncio.wait_for(event.wait(), 0.25)
            except (TimeoutError, asyncio.TimeoutError):
                pass

    # ------------------------------------------------------------------
    # Checkpointing (compaction support)
    # ------------------------------------------------------------------
    async def request_checkpoint(self, path, shard: int | None = None) -> int:
        """Ask the most caught-up healthy replica (of one shard group when
        ``shard`` is given) to write a checkpoint; returns the log seq the
        checkpoint covers."""
        candidates = sorted(
            (
                link
                for link in self._links.values()
                if link.healthy and (shard is None or link.shard == shard)
            ),
            key=lambda link: link.acked_seq,
            reverse=True,
        )
        if not candidates:
            scope = "" if shard is None else f" in shard {shard}"
            raise ClusterError(f"no healthy replica to checkpoint from{scope}")
        link = candidates[0]
        try:
            response = await self._query_roundtrip(
                link, {"op": "checkpoint", "path": str(path)}, timeout=300.0
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._mark_unhealthy(link, f"checkpoint failed: {exc}")
            await self._close_query_conn(link)
            raise ClusterError(f"checkpoint via {link.name} failed: {exc}") from exc
        return int(response["log_seq"])

    async def _query_roundtrip(
        self, link: _ReplicaLink, payload: dict, timeout: float = 5.0
    ) -> dict:
        async with link.query_lock:
            reader, writer = await self._query_conn(link)
            writer.write(
                (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
            )
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ClusterError("replica closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ClusterError(response.get("error", "replica request failed"))
        return response

    # ------------------------------------------------------------------
    # Fan-out pump
    # ------------------------------------------------------------------
    def _mark_healthy(self, link: _ReplicaLink) -> None:
        if not link.healthy:
            self._logger.info(
                "replica_healthy", replica=link.name, acked_seq=link.acked_seq
            )
        link.healthy = True
        link.unhealthy_since = None
        link.last_error = None

    def _revive(self, link: _ReplicaLink) -> None:
        """Re-mark a link healthy after a successful pump round-trip.

        The read path marks a link unhealthy on a single slow/failed
        query; a pump that is still acking proves the replica alive, so
        one transient read timeout must not exclude it from routing until
        the supervisor pointlessly restarts it."""
        if not link.healthy:
            self._mark_healthy(link)
            self._notify_ack()

    def _mark_unhealthy(self, link: _ReplicaLink, error: str) -> None:
        if link.healthy or link.unhealthy_since is None:
            link.unhealthy_since = (
                self._loop.time() if self._loop is not None else 0.0
            )
            self._logger.warning(
                "replica_unhealthy", replica=link.name, error=error
            )
        link.healthy = False
        link.last_error = error

    def _notify_ack(self) -> None:
        event, self._ack_event = self._ack_event, asyncio.Event()
        event.set()

    async def _pump(self, link: _ReplicaLink, generation: int) -> None:
        """Stream the log to one replica forever: connect, handshake (learn
        its applied seq), then push ``acked+1 .. head`` in batches, acking
        forward as the replica confirms apply+publish."""
        while not self._stopping and link.generation == generation:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    link.host, link.port, limit=_MAX_LINE
                )
                response = await self._pump_roundtrip(
                    reader, writer, {"op": "stats"}, self._read_timeout
                )
                replica_info = response["stats"]["replica"]
                link.acked_seq = int(replica_info["applied_seq"])
                link.rss_kb = int(replica_info.get("rss_kb") or link.rss_kb)
                self._mark_healthy(link)
                self._notify_ack()
                while not self._stopping and link.generation == generation:
                    link.kick.clear()
                    if link.acked_seq >= self._log.head:
                        try:
                            await asyncio.wait_for(link.kick.wait(), 1.0)
                        except (TimeoutError, asyncio.TimeoutError):
                            # Idle: verify liveness so a silently dead
                            # replica is noticed within ~a second.
                            await self._pump_roundtrip(
                                reader, writer, {"op": "ping"}, self._read_timeout
                            )
                            self._revive(link)
                        continue
                    records = self._log.read(
                        link.acked_seq + 1, limit=self._fanout_batch
                    )
                    payload = {
                        "op": "apply",
                        "events": [list(record) for record in records],
                    }
                    response = await self._pump_roundtrip(
                        reader, writer, payload, self._apply_timeout
                    )
                    link.acked_seq = int(response["applied_seq"])
                    self._fanout_batches += 1
                    self._revive(link)
                    self._notify_ack()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._mark_unhealthy(link, str(exc))
                self._notify_ack()
                await asyncio.sleep(self._retry_interval)
            finally:
                if writer is not None:
                    writer.close()

    @staticmethod
    async def _pump_roundtrip(reader, writer, payload: dict, timeout: float) -> dict:
        writer.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
        )
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ClusterError("replica closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ClusterError(response.get("error", "replica apply failed"))
        return response
