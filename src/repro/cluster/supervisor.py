"""`ClusterSupervisor` — lifecycle for a router + N replica processes.

The deployment unit behind ``python -m repro serve-cluster``: given a
``save_oracle`` file, the supervisor

1. lays out the **cluster directory** (``checkpoint.json.gz`` +
   ``wal/``), opens the :class:`~repro.cluster.wal.UpdateLog` at the
   checkpoint's log position and starts the
   :class:`~repro.cluster.router.ClusterRouter`;
2. **spawns** one replica process per requested worker
   (:func:`~repro.cluster.replica.run_replica` via the ``spawn``
   multiprocessing context — no inherited locks or loops), each booting
   from checkpoint + WAL suffix and reporting its ephemeral port back
   over a pipe;
3. **health-checks**: a dead process — or one whose router link has been
   unhealthy longer than ``restart_after`` — is terminated and respawned;
   the fresh process warm-starts from the newest checkpoint, replays the
   WAL, and the router's pump closes whatever gap remains (crash
   recovery and catch-up are the same code path);
4. **compacts**: every ``compact_every`` appended events it asks the most
   caught-up replica to write a checkpoint, then drops fully-covered WAL
   segments once every replica has acked past them.

With ``shards=N`` (landmark sharding, docs/DESIGN.md §12) the supervisor
runs N shard groups of ``replicas`` processes each, named ``s{i}r{j}``.
Every group boots from its own checkpoint (``checkpoint-s{i}.json.gz``,
falling back to a restriction of the seed oracle), shares the single
WAL, and the router scatter-gathers reads across groups.  Compaction
checkpoints every group and only drops WAL records covered by *all* of
them.

``run()`` serves until SIGTERM/SIGINT and shuts down cleanly: router
drains in-flight requests and closes the WAL, replicas get SIGTERM and
exit 0 after their own graceful drain.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from pathlib import Path

from time import perf_counter

from repro.cluster.replica import ReplicaSpec, replica_process_entry
from repro.cluster.router import ClusterRouter
from repro.cluster.wal import UpdateLog
from repro.exceptions import ClusterError
from repro.obs.log import get_logger
from repro.serving.server import ThreadedLoopRunner
from repro.utils.serialization import read_oracle_meta

__all__ = ["ReplicaWorker", "ClusterSupervisor"]

_CHECKPOINT_NAME = "checkpoint.json.gz"
_WAL_DIRNAME = "wal"


class ReplicaWorker:
    """One spawned replica process plus the spec to respawn it."""

    def __init__(self, spec: ReplicaSpec, context) -> None:
        self.spec = spec
        self._ctx = context
        self.process = None
        self.address: tuple[str, int] | None = None
        self.restarts = 0
        self.last_exitcode = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self):
        """Exit code of the current (or last terminated) process.  A clean
        SIGTERM drain exits 0 — the smoke checks assert on it."""
        if self.process is not None:
            return self.process.exitcode
        return self.last_exitcode

    def spawn(self, spawn_timeout: float) -> tuple[str, int]:
        """Start the process; blocks until it reports its bound address.

        Called in an executor by the supervisor (pipe recv blocks).
        """
        parent_conn, child_conn = self._ctx.Pipe()
        # NOT daemonic: a daemonic process cannot have children, and the
        # parallel engine inside a replica (`workers=`) forks a process
        # pool.  Replicas exit on SIGTERM (supervisor.stop / terminate).
        self.process = self._ctx.Process(
            target=replica_process_entry,
            args=(self.spec, child_conn),
            name=f"repro-replica-{self.spec.name}",
        )
        self.process.start()
        child_conn.close()
        waited = 0.0
        try:
            while not parent_conn.poll(0.1):
                waited += 0.1
                if not self.process.is_alive():
                    raise ClusterError(
                        f"replica {self.spec.name} died during boot "
                        f"(exit code {self.process.exitcode})"
                    )
                if waited >= spawn_timeout:
                    self.terminate()
                    raise ClusterError(
                        f"replica {self.spec.name} did not report its address "
                        f"within {spawn_timeout:.0f}s"
                    )
            try:
                self.address = tuple(parent_conn.recv())
            except EOFError:
                self.process.join(5.0)
                raise ClusterError(
                    f"replica {self.spec.name} died before reporting its "
                    f"address (exit code {self.process.exitcode})"
                ) from None
        finally:
            parent_conn.close()
        return self.address

    def terminate(self, grace: float = 10.0) -> None:
        """SIGTERM (graceful drain in the replica), escalate to SIGKILL."""
        proc = self.process
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(grace)
            if proc.is_alive():  # pragma: no cover - stuck replica
                proc.kill()
                proc.join(grace)
        self.last_exitcode = proc.exitcode
        self.process = None
        self.address = None


class ClusterSupervisor:
    """Spawn, monitor, restart and compact a replicated oracle cluster."""

    def __init__(
        self,
        oracle_path: str | os.PathLike,
        *,
        cluster_dir: str | os.PathLike,
        replicas: int = 2,
        shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 8360,
        workers: int | None = None,
        max_batch: int = 128,
        fast: bool = True,
        fsync: str = "batch",
        health_interval: float = 0.5,
        restart: bool = True,
        restart_after: float = 5.0,
        compact_every: int | None = 50_000,
        spawn_timeout: float = 120.0,
        router_kwargs: dict | None = None,
    ) -> None:
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        if shards < 1:
            raise ClusterError(f"shards must be >= 1, got {shards}")
        self._oracle_path = Path(oracle_path)
        self._dir = Path(cluster_dir)
        self._wal_dir = self._dir / _WAL_DIRNAME
        self._checkpoint = self._dir / _CHECKPOINT_NAME
        self._num_replicas = replicas
        self._shards = shards
        self._shard_of_worker: dict[str, int | None] = {}
        self._host = host
        self._port = port
        self._workers = workers
        self._max_batch = max_batch
        self._fast = fast
        self._fsync = fsync
        self._health_interval = health_interval
        self._restart = restart
        self._restart_after = restart_after
        self._compact_every = compact_every
        self._spawn_timeout = spawn_timeout
        self._router_kwargs = dict(router_kwargs or {})
        self._ctx = multiprocessing.get_context("spawn")
        self._workers_by_name: dict[str, ReplicaWorker] = {}
        self._health_task: asyncio.Task | None = None
        self._compact_task: asyncio.Task | None = None
        self.router: ClusterRouter | None = None
        self.log: UpdateLog | None = None
        self._runner = ThreadedLoopRunner(name="cluster-supervisor")
        self._logger = get_logger("supervisor")
        self._checkpoint_hist = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        """The live checkpoint file if one was written, else the seed
        oracle file replicas boot from (unsharded clusters)."""
        return self._checkpoint if self._checkpoint.exists() else self._oracle_path

    @property
    def num_shards(self) -> int:
        return self._shards

    def shard_checkpoint_path(self, index: int) -> Path:
        """Shard group ``index``'s checkpoint file (may not exist yet)."""
        return self._dir / f"checkpoint-s{index}.json.gz"

    def _boot_path(self, shard: int | None) -> Path:
        """The file a replica warm-starts from: its shard group's
        checkpoint when one exists, else the seed oracle (which
        ``build_replica`` restricts to the shard's owned landmarks)."""
        if shard is None:
            return self.checkpoint_path
        ckpt = self.shard_checkpoint_path(shard)
        return ckpt if ckpt.exists() else self._oracle_path

    @property
    def address(self) -> tuple[str, int]:
        if self.router is None:
            raise ClusterError("cluster is not started")
        return self.router.address

    def worker(self, name: str) -> ReplicaWorker:
        return self._workers_by_name[name]

    @property
    def workers_by_name(self) -> dict[str, ReplicaWorker]:
        return dict(self._workers_by_name)

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterSupervisor":
        if not self._oracle_path.exists() and not self._checkpoint.exists():
            raise ClusterError(f"oracle file not found: {self._oracle_path}")
        self._dir.mkdir(parents=True, exist_ok=True)
        base_seq = self._base_seq()
        self.log = UpdateLog(self._wal_dir, fsync=self._fsync, base_seq=base_seq)
        self.router = ClusterRouter(
            self.log,
            self._host,
            self._port,
            shards=self._shards,
            **self._router_kwargs,
        )
        self._register_obs()
        await self.router.start()
        try:
            for name, shard in self._worker_layout():
                self._shard_of_worker[name] = shard
                await self._spawn(name)
        except Exception:
            await self.stop()
            raise
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="cluster-health"
        )
        return self

    async def stop(self) -> None:
        for attr in ("_health_task", "_compact_task"):
            task = getattr(self, attr)
            setattr(self, attr, None)
            if task is not None:
                task.cancel()
                try:
                    # Bounded + re-cancelling: a cancellation swallowed by
                    # a nested wait_for (bpo-42130) must not hang stop().
                    await asyncio.wait_for(task, 10.0)
                except (
                    asyncio.CancelledError,
                    TimeoutError,
                    asyncio.TimeoutError,
                ):
                    pass
        if self.router is not None:
            await self.router.stop()  # drains clients, stops pumps, closes WAL
        loop = asyncio.get_running_loop()
        for worker in self._workers_by_name.values():
            await loop.run_in_executor(None, worker.terminate)
        # Workers stay inspectable after stop (exit codes, restart counts);
        # the smoke checks assert every replica drained and exited 0.

    async def run(self, *, install_signals: bool = True, on_started=None) -> None:
        """Start, serve until SIGTERM/SIGINT, stop cleanly (the
        ``serve-cluster`` main loop)."""
        await self.start()
        if on_started is not None:
            on_started(self)
        shutdown = asyncio.Event()
        if install_signals:
            import signal

            loop = asyncio.get_running_loop()
            try:
                for sig in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(sig, shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await shutdown.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Threaded lifecycle (tests, smoke checks, benches)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> tuple[str, int]:
        """Run the whole cluster from a dedicated event-loop thread;
        returns the router's bound address."""
        self._runner.launch(self.start, self.stop)
        return self.router.address

    def stop_thread(self) -> None:
        self._runner.shutdown()

    # ------------------------------------------------------------------
    # Spawning and health
    # ------------------------------------------------------------------
    def _worker_layout(self) -> list[tuple[str, int | None]]:
        """(name, shard) for every replica process.  Unsharded clusters
        keep the historical ``r{i}`` names; sharded ones use
        ``s{shard}r{j}``."""
        if self._shards == 1:
            return [(f"r{i}", None) for i in range(self._num_replicas)]
        return [
            (f"s{i}r{j}", i)
            for i in range(self._shards)
            for j in range(self._num_replicas)
        ]

    def _base_seq(self) -> int:
        """WAL position the slowest boot file covers.  Records after it
        must stay; anything at or before is already in every replica's
        checkpoint.  A group still booting from the seed oracle pins 0."""
        if self._shards == 1:
            checkpoint = self.checkpoint_path
            if checkpoint == self._checkpoint:
                return int(read_oracle_meta(checkpoint).get("log_seq", 0))
            return 0
        seqs = []
        for i in range(self._shards):
            ckpt = self.shard_checkpoint_path(i)
            if not ckpt.exists():
                return 0
            seqs.append(int(read_oracle_meta(ckpt).get("log_seq", 0)))
        return min(seqs)

    def _spec(self, name: str) -> ReplicaSpec:
        shard = self._shard_of_worker.get(name)
        return ReplicaSpec(
            name=name,
            checkpoint_path=str(self._boot_path(shard)),
            wal_dir=str(self._wal_dir),
            port=0,
            workers=self._workers,
            max_batch=self._max_batch,
            fast=self._fast,
            shard_index=shard,
            num_shards=self._shards,
        )

    def _register_obs(self) -> None:
        """Supervisor telemetry lives on the *router's* registry — the
        router is the cluster's scrape target (``--metrics-port``), and the
        supervisor runs in the same process."""
        registry = self.router.registry
        restarts = registry.gauge(
            "repro_replica_restarts",
            "Times each replica process has been respawned.",
            labelnames=("replica",),
        )
        self._checkpoint_hist = registry.histogram(
            "repro_checkpoint_duration_seconds",
            "End-to-end checkpoint request latency (router-side).",
        )

        def _collect() -> None:
            for name, worker in self._workers_by_name.items():
                restarts.labels(replica=name).set(worker.restarts)

        registry.on_collect(_collect)

    async def _spawn(self, name: str) -> None:
        previous = self._workers_by_name.get(name)
        worker = ReplicaWorker(self._spec(name), self._ctx)
        if previous is not None:
            worker.restarts = previous.restarts + 1
        loop = asyncio.get_running_loop()
        host, port = await loop.run_in_executor(
            None, worker.spawn, self._spawn_timeout
        )
        self._workers_by_name[name] = worker
        shard = self._shard_of_worker.get(name)
        self._logger.info(
            "replica_spawned",
            replica=name,
            shard=shard,
            port=port,
            restarts=worker.restarts,
        )
        await self.router.set_replica_address(
            name, host, port, shard=shard if shard is not None else 0
        )

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval)
            try:
                await self._health_pass()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep supervising
                pass

    async def _health_pass(self) -> None:
        states = self.router.replica_states()
        now = asyncio.get_running_loop().time()
        for name, worker in list(self._workers_by_name.items()):
            state = states.get(name, {})
            dead = not worker.alive
            stuck = (
                worker.alive
                and not state.get("healthy", False)
                and state.get("unhealthy_since") is not None
                and now - state["unhealthy_since"] > self._restart_after
            )
            if not (dead or stuck):
                continue
            self._logger.warning(
                "replica_down",
                replica=name,
                reason="process_dead" if dead else "link_stuck",
                exitcode=worker.exitcode,
                restart=self._restart,
            )
            if not self._restart:
                await self.router.remove_replica(name)
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, worker.terminate)
                del self._workers_by_name[name]
                continue
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, worker.terminate)
            await self._spawn(name)
        await self._maybe_compact()

    async def _maybe_compact(self) -> None:
        if self._compact_every is None:
            return
        if self._compact_task is not None and not self._compact_task.done():
            return
        log = self.log
        if log.head - log.base < self._compact_every:
            return
        # Run off the health loop: a checkpoint of a large oracle takes
        # seconds-to-minutes and must not delay crash detection/restarts.
        self._compact_task = asyncio.get_running_loop().create_task(
            self._compact(), name="cluster-compact"
        )

    async def _compact(self) -> None:
        log = self.log
        start = perf_counter()
        try:
            if self._shards == 1:
                covered = await self.router.request_checkpoint(self._checkpoint)
            else:
                # Every shard group must checkpoint before any WAL record
                # can go: a record is only covered once *all* shards have
                # persisted their slice of its effects.
                covered = min(
                    [
                        await self.router.request_checkpoint(
                            self.shard_checkpoint_path(i), shard=i
                        )
                        for i in range(self._shards)
                    ]
                )
            if self._checkpoint_hist is not None:
                self._checkpoint_hist.observe(perf_counter() - start)
            # Never compact past what every live replica has acked — a
            # laggard still needs the records; the checkpoint bounds it.
            acked = [
                state["acked_seq"]
                for state in self.router.replica_states().values()
            ]
            if acked:
                covered = min(covered, min(acked))
            if covered > log.base:
                await self.router.compact_log(covered)
                self._logger.info(
                    "wal_compacted",
                    covered_seq=covered,
                    head=log.head,
                    checkpoint_s=round(perf_counter() - start, 3),
                )
        except ClusterError as exc:
            # No healthy replica right now; retry next pass.
            self._logger.warning("compact_skipped", err=str(exc))
