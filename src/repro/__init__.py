"""repro — Efficient maintenance of distance labelling for dynamic graphs.

A full reproduction of *"Efficient Maintenance of Distance Labelling for
Incremental Updates in Large Dynamic Graphs"* (Farhan & Wang, EDBT 2021):

* :class:`~repro.core.dynamic.DynamicHCL` — the maintained highway cover
  labelling with IncHL+ edge/vertex insertions and exact queries;
* :mod:`repro.baselines` — IncPLL (Akiba et al. 2014), IncFD (Hayashi et
  al. 2016) and online BFS comparators;
* :mod:`repro.graph` — the dynamic graph substrate and synthetic network
  generators standing in for the paper's 12 datasets;
* :mod:`repro.workloads` — update/query workloads and the dataset registry;
* :mod:`repro.parallel` — the per-landmark process-pool engine behind the
  ``workers=`` knob (parallel construction / batch finds / rebuilds);
* :mod:`repro.serving` — the snapshot-isolated concurrent query service
  (single-writer update loop, epoch-versioned read snapshots, TCP
  front-end via ``python -m repro serve``);
* :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.obs` — the unified observability layer (structured logs,
  request tracing, mergeable histogram metrics, Prometheus exposition).

Quickstart::

    from repro import DynamicHCL
    from repro.graph.generators import barabasi_albert

    graph = barabasi_albert(10_000, attach=5, rng=42)
    oracle = DynamicHCL.build(graph, num_landmarks=20)
    print(oracle.query(17, 4242))
    oracle.insert_edge(17, 4242)       # IncHL+ repairs the labelling
    print(oracle.query(17, 4242))      # -> 1
"""

from repro.core.dynamic import DynamicHCL
from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.directed import DirectedHCL
from repro.core.labelling import HighwayCoverLabelling
from repro.core.query import query_distance
from repro.core.weighted_hcl import WeightedHCL
from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.weighted import WeightedGraph
from repro.parallel import LandmarkEngine
from repro.serving import OracleService, OracleSnapshot

__version__ = "1.2.0"

__all__ = [
    "DynamicHCL",
    "LandmarkEngine",
    "OracleService",
    "OracleSnapshot",
    "DirectedHCL",
    "WeightedHCL",
    "build_hcl",
    "build_hcl_fast",
    "HighwayCoverLabelling",
    "query_distance",
    "CSRGraph",
    "DynamicGraph",
    "DynamicDiGraph",
    "WeightedGraph",
    "__version__",
]
