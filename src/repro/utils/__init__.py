"""Shared utilities: RNG handling, timing, serialization helpers."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch, TimingStats

__all__ = ["ensure_rng", "Stopwatch", "TimingStats"]
