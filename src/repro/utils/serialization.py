"""Saving and loading highway cover labellings.

Production deployments precompute the labelling offline and load it next to
the query service; these helpers provide a portable JSON format (optionally
gzip-compressed) that round-trips :class:`HighwayCoverLabelling` exactly.
Distances are stored as ints where possible so unweighted labellings
round-trip type-stably.
"""

from __future__ import annotations

import gzip
import json
import os

from repro.core.highway import Highway
from repro.core.labelling import HighwayCoverLabelling
from repro.core.labels import LabelStore
from repro.exceptions import ReproError
from repro.graph.traversal import INF

__all__ = [
    "save_labelling",
    "load_labelling",
    "save_oracle",
    "load_oracle",
    "load_oracle_with_meta",
    "read_oracle_meta",
]

_FORMAT = "repro-hcl-v1"
_ORACLE_FORMAT = "repro-oracle-v1"


def _open(path: str | os.PathLike, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _highway_cells(labelling: HighwayCoverLabelling) -> list[list]:
    """Upper-triangle highway cells in canonical landmark-position order.

    Dict insertion order observes maintenance history; emitting cells
    keyed by landmark position (``i < j`` over ``landmarks``) makes the
    serialized highway — like the sorted label rows — a valid byte-level
    equality check across maintenance routes, and lets landmark-sharded
    label files reassemble to the exact bytes of the unsharded save.
    """
    landmarks = labelling.landmarks
    position = {r: i for i, r in enumerate(landmarks)}
    indexed = []
    for r, row in labelling.highway.as_dict().items():
        i = position[r]
        for r2, d in row.items():
            j = position[r2]
            if i < j:
                indexed.append((i, j, d))
    indexed.sort()
    return [[landmarks[i], landmarks[j], d] for i, j, d in indexed]


def _write_streamed(handle, head: dict, label_rows, chunk: int = 4096) -> None:
    """Write ``{**head, "labels": [...]}`` streaming the label rows.

    ``size(L)`` dominates every other field by orders of magnitude on real
    oracles, so the label array is emitted incrementally in fixed-size
    chunks instead of being materialised as one giant list first — peak
    memory stays O(chunk) regardless of labelling size.  The output is
    byte-identical to ``json.dump`` of the equivalent payload.
    """
    prefix = json.dumps(head)
    handle.write(prefix[:-1])  # drop the closing "}" to keep the object open
    handle.write(', "labels": [')
    buffer: list[str] = []
    first = True
    for v, r, d in label_rows:
        buffer.append(json.dumps([v, r, d]))
        if len(buffer) >= chunk:
            handle.write(("" if first else ", ") + ", ".join(buffer))
            first = False
            buffer.clear()
    if buffer:
        handle.write(("" if first else ", ") + ", ".join(buffer))
    handle.write("]}")


def _iter_label_rows(labelling: HighwayCoverLabelling):
    """Label rows in canonical ``(v, r)`` order.

    Dict insertion order observes maintenance history (a DecHL
    remove-then-readd reorders entries that the mixed batch engine
    writes in landmark order), and the §1 canonicality invariant says
    history must be unobservable — so the serialized form sorts, making
    byte-level file comparison a valid equality check across every
    maintenance route.
    """
    for v, label in sorted(labelling.labels.items()):
        for r, d in sorted(label.items()):
            yield v, r, d


def save_labelling(labelling: HighwayCoverLabelling, path: str | os.PathLike) -> None:
    """Write ``labelling`` to ``path`` (gzip if the name ends in ``.gz``).

    Label rows are streamed to the file handle rather than materialised as
    one list — saving a large oracle no longer spikes memory by the size
    of the labelling (the warm-start path of ``python -m repro serve``
    ships these files around).
    """
    head = {
        "format": _FORMAT,
        "landmarks": labelling.landmarks,
        "highway": _highway_cells(labelling),
    }
    with _open(path, "w") as handle:
        _write_streamed(handle, head, _iter_label_rows(labelling))


def load_labelling(path: str | os.PathLike) -> HighwayCoverLabelling:
    """Read a labelling previously written by :func:`save_labelling`."""
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ReproError(
            f"{path}: not a {_FORMAT} file (format={payload.get('format')!r})"
        )
    return _labelling_from_payload(payload)


def _labelling_from_payload(payload: dict) -> HighwayCoverLabelling:
    highway = Highway(payload["landmarks"])
    for r1, r2, d in payload["highway"]:
        if d != INF:
            highway.set_distance(r1, r2, d)
    labels = LabelStore()
    for v, r, d in payload["labels"]:
        labels.set_entry(v, r, d)
    return HighwayCoverLabelling(highway, labels)


def save_oracle(oracle, path: str | os.PathLike, meta: dict | None = None) -> None:
    """Write a :class:`~repro.core.dynamic.DynamicHCL` — graph *and*
    labelling — to ``path`` (gzip if the name ends in ``.gz``).

    The deployment story behind it: precompute offline, ship one file,
    restore with :func:`load_oracle` and continue updating online.

    ``meta`` attaches an optional JSON-encodable dict to the file — the
    cluster layer records the update-log position a checkpoint covers as
    ``{"log_seq": N}`` (:mod:`repro.cluster.wal`).  Omitting it keeps the
    output byte-identical to the pre-meta format.  ``oracle`` may also be
    an :class:`~repro.serving.snapshot.OracleSnapshot`: the frozen views
    expose the same read surface, so a replica can checkpoint a pinned
    epoch while its writer keeps applying updates.
    """
    graph = oracle.graph
    labelling = oracle.labelling
    head = {
        "format": _ORACLE_FORMAT,
        "vertices": sorted(graph.vertices()),
        "edges": sorted(graph.edges()),
        "landmarks": labelling.landmarks,
        "highway": _highway_cells(labelling),
    }
    if meta is not None:
        head["meta"] = meta
    with _open(path, "w") as handle:
        _write_streamed(handle, head, _iter_label_rows(labelling))


def _read_oracle_payload(path: str | os.PathLike) -> dict:
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if payload.get("format") != _ORACLE_FORMAT:
        raise ReproError(
            f"{path}: not a {_ORACLE_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    return payload


def _oracle_from_payload(payload: dict):
    from repro.core.dynamic import DynamicHCL
    from repro.graph.dynamic_graph import DynamicGraph

    graph = DynamicGraph(payload["vertices"])
    for u, v in payload["edges"]:
        graph.add_edge(u, v)
    return DynamicHCL(graph, _labelling_from_payload(payload))


def load_oracle(path: str | os.PathLike):
    """Read an oracle previously written by :func:`save_oracle`.

    Round-trips graph, landmark order, highway, and every label entry
    exactly; the restored oracle accepts updates immediately.
    """
    return _oracle_from_payload(_read_oracle_payload(path))


def load_oracle_with_meta(path: str | os.PathLike):
    """Like :func:`load_oracle` but also returns the file's ``meta`` dict
    (``{}`` for files saved without one)."""
    payload = _read_oracle_payload(path)
    return _oracle_from_payload(payload), dict(payload.get("meta") or {})


def read_oracle_meta(path: str | os.PathLike) -> dict:
    """Only the ``meta`` dict of a :func:`save_oracle` file (``{}`` when
    absent).  Parses the file without rebuilding graph or labelling — the
    cluster supervisor uses this at startup to find the checkpoint's log
    position."""
    return dict(_read_oracle_payload(path).get("meta") or {})
