"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (generators, workload samplers,
landmark selection) accepts either a seed or a :class:`random.Random`
instance.  Centralising the coercion here keeps experiments reproducible:
the benchmark harness passes integer seeds all the way down.
"""

from __future__ import annotations

import random

RngLike = "int | random.Random | None"


def ensure_rng(rng: int | random.Random | None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random` instance.

    ``None`` yields a freshly seeded generator (non-deterministic), an
    ``int`` seeds a new generator, and an existing generator is returned
    unchanged so callers can share state across samplers.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError(f"rng must be an int seed or random.Random, got {rng!r}")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be an int seed or random.Random, got {type(rng).__name__}")


def spawn_rng(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent, reproducible child generator.

    ``stream`` names the logical substream (e.g. ``"updates"``); the same
    parent state and stream name always produce the same child.  Used by the
    harness so that e.g. query sampling does not perturb update sampling.
    """
    seed = rng.getrandbits(64) ^ (hash(stream) & 0xFFFFFFFFFFFFFFFF)
    return random.Random(seed)
