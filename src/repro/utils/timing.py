"""Small timing helpers used by the benchmark harness.

``pytest-benchmark`` handles the statistically careful timing in
``benchmarks/``; these helpers serve the paper-style experiment runner
(:mod:`repro.bench`) which reports the same aggregate numbers the paper's
tables report (means over update/query batches).
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field


class Stopwatch:
    """Context manager measuring wall-clock time with ``perf_counter``.

    >>> with Stopwatch() as sw:
    ...     sum(range(10))
    45
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingStats:
    """Accumulates individual operation timings and derives summary stats."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        """Record one timing sample, in seconds."""
        if seconds < 0 or math.isnan(seconds):
            raise ValueError(f"timing sample must be non-negative, got {seconds!r}")
        self.samples.append(seconds)

    def time(self, fn, *args, **kwargs):
        """Run ``fn`` once, record its duration, and return its result."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.add(time.perf_counter() - start)
        return result

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all samples in seconds."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean sample in seconds (0.0 when empty)."""
        if not self.samples:
            raise ValueError("no timing samples recorded")
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        """Median sample in seconds (0.0 when empty)."""
        if not self.samples:
            raise ValueError("no timing samples recorded")
        return statistics.median(self.samples)

    @property
    def maximum(self) -> float:
        """Largest sample in seconds (0.0 when empty)."""
        if not self.samples:
            raise ValueError("no timing samples recorded")
        return max(self.samples)

    def mean_ms(self) -> float:
        """Mean in milliseconds — the unit used throughout the paper."""
        return self.mean * 1000.0

    def summary(self) -> dict[str, float]:
        """Summary dictionary used by the experiment report renderer."""
        return {
            "count": float(self.count),
            "total_s": self.total,
            "mean_ms": self.mean_ms(),
            "median_ms": self.median * 1000.0,
            "max_ms": self.maximum * 1000.0,
        }
