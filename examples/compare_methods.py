"""Head-to-head comparison of IncHL+, IncFD, IncPLL and online BFS.

A miniature of the paper's Table 1 on a single dataset stand-in: all four
methods index the same graph, replay the same edge-insertion stream, and
answer the same query stream — while a referee asserts they agree on every
answer.

Run:  python examples/compare_methods.py [dataset]      (default: flickr-s)
"""

import sys
import time

from repro.baselines import FullDynamicOracle, IncPLL, OnlineBFS
from repro.bench.report import format_bytes, format_table
from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import build_dataset, dataset_names
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions


def timed(fn, stream):
    start = time.perf_counter()
    for args in stream:
        fn(*args)
    return 1e3 * (time.perf_counter() - start) / max(len(stream), 1)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "flickr-s"
    if name not in dataset_names():
        raise SystemExit(f"unknown dataset {name!r}; choose from {dataset_names()}")
    spec, graph = build_dataset(name, profile="smoke")
    print(f"Dataset {name} (stands in for {spec.stands_in_for}): "
          f"|V| = {graph.num_vertices:,}, |E| = {graph.num_edges:,}, "
          f"|R| = {spec.num_landmarks}")

    insertions = sample_edge_insertions(graph, 40, rng=1)
    queries = sample_query_pairs(graph, 300, rng=2)

    print("Building all four oracles on identical copies ...")
    oracles = {
        "IncHL+": DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks),
        "IncFD": FullDynamicOracle(graph.copy(), num_landmarks=spec.num_landmarks),
        "IncPLL": IncPLL(graph.copy()),
        "BFS (no index)": OnlineBFS(graph.copy()),
    }

    rows = []
    for method, oracle in oracles.items():
        update_ms = timed(oracle.insert_edge, insertions)
        query_ms = timed(oracle.query, queries)
        rows.append({
            "Method": method,
            "Update (ms)": update_ms,
            "Query (ms)": query_ms,
            "Index size": format_bytes(oracle.size_bytes()),
        })

    print()
    print(format_table(
        ["Method", "Update (ms)", "Query (ms)", "Index size"],
        rows,
        title=f"Mini Table 1 on {name}",
    ))

    # Referee: all methods must return identical distances.
    print("\nCross-checking 300 query answers across all methods ... ", end="")
    disagreements = 0
    for u, v in queries:
        answers = {oracle.query(u, v) for oracle in oracles.values()}
        if len(answers) != 1:
            disagreements += 1
    print("all agree!" if disagreements == 0
          else f"{disagreements} DISAGREEMENTS (bug!)")


if __name__ == "__main__":
    main()
