"""Web-graph scenario: context-aware search over an incrementally crawled web.

The paper's first motivating application is "context-aware search in web
graphs" — ranking candidate result pages by their link distance from the
page the user is currently on.  This example builds a web-like graph
(dense sites, sparse cross-site links, large average distance — the regime
where the paper says updates are hardest), runs distance-ranked search,
then simulates a crawler discovering new pages and links while queries
continue.

Run:  python examples/web_graph.py
"""

import random
import time

from repro import DynamicHCL
from repro.graph.generators import community_web_graph
from repro.graph.traversal import INF


def distance_ranked(oracle: DynamicHCL, context_page: int, candidates):
    """Rank candidate pages by link distance from the context page."""
    ranked = sorted(
        (oracle.query(context_page, page), page) for page in candidates
    )
    return [(page, d) for d, page in ranked if d != INF]


def main() -> None:
    rng = random.Random(7)

    print("Building a 15,000-page web graph (50 sites on a link ring)...")
    graph = community_web_graph(
        15_000, community_size=300, intra_attach=6,
        inter_edges_per_community=3, long_range_edges=30, rng=rng,
    )
    oracle = DynamicHCL.build(graph, num_landmarks=20)
    print(f"  |V| = {graph.num_vertices:,}  |E| = {graph.num_edges:,}  "
          f"size(L) = {oracle.label_entries:,} entries")

    # --- context-aware search -------------------------------------------
    pages = list(graph.vertices())
    context = pages[123]
    candidates = rng.sample(pages, 12)
    print(f"\nSearch from context page {context}: "
          "candidates ranked by link distance")
    for page, d in distance_ranked(oracle, context, candidates)[:8]:
        print(f"  page {page:>6}  distance {int(d)}")

    # --- incremental crawl ----------------------------------------------
    print("\nCrawler discovers 100 new pages and 150 new cross-links ...")
    update_times = []
    for i in range(100):
        new_page = graph.max_vertex_id() + 1
        # a discovered page links to 2-4 known pages, usually same-site
        anchor = rng.choice(pages)
        site = anchor - anchor % 300
        local = [site + rng.randrange(300) for _ in range(3)]
        targets = {p for p in local if graph.has_vertex(p)} or {anchor}
        start = time.perf_counter()
        oracle.insert_vertex(new_page, sorted(targets))
        update_times.append(time.perf_counter() - start)
        pages.append(new_page)
    for i in range(150):
        while True:
            u, v = rng.choice(pages), rng.choice(pages)
            if u != v and not graph.has_edge(u, v):
                break
        start = time.perf_counter()
        stats = oracle.insert_edge(u, v)
        update_times.append(time.perf_counter() - start)

    print(f"  mean update latency: "
          f"{1e3 * sum(update_times) / len(update_times):.3f} ms "
          "(web graphs are the paper's hardest case)")

    # --- the same search reflects the new link structure ----------------
    print(f"\nRe-running the search from page {context} after the crawl:")
    for page, d in distance_ranked(oracle, context, candidates)[:8]:
        print(f"  page {page:>6}  distance {int(d)}")

    # A crawler-added shortcut shrinks a long distance dramatically:
    far = max(candidates, key=lambda p: oracle.query(context, p))
    before = oracle.query(context, far)
    oracle.insert_edge(context, far)
    print(f"\nEditorial link {context} -> {far}: distance "
          f"{int(before) if before != INF else 'inf'} -> "
          f"{int(oracle.query(context, far))}")


if __name__ == "__main__":
    main()
