"""Social-network scenario: degrees of separation in a *growing* network.

The paper's motivating application (Section 1): social-network analysis
needs distance queries answered in milliseconds while the network keeps
growing — new members join (vertex insertions) and friendships form (edge
insertions).  This example simulates a day of growth on a LiveJournal-like
community and serves "degrees of separation" queries throughout, tracking
both query latency and update latency.

Run:  python examples/social_network.py
"""

import random
import time

from repro import DynamicHCL
from repro.graph.generators import powerlaw_cluster
from repro.graph.traversal import INF


def degrees_of_separation(oracle: DynamicHCL, u: int, v: int) -> str:
    d = oracle.query(u, v)
    if d == INF:
        return "not connected"
    return f"{int(d)} degrees"


def main() -> None:
    rng = random.Random(2021)

    print("Bootstrapping a 20,000-member community (clustered power law)...")
    graph = powerlaw_cluster(20_000, attach=6, triangle_prob=0.3, rng=rng)
    oracle = DynamicHCL.build(graph, num_landmarks=20)
    print(f"  |V| = {graph.num_vertices:,}  |E| = {graph.num_edges:,}  "
          f"size(L) = {oracle.label_entries:,} entries")

    celebrities = sorted(graph.vertices(), key=graph.degree)[-3:]
    print(f"  top-degree members (celebrities): {celebrities}")

    update_times: list[float] = []
    query_times: list[float] = []
    members = list(graph.vertices())

    print("\nSimulating one day of activity "
          "(200 new friendships, 50 new members, continuous queries)...")
    for step in range(250):
        if step % 5 == 4:
            # A new member joins and befriends 3 existing members,
            # preferring well-connected ones (rich get richer).
            newcomer = graph.max_vertex_id() + 1
            friends = set()
            while len(friends) < 3:
                candidate = rng.choice(members)
                if rng.random() < 0.7 or graph.degree(candidate) > 20:
                    friends.add(candidate)
            start = time.perf_counter()
            oracle.insert_vertex(newcomer, sorted(friends))
            update_times.append(time.perf_counter() - start)
            members.append(newcomer)
        else:
            # A friendship forms between two random members.
            while True:
                u, v = rng.choice(members), rng.choice(members)
                if u != v and not graph.has_edge(u, v):
                    break
            start = time.perf_counter()
            oracle.insert_edge(u, v)
            update_times.append(time.perf_counter() - start)

        # Interleaved analytics queries.
        u, v = rng.choice(members), rng.choice(members)
        start = time.perf_counter()
        oracle.query(u, v)
        query_times.append(time.perf_counter() - start)

    print(f"  members now: {graph.num_vertices:,}; "
          f"friendships: {graph.num_edges:,}")
    print(f"  mean update latency: {1e3 * sum(update_times) / len(update_times):.3f} ms")
    print(f"  mean query  latency: {1e3 * sum(query_times) / len(query_times):.3f} ms")
    print(f"  size(L) stayed minimal: {oracle.label_entries:,} entries")

    print("\nSpot checks:")
    alice, bob = members[17], members[-1]
    print(f"  member {alice} <-> member {bob}: "
          f"{degrees_of_separation(oracle, alice, bob)}")
    for celeb in celebrities:
        print(f"  member {alice} <-> celebrity {celeb}: "
              f"{degrees_of_separation(oracle, alice, celeb)}")

    # Small-world check: average separation over a sample.
    sample = [
        oracle.query(rng.choice(members), rng.choice(members))
        for _ in range(300)
    ]
    finite = [d for d in sample if d != INF]
    print(f"\nAverage separation over {len(finite)} sampled pairs: "
          f"{sum(finite) / len(finite):.2f} "
          "(small-world, as expected for social graphs)")


if __name__ == "__main__":
    main()
