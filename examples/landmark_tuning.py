"""Landmark engineering: selection strategies and online |R| resizing.

The paper fixes |R| = 20 top-degree landmarks and studies sensitivity by
rebuilding per setting (Figure 3).  This example shows the tooling this
repository adds around that choice:

1. compare selection strategies on label size and highway coverage;
2. identify the least useful landmark with the analysis module;
3. resize the landmark set *online* — promote a fresh hub, demote the
   weakest landmark — without ever rebuilding from scratch.

Run:  python examples/landmark_tuning.py
"""

from repro import DynamicHCL
from repro.analysis import highway_stats, label_stats, landmark_entry_counts
from repro.bench.plotting import bar_chart
from repro.graph.generators import community_web_graph
from repro.workloads.queries import sample_query_pairs


def main() -> None:
    print("Generating a community-structured web-like graph ...")
    graph = community_web_graph(
        n=1_800, community_size=150, intra_attach=3,
        inter_edges_per_community=2, long_range_edges=30, rng=17,
    )
    print(f"  |V| = {graph.num_vertices:,}   |E| = {graph.num_edges:,}")

    # --- 1. Strategy comparison -----------------------------------------
    print("\nLabel size by landmark-selection strategy (|R| = 12):")
    sizes = {}
    for strategy in ("degree", "random", "betweenness", "spread"):
        oracle = DynamicHCL.build(
            graph.copy(), num_landmarks=12, strategy=strategy, rng=5
        )
        stats = label_stats(oracle.labelling, graph.num_vertices)
        hstats = highway_stats(oracle.labelling)
        sizes[strategy] = stats.total_entries
        print(f"  {strategy:>12}: size(L) = {stats.total_entries:>7,}  "
              f"l = {stats.mean_label_size:.2f}  "
              f"highway connectivity = {hstats.connectivity:.0%}")
    print()
    print(bar_chart("size(L) by strategy", list(sizes), list(sizes.values()),
                    width=40, unit="entries"))

    # --- 2. Find the weakest landmark -----------------------------------
    oracle = DynamicHCL.build(graph, num_landmarks=12, strategy="degree")
    counts = landmark_entry_counts(oracle.labelling)
    weakest = min(counts, key=counts.get)
    strongest = max(counts, key=counts.get)
    print(f"\nPer-landmark entry contributions (degree strategy):")
    print(f"  strongest: vertex {strongest} carries {counts[strongest]:,} entries")
    print(f"  weakest:   vertex {weakest} carries {counts[weakest]:,} entries")

    # --- 3. Online resize ------------------------------------------------
    queries = sample_query_pairs(graph, 400, rng=9)

    def exactness_probe() -> bool:
        from repro.graph.traversal import bfs_distances

        u, v = queries[0]
        return oracle.query(u, v) == bfs_distances(graph, u).get(v, float("inf"))

    print("\nDemoting the weakest landmark online ...")
    before = oracle.label_entries
    rebuilt = oracle.remove_landmark(weakest)
    print(f"  size(L): {before:,} -> {oracle.label_entries:,} "
          f"({len(rebuilt)} landmark labellings repaired)  "
          f"exact: {exactness_probe()}")

    print("Promoting the highest-degree non-landmark online ...")
    candidate = max(
        (v for v in graph.vertices() if v not in oracle.labelling.landmark_set),
        key=graph.degree,
    )
    removed = oracle.add_landmark(candidate)
    print(f"  promoted vertex {candidate} (degree {graph.degree(candidate)}); "
          f"{removed:,} newly covered entries removed  "
          f"exact: {exactness_probe()}")

    print(f"\nFinal |R| = {len(oracle.landmarks)}, "
          f"size(L) = {oracle.label_entries:,} entries")


if __name__ == "__main__":
    main()
