"""Large-scale run: the numpy CSR fast path at interpreter-stretching size.

The paper's evaluation runs C++ on billion-edge graphs; the calibration
note for this reproduction anticipated that pure-Python BFS caps the
feasible scale.  This example shows the mitigation end to end on a
30,000-vertex scale-free graph (~120k edges):

1. build the labelling on the CSR fast path and on the reference builder,
   timing both and asserting they are identical;
2. serve a query batch;
3. stream IncHL+ updates (maintenance cost is independent of the builder).

Run:  python examples/large_scale.py        (~30 s)
"""

from time import perf_counter

from repro import CSRGraph, DynamicHCL, build_hcl, build_hcl_fast
from repro.graph.generators import barabasi_albert
from repro.landmarks.selection import select_landmarks
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions

N = 30_000


def timed(label, fn, *args, **kwargs):
    start = perf_counter()
    result = fn(*args, **kwargs)
    print(f"  {label}: {perf_counter() - start:.2f}s")
    return result


def main() -> None:
    print(f"Generating a {N:,}-vertex preferential-attachment graph ...")
    graph = timed("generate", barabasi_albert, N, 4, rng=2021)
    print(f"  |V| = {graph.num_vertices:,}   |E| = {graph.num_edges:,}")

    landmarks = select_landmarks(graph, 20, "degree")

    print("\nConstruction, reference vs CSR fast path (same landmarks):")
    reference = timed("python builder", build_hcl, graph, landmarks)
    snapshot = timed("CSR snapshot  ", CSRGraph.from_graph, graph)
    fast = timed("CSR builder   ", build_hcl_fast, graph, landmarks, csr=snapshot)
    assert fast == reference, "fast path must produce the identical labelling"
    print(f"  identical labellings, size(L) = {fast.label_entries:,} entries "
          f"(l = {fast.label_entries / N:.2f} per vertex)")

    oracle = DynamicHCL(graph, fast)

    print("\nServing 2,000 exact queries ...")
    pairs = sample_query_pairs(graph, 2_000, rng=5)
    start = perf_counter()
    checksum = sum(oracle.query(u, v) for u, v in pairs)
    elapsed = perf_counter() - start
    print(f"  {len(pairs):,} queries in {elapsed:.2f}s "
          f"({elapsed / len(pairs) * 1000:.3f} ms/query, "
          f"mean distance {checksum / len(pairs):.2f})")

    print("\nStreaming 200 IncHL+ edge insertions ...")
    insertions = sample_edge_insertions(graph, 200, rng=7)
    start = perf_counter()
    affected = [oracle.insert_edge(u, v).affected_union for u, v in insertions]
    elapsed = perf_counter() - start
    print(f"  {len(insertions)} updates in {elapsed:.2f}s "
          f"({elapsed / len(insertions) * 1000:.3f} ms/update, "
          f"max |Λ| = {max(affected):,} of {N:,} vertices)")

    print(f"\nsize(L) after updates = {oracle.label_entries:,} entries "
          "(minimality maintained)")


if __name__ == "__main__":
    main()
