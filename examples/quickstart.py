"""Quickstart: build a labelling, query, update, query again.

Run:  python examples/quickstart.py
"""

from repro import DynamicHCL
from repro.graph.generators import barabasi_albert
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions


def main() -> None:
    # A 10k-vertex scale-free network (a small social-network stand-in).
    print("Generating a 10,000-vertex preferential-attachment graph ...")
    graph = barabasi_albert(10_000, attach=5, rng=42)
    print(f"  |V| = {graph.num_vertices:,}   |E| = {graph.num_edges:,}")

    # Build the highway cover labelling with the paper's default |R| = 20
    # top-degree landmarks.
    print("Building the highway cover labelling (|R| = 20) ...")
    oracle = DynamicHCL.build(graph, num_landmarks=20)
    print(f"  size(L) = {oracle.label_entries:,} entries "
          f"({oracle.size_bytes() / 1024:.1f} KB)")
    print(f"  average label size l = "
          f"{oracle.label_entries / graph.num_vertices:.2f} entries/vertex")

    # Exact distance queries.
    print("\nExact distance queries:")
    for u, v in sample_query_pairs(graph, 5, rng=7):
        print(f"  d({u:>5}, {v:>5}) = {oracle.query(u, v)}")

    # Online updates: insert new edges, the labelling repairs itself
    # (IncHL+), queries stay exact throughout.
    print("\nInserting 5 random edges with IncHL+ repair:")
    for u, v in sample_edge_insertions(graph, 5, rng=7):
        before = oracle.query(u, v)
        stats = oracle.insert_edge(u, v)
        after = oracle.query(u, v)
        print(f"  +({u:>5}, {v:>5})  d: {before} -> {after}   "
              f"affected vertices: {stats.affected_union}")

    # A vertex insertion (the paper's node-insertion operation).
    newcomer = graph.max_vertex_id() + 1
    oracle.insert_vertex(newcomer, [0, 1, 2])
    print(f"\nInserted vertex {newcomer} with 3 edges; "
          f"d({newcomer}, 9999) = {oracle.query(newcomer, 9999)}")

    print(f"\nsize(L) after all updates = {oracle.label_entries:,} entries "
          "(IncHL+ keeps the labelling minimal)")


if __name__ == "__main__":
    main()
