"""Computer-network scenario: latency-bound resource management.

The paper's third motivating application: "management of resources in
computer networks" — e.g. assigning each client to a replica within a hop
budget, re-evaluated as links are provisioned.  The network is a
small-world topology (the Skitter stand-in class); links come up over time
(edge insertions) and the assignment must stay exact.

This example also demonstrates the *fully dynamic* extension: a link is
decommissioned (edge deletion, the paper's future work) and queries remain
exact.

Run:  python examples/network_monitoring.py
"""

import random

from repro import DynamicHCL
from repro.graph.generators import watts_strogatz
from repro.graph.traversal import INF


def assign_to_replicas(oracle, clients, replicas, hop_budget):
    """Map each client to the nearest replica within the hop budget."""
    assignment = {}
    for c in clients:
        best = min(
            ((oracle.query(c, s), s) for s in replicas),
            key=lambda pair: pair[0],
        )
        d, replica = best
        assignment[c] = (replica, d) if d <= hop_budget else (None, d)
    return assignment


def coverage(assignment) -> float:
    served = sum(1 for replica, _ in assignment.values() if replica is not None)
    return 100.0 * served / len(assignment)


def main() -> None:
    rng = random.Random(11)

    print("Provisioning a 5,000-router small-world network ...")
    graph = watts_strogatz(5_000, k=8, beta=0.1, rng=rng)
    oracle = DynamicHCL.build(graph, num_landmarks=20)
    print(f"  |V| = {graph.num_vertices:,}  |E| = {graph.num_edges:,}")

    routers = list(graph.vertices())
    replicas = rng.sample(routers, 6)
    clients = rng.sample([r for r in routers if r not in replicas], 200)
    hop_budget = 9
    print(f"  replicas at {replicas}; {len(clients)} clients; "
          f"hop budget {hop_budget}")

    assignment = assign_to_replicas(oracle, clients, replicas, hop_budget)
    print(f"\nInitial coverage: {coverage(assignment):.1f}% of clients "
          f"within {hop_budget} hops of a replica")

    # Provision long-haul links between poorly served regions.
    unserved = [c for c, (replica, _) in assignment.items() if replica is None]
    print(f"Provisioning {min(10, len(unserved))} long-haul links toward "
          "unserved clients ...")
    for c in unserved[:10]:
        target = rng.choice(replicas)
        if not graph.has_edge(c, target):
            stats = oracle.insert_edge(c, target)
            print(f"  link {c} <-> {target}: affected {stats.affected_union} routers")

    assignment = assign_to_replicas(oracle, clients, replicas, hop_budget)
    print(f"Coverage after provisioning: {coverage(assignment):.1f}%")

    # Decommission a link (decremental future-work extension).
    u, v = next(iter(graph.edges()))
    print(f"\nDecommissioning link {u} <-> {v} ...")
    oracle.remove_edge(u, v)
    d = oracle.query(u, v)
    print(f"  d({u}, {v}) is now {'inf' if d == INF else int(d)} "
          "(queries stay exact under deletions too)")

    assignment = assign_to_replicas(oracle, clients, replicas, hop_budget)
    print(f"  coverage after decommission: {coverage(assignment):.1f}%")


if __name__ == "__main__":
    main()
