"""Path extraction: exact routes and cheap landmark-routed approximations.

The oracle answers *distances*; many applications (the paper motivates
context-aware search and network management) want the route itself.  This
example compares the two extraction modes on a road-like grid with a few
highway shortcuts:

* :meth:`DynamicHCL.shortest_path` — exact, distance-query-guided greedy
  descent (cost grows with path length × degree);
* :meth:`DynamicHCL.approximate_path` — three bounded BFS legs through
  the best label pair of Eq. (2); exact whenever some shortest path
  meets a landmark, an upper-bound witness otherwise.

Run:  python examples/path_finding.py
"""

from repro import DynamicHCL
from repro.graph.generators import grid_graph

ROWS, COLS = 25, 40


def vertex(row: int, col: int) -> int:
    return row * COLS + col


def describe(name: str, path, exact: float) -> None:
    if path is None:
        print(f"  {name}: unreachable")
        return
    marker = "exact" if len(path) - 1 == exact else f"+{len(path) - 1 - exact} hops"
    head = " -> ".join(str(v) for v in path[:5])
    print(f"  {name}: {len(path) - 1} hops ({marker})   [{head} -> ...]")


def main() -> None:
    print(f"Building a {ROWS}x{COLS} grid with 6 diagonal shortcuts ...")
    graph = grid_graph(ROWS, COLS)
    shortcuts = [
        (vertex(0, 0), vertex(12, 20)),
        (vertex(12, 20), vertex(24, 39)),
        (vertex(0, 39), vertex(12, 20)),
        (vertex(24, 0), vertex(12, 20)),
        (vertex(6, 10), vertex(18, 30)),
        (vertex(18, 10), vertex(6, 30)),
    ]

    oracle = DynamicHCL.build(graph, num_landmarks=8)
    print(f"  |V| = {graph.num_vertices}, |E| = {graph.num_edges}, "
          f"|R| = {len(oracle.landmarks)}")

    corner_a, corner_b = vertex(0, 0), vertex(24, 39)
    print(f"\nBefore shortcuts: corner-to-corner "
          f"d({corner_a}, {corner_b}) = {oracle.query(corner_a, corner_b)}")
    exact = oracle.query(corner_a, corner_b)
    describe("exact      ", oracle.shortest_path(corner_a, corner_b), exact)
    describe("approximate", oracle.approximate_path(corner_a, corner_b), exact)

    print("\nInserting the shortcuts (IncHL+ repairs the labelling) ...")
    for u, v in shortcuts:
        oracle.insert_edge(u, v)

    exact = oracle.query(corner_a, corner_b)
    print(f"After shortcuts: d({corner_a}, {corner_b}) = {exact}")
    path = oracle.shortest_path(corner_a, corner_b)
    describe("exact      ", path, exact)
    describe("approximate", oracle.approximate_path(corner_a, corner_b), exact)
    used = [u for u in path if any(u in edge for edge in shortcuts)]
    print(f"  the exact route uses shortcut endpoints: {used}")

    # Verify every consecutive pair is an edge and the length is optimal.
    assert all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))
    assert len(path) - 1 == exact

    print("\nRouting around damage: deleting a shortcut re-routes exactly ...")
    oracle.remove_edge(*shortcuts[0])
    exact = oracle.query(corner_a, corner_b)
    path = oracle.shortest_path(corner_a, corner_b)
    print(f"  d({corner_a}, {corner_b}) after deletion = {exact}")
    describe("exact      ", path, exact)
    assert len(path) - 1 == exact

    print("\nDone: paths stay exact through insertions and deletions.")


if __name__ == "__main__":
    main()
